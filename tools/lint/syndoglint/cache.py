"""Incremental cache keyed on file content hashes.

Two stores, one JSON file:

  * file pass — raw findings (pre-waiver) per file, keyed on the file's
    content hash plus a run fingerprint covering the engine version and
    the cross-file unordered-name pool (a name declared in one file can
    produce findings in another);
  * header compiles — the self-containment verdict per public header,
    keyed on the hash of the header's transitive in-repo include closure
    plus the compiler. This is the expensive store: a warm run skips the
    compiler entirely.

The cache is advisory: corrupt or version-skewed files are discarded
wholesale. Hit/miss counts feed `--cache-stats` and the CI assertion that
warm runs never regress to cold full recompiles.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from . import __version__

_FORMAT = 3


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", errors="replace")).hexdigest()


def sha256_file(path: Path) -> str:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "unreadable"


class Cache:
    def __init__(self, path: Optional[Path]):
        self.path = path
        self.file_hits = 0
        self.file_misses = 0
        self.header_hits = 0
        self.header_misses = 0
        self._files: Dict[str, Dict[str, object]] = {}
        self._headers: Dict[str, Dict[str, str]] = {}
        self._file_hashes: Dict[str, str] = {}
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if (
                    data.get("format") == _FORMAT
                    and data.get("version") == __version__
                ):
                    self._files = data.get("files", {})
                    self._headers = data.get("headers", {})
            except (OSError, ValueError):
                pass

    # -- file pass ----------------------------------------------------------

    def file_key(self, raw: str, run_fingerprint: str) -> str:
        return sha256_text(raw + "\x00" + run_fingerprint)

    def file_findings(
        self, rel: str, key: str
    ) -> Optional[List[List[object]]]:
        entry = self._files.get(rel)
        if entry is not None and entry.get("key") == key:
            self.file_hits += 1
            return entry.get("findings", [])  # type: ignore[return-value]
        self.file_misses += 1
        return None

    def store_file_findings(
        self, rel: str, key: str, findings: List[List[object]]
    ) -> None:
        self._files[rel] = {"key": key, "findings": findings}

    # -- header compiles ----------------------------------------------------

    def hash_of(self, path: Path) -> str:
        rel = str(path)
        h = self._file_hashes.get(rel)
        if h is None:
            h = sha256_file(path)
            self._file_hashes[rel] = h
        return h

    def header_key(self, closure: Iterable[Path], cxx: str) -> str:
        parts = sorted(self.hash_of(p) for p in closure)
        return sha256_text(cxx + "\x00" + "\x00".join(parts))

    def header_result(self, rel: str, key: Optional[str]) -> Optional[str]:
        """None on miss; otherwise the cached error message ('' = clean)."""
        entry = self._headers.get(rel)
        if key is not None and entry is not None and entry.get("key") == key:
            self.header_hits += 1
            return entry.get("error", "")
        self.header_misses += 1
        return None

    def store_header_result(self, rel: str, key: str, error: str) -> None:
        self._headers[rel] = {"key": key, "error": error}

    # -- persistence / stats ------------------------------------------------

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "format": _FORMAT,
            "version": __version__,
            "files": self._files,
            "headers": self._headers,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=0), encoding="utf-8"
        )
        tmp.replace(self.path)

    def header_hit_rate(self) -> Optional[float]:
        total = self.header_hits + self.header_misses
        if total == 0:
            return None
        return self.header_hits / total

    def stats(self) -> Dict[str, object]:
        return {
            "file_pass": {"hits": self.file_hits, "misses": self.file_misses},
            "header_compiles": {
                "hits": self.header_hits,
                "misses": self.header_misses,
            },
        }
