"""headers.* — every public header compiles on its own.

A header that leans on its includer's includes breaks every future
refactor that reorders includes. The check generates a one-#include TU per
public header and compiles it with -fsyntax-only; results are cached per
header keyed on the content hash of the header *and* every in-repo header
it transitively includes, so warm runs skip the compiler entirely.
"""

from __future__ import annotations

import os
import re
import subprocess
import tempfile
from concurrent import futures
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from .model import ERROR, Finding, Rule, register

_QUOTED_OR_SYSTEM_SYNDOG = re.compile(
    r'^\s*#\s*include\s+["<](syndog/[^">]+)[">]'
)


def public_headers(root: Path) -> List[Path]:
    headers: List[Path] = []
    src = root / "src"
    if not src.is_dir():
        return headers
    for module_dir in sorted(src.iterdir()):
        include = module_dir / "include" / "syndog"
        if include.is_dir():
            headers.extend(sorted(include.rglob("*.hpp")))
    return headers


def include_flags(root: Path) -> List[str]:
    flags: List[str] = []
    src = root / "src"
    if not src.is_dir():
        return flags
    for module_dir in sorted(src.iterdir()):
        include = module_dir / "include"
        if include.is_dir():
            flags.append(f"-I{include}")
    return flags


def _repo_include_map(root: Path) -> Dict[str, Path]:
    """Maps `syndog/<mod>/x.hpp` include spellings to files on disk."""
    mapping: Dict[str, Path] = {}
    for header in public_headers(root):
        rel = header.as_posix().split("/include/", 1)[1]
        mapping[rel] = header
    return mapping


def transitive_include_closure(
    header: Path, include_map: Dict[str, Path]
) -> Set[Path]:
    """The header plus every in-repo header reachable from it. Used as the
    cache key domain: a header's self-containment verdict can only change
    when one of these files changes (or the compiler does)."""
    closure: Set[Path] = set()
    stack = [header]
    while stack:
        current = stack.pop()
        if current in closure:
            continue
        closure.add(current)
        try:
            text = current.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            m = _QUOTED_OR_SYSTEM_SYNDOG.match(line)
            if m and m.group(1) in include_map:
                stack.append(include_map[m.group(1)])
    return closure


def compile_header(header: Path, cxx: str, flags: List[str]) -> Optional[str]:
    """Returns the first error line when the one-include TU fails, else None."""
    rel = header.as_posix().split("/include/", 1)[1]
    tu = f'#include "{rel}"\n'
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cpp", prefix="syndog_hdr_", delete=False
    ) as tmp:
        tmp.write(tu)
        tmp_path = tmp.name
    try:
        proc = subprocess.run(
            [
                cxx,
                "-std=c++20",
                "-fsyntax-only",
                "-Wall",
                "-Wextra",
                "-Wpedantic",
                *flags,
                "-x",
                "c++",
                tmp_path,
            ],
            capture_output=True,
            text=True,
        )
    finally:
        os.unlink(tmp_path)
    if proc.returncode == 0:
        return None
    stderr = proc.stderr.strip()
    return next(
        (ln for ln in stderr.splitlines() if "error" in ln),
        stderr.splitlines()[0] if stderr else "compile failed",
    ).strip()


def _check_headers(ctx) -> Iterable[Finding]:
    import shutil

    if shutil.which(ctx.cxx) is None:
        yield Finding(
            "tools/lint/syndog_lint.py",
            1,
            "headers.no_compiler",
            f"compiler '{ctx.cxx}' not found; pass --cxx or set $CXX",
        )
        return

    headers = public_headers(ctx.root)
    flags = include_flags(ctx.root)
    include_map = _repo_include_map(ctx.root)

    to_compile: List[Path] = []
    for header in headers:
        rel = header.relative_to(ctx.root).as_posix()
        closure = transitive_include_closure(header, include_map)
        key = ctx.cache.header_key(closure, ctx.cxx) if ctx.cache else None
        cached = ctx.cache.header_result(rel, key) if ctx.cache else None
        if cached is not None:
            error = cached
            if error:
                yield Finding(rel, 1, "headers.not_self_contained", error)
            continue
        to_compile.append(header)

    if not to_compile:
        return
    with futures.ThreadPoolExecutor(max_workers=ctx.jobs) as pool:
        results = list(
            pool.map(lambda h: compile_header(h, ctx.cxx, flags), to_compile)
        )
    for header, error in zip(to_compile, results):
        rel = header.relative_to(ctx.root).as_posix()
        message = (
            f"one-include TU fails to compile: {error}" if error else ""
        )
        if ctx.cache:
            closure = transitive_include_closure(header, include_map)
            ctx.cache.store_header_result(
                rel, ctx.cache.header_key(closure, ctx.cxx), message
            )
        if message:
            yield Finding(rel, 1, "headers.not_self_contained", message)


_HEADERS_RATIONALE = (
    "Every public header under src/*/include/syndog/ must compile as the "
    "only include of a translation unit (-fsyntax-only -Wall -Wextra "
    "-Wpedantic). A header that silently depends on what its includers "
    "happened to include breaks the next include-order refactor. Verdicts "
    "are cached on the content hash of the header plus its transitive "
    "in-repo includes, so only headers whose closure changed recompile."
)

register(
    Rule(
        id="headers.not_self_contained",
        family="headers",
        severity=ERROR,
        summary="public header fails to compile as a standalone TU",
        rationale=_HEADERS_RATIONALE,
        fix_hint=(
            "Add the missing #include (or forward declaration) to the "
            "header itself; re-run `syndog_lint --checks headers`."
        ),
        tree_check=_check_headers,
        waivable=False,
    )
)

register(
    Rule(
        id="headers.no_compiler",
        family="headers",
        severity=ERROR,
        summary="no C++ compiler available for the self-containment check",
        rationale=_HEADERS_RATIONALE,
        fix_hint="Pass --cxx or export CXX; CI always provides one.",
        waivable=False,
    )
)
