"""Renderers: text, JSON, SARIF 2.1.0, and the --explain catalog."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from . import TOOL_NAME, TOOL_URI, __version__
from .engine import RunResult
from .model import Rule, all_rules, get_rule

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def render_text(result: RunResult) -> str:
    lines = [f.render() for f in result.findings]
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    payload = {
        "tool": {"name": TOOL_NAME, "version": __version__},
        "checks": result.checked_families,
        "findings": [f.to_json() for f in result.findings],
        "waivers": [
            {
                "file": w.rel,
                "line": w.line,
                "rules": w.rules,
                "justified": w.justified,
                "used": w.used,
            }
            for w in result.waivers
        ],
        "summary": {
            "findings": len(result.findings),
            "waivers": len(result.waivers),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_level(severity: str) -> str:
    return {"error": "error", "warning": "warning"}.get(severity, "warning")


def render_sarif(result: RunResult) -> str:
    fired = {f.rule for f in result.findings}
    rules: List[Rule] = [
        r for r in all_rules() if r.family in result.checked_families
        or r.family == "waivers"
        or r.id in fired
    ]
    rule_index: Dict[str, int] = {r.id: i for i, r in enumerate(rules)}
    driver_rules = [
        {
            "id": r.id,
            "name": r.id.replace(".", "-"),
            "shortDescription": {"text": r.summary},
            "fullDescription": {"text": r.rationale},
            "help": {"text": r.fix_hint},
            "defaultConfiguration": {"level": _sarif_level(r.severity)},
        }
        for r in rules
    ]
    results = []
    for f in result.findings:
        rule = get_rule(f.rule)
        entry = {
            "ruleId": f.rule,
            "level": _sarif_level(rule.severity if rule else "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.rel,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        if f.rule in rule_index:
            entry["ruleIndex"] = rule_index[f.rule]
        results.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": __version__,
                        "informationUri": TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def explain(rule_id: str) -> Optional[str]:
    if rule_id == "all":
        return "\n\n".join(
            explain(r.id) or "" for r in all_rules()
        )
    rule = get_rule(rule_id)
    if rule is None:
        return None
    waiver = (
        f"  waiver:    // syndog-lint: allow({rule.id}) -- <why>\n"
        if rule.waivable
        else "  waiver:    not waivable\n"
    )
    return (
        f"{rule.id}  [{rule.family}/{rule.severity}]\n"
        f"  {rule.summary}\n\n"
        f"  rationale: {rule.rationale}\n"
        f"  fix:       {rule.fix_hint}\n" + waiver
    )


def list_rules() -> str:
    lines = []
    for r in all_rules():
        waivable = "waivable" if r.waivable else "strict"
        lines.append(f"{r.id:40s} {r.family:12s} {waivable:9s} {r.summary}")
    return "\n".join(lines)
