"""Findings, rules, and the rule registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import TreeContext
    from .lexer import SourceFile

ERROR = "error"
WARNING = "warning"


@dataclass
class Finding:
    rel: str  # scan-root-relative posix path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.rel,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Rule:
    """One invariant. `check` runs over a lexed file; `targets` gates which
    files it sees. Tree-scoped rules (layering DAG shape, header compiles)
    instead implement `tree_check` and receive the whole context."""

    id: str
    family: str  # check-group name used by --checks
    severity: str
    summary: str  # one line, shown by --list-rules and SARIF
    rationale: str  # paragraph for --explain
    fix_hint: str
    targets: Optional[Callable[[str], bool]] = None  # rel path predicate
    check: Optional[
        Callable[["SourceFile", "TreeContext"], Iterable[Finding]]
    ] = None
    tree_check: Optional[Callable[["TreeContext"], Iterable[Finding]]] = None
    waivable: bool = True


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> List[Rule]:
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    return _REGISTRY.get(rule_id)


def families() -> List[str]:
    return sorted({r.family for r in _REGISTRY.values()})


@dataclass
class WaiverRecord:
    """Per-rule waiver accounting entry for reports and selftests."""

    rel: str
    line: int
    rules: List[str]
    justified: bool
    used: List[str] = field(default_factory=list)
