"""syndoglint: the SYN-dog repo-invariant static analysis engine.

A small, stdlib-only analysis framework purpose-built for this tree's two
non-negotiable contracts:

  * determinism — every experiment replays bit-identically from seeds, and
    every `BENCH_*.json` sidecar is byte-identical across runs;
  * hot-path discipline — the DES and ingest hot paths stay allocation-free
    and single-writer outside sanctioned seams.

Layout:

  lexer.py    comment/string/raw-string stripping with exact line mapping,
              a token stream with brace/scope depth, waiver + pragma parsing
  model.py    Finding / Rule dataclasses and the rule registry
  rules_*.py  the rule families (determinism, concurrency, hotpath,
              layering, headers)
  engine.py   file iteration, two-pass analysis, waiver accounting
  cache.py    content-hash keyed incremental cache (file pass + header
              compiles)
  output.py   text / json / SARIF 2.1.0 renderers and the --explain catalog
  cli.py      argument parsing and exit-status policy

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

__version__ = "2.0.0"

TOOL_NAME = "syndog_lint"
TOOL_URI = "https://github.com/syndog/syndog/blob/main/docs/STATIC_ANALYSIS.md"
