"""concurrency.* — threads and shared mutable state live only in seams.

ROADMAP items 1–2 (sharded parallel DES, multi-ring ingest) multiplied
the number of threads in the tree. These rules pin down where that
concurrency may live: thread spawning and mutable namespace-scope state
are confined to sanctioned seams, so every other file stays trivially
data-race-free and the deterministic single-thread reference stays the
semantic ground truth.

The seam list is *file-granular*: now that src/ingest mixes threaded
datapaths (pipeline's two-thread pump, ShardedReplay's producer +
consumers) with purely sequential ones (ReplayEngine, CaptureSource,
framer, demux), a directory-wide waiver would silently bless a stray
thread in the sequential files. Each entry is a path prefix, so a seam
covers its .cpp, its header, and any `_test`/`_seam` corpus siblings.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

from .lexer import IDENT, PUNCT, SourceFile, Token
from .model import ERROR, Finding, Rule, register

# Sanctioned seams (path prefixes). In src/ingest only the files that
# *are* the threading machinery qualify: the capture pipeline's
# two-thread pump, the sharded replay's producer/consumer fan-out, and
# the SPSC ring primitive their handoff rides on. The rest of the module
# (ReplayEngine, CaptureSource, framer, AgentDemux) is sequential by
# contract and patrolled like any other code. Likewise src/campaign:
# only runner.cpp/runner.hpp (the worker pool driving run_cell_until /
# exchange_and_advance through generation barriers) spawn threads;
# CampaignSim itself is sequential per cell and patrolled. src/telemetry
# (sink drain thread) and src/util (logging level atomics, worker
# plumbing) stay module-wide seams — their concurrency is not confined
# to one file.
_SEAM_DIRS = (
    "src/ingest/pipeline",
    "src/ingest/sharded",
    "src/ingest/include/syndog/ingest/pipeline",
    "src/ingest/include/syndog/ingest/sharded",
    "src/ingest/include/syndog/ingest/frame_ring",
    "src/campaign/runner",
    "src/campaign/include/syndog/campaign/runner",
    "src/telemetry/",
    "src/util/",
)

# Library-ish trees the rules patrol. tests/ is exempt: tests spin threads
# and define counting globals (tests/support/alloc_guard.hpp) to *verify*
# the library's concurrency contracts, and run under TSan in CI.
_TARGET_DIRS = ("src/", "bench/", "examples/")


def _targets(rel: str) -> bool:
    return rel.startswith(_TARGET_DIRS) and not rel.startswith(_SEAM_DIRS)


# --------------------------------------------------------------------------
# concurrency.raw_thread

_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(?:jthread|thread)\b(?!\s*::)"  # std::thread type use
    r"|\bpthread_create\s*\("
    r"|\bstd\s*::\s*async\s*[(<]"
)
_THIS_THREAD_RE = re.compile(r"\bstd\s*::\s*this_thread\b")


def _check_raw_thread(sf: SourceFile, ctx) -> Iterable[Finding]:
    for lineno, line in enumerate(sf.stripped_lines, start=1):
        # std::this_thread::yield/sleep in sanctioned call sites is caught
        # by the same std::thread token; exclude the namespace itself.
        cleaned = _THIS_THREAD_RE.sub("", line)
        if _THREAD_RE.search(cleaned):
            yield Finding(
                sf.rel,
                lineno,
                "",
                "thread spawning lives only in the sanctioned seam files "
                "(src/ingest pipeline/sharded/frame_ring, src/campaign "
                "runner, src/telemetry sink drain, src/util); route "
                "parallel work through those seams so the deterministic "
                "single-thread reference stays authoritative",
            )


register(
    Rule(
        id="concurrency.raw_thread",
        family="concurrency",
        severity=ERROR,
        summary="std::thread/jthread/async/pthread_create outside sanctioned seams",
        rationale=(
            "Every thread is a place where event order can diverge from the "
            "deterministic reference run. The repo's contract (threaded "
            "ingest must match the single-thread pump exactly; sharded DES "
            "must merge to byte-identical sidecars) is only checkable if "
            "thread creation is confined to seams built for it: the ingest "
            "pipeline's producer/consumer pump, ShardedReplay's fan-out, "
            "and util's worker plumbing. A thread spawned elsewhere "
            "bypasses the barriers, mailboxes, and deterministic-merge "
            "machinery those seams provide."
        ),
        fix_hint=(
            "Move the parallel section behind the ingest pump, the sharded "
            "replay, the campaign runner, or a util worker seam; if a new "
            "seam is genuinely "
            "needed, add its file prefix to the sanctioned list in "
            "rules_concurrency.py in the same PR that adds its "
            "determinism-equivalence test."
        ),
        targets=_targets,
        check=_check_raw_thread,
    )
)


# --------------------------------------------------------------------------
# concurrency.shared_mutable_static
#
# Token-level scope walk. At namespace scope, each declaration either ends
# at `;` or opens a braced body. We classify a declaration as an *object*
# (flaggable) when it is not a function definition/declaration, not a type
# or namespace, not a template, not a using/typedef/friend, and carries no
# const/constexpr/constinit qualifier. Function-local `static` non-const
# objects are flagged too: they are shared across calls and threads all the
# same.

_TYPE_INTRODUCERS = frozenset(
    {"namespace", "class", "struct", "union", "enum", "concept"}
)
_SKIP_INTRODUCERS = frozenset(
    {"using", "typedef", "friend", "template", "extern", "static_assert"}
)
_CONST_QUALIFIERS = frozenset({"const", "constexpr", "constinit"})


def _match_brace(tokens: List[Token], i: int) -> int:
    """Index just past the `}` matching the `{` at `i`."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


# Punctuation that may follow a brace *initializer* mid-declaration
# (member-init lists, aggregate args): the declaration continues past it.
# Anything else after a matched brace group means the group was a body.
_BRACE_CONTINUATIONS = frozenset(
    {",", ")", "]", "=", "{", "+", "-", "*", "/", "."}
)


def _declaration_end(tokens: List[Token], i: int) -> int:
    """Index just past this declaration: past `;`, or past a braced body
    and its optional trailing `;`. Brace-init groups inside the
    declaration (`cusum_(Params{a, b}), k_(c) { ... }`) are skipped, not
    mistaken for the body."""
    while i < len(tokens):
        t = tokens[i].text
        if t == ";":
            return i + 1
        if t == "{":
            i = _match_brace(tokens, i)
            if i < len(tokens) and tokens[i].text == ";":
                return i + 1
            if i < len(tokens) and tokens[i].text in _BRACE_CONTINUATIONS:
                continue  # initializer group; declaration goes on
            return i
        i += 1
    return i


def _is_function_decl(tokens: List[Token], start: int, end: int) -> bool:
    """True when the declaration in [start, end) declares a function: a
    top-level parenthesized parameter list appears before any `=`/`{`.

    `std::atomic<int> x{0};` has no `(`; `Foo y(1);` *does* — the classic
    most-vexing ambiguity. We resolve it the cheap way: a paren group
    counts as a parameter list only if it is empty, starts with a type-ish
    token (`const`, a known keyword, an identifier followed by another
    identifier/`&`/`*`/`<`/`::`), or contains `void`. That classifies
    every real signature in this tree correctly; the corpus selftest pins
    the behavior.
    """
    i = start
    angle = 0
    while i < end:
        t = tokens[i]
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif angle == 0:
            if t.text in ("=", "{"):
                return False
            if t.text == "operator":
                return True
            if t.text == "(":
                return _paren_is_param_list(tokens, i, end)
        i += 1
    return False


def _paren_is_param_list(tokens: List[Token], i: int, end: int) -> bool:
    j = i + 1
    if j >= end:
        return False
    first = tokens[j]
    if first.text == ")":
        return True  # empty parameter list
    if first.text in ("void", "const"):
        return True
    if first.kind == IDENT:
        # `Type name`, `Type&`, `Type*`, `ns::Type`, `Type<...>` — a type
        # followed by declarator machinery reads as a parameter; a bare
        # literal/identifier argument (`foo(3)`, `foo(x)`) does not.
        k = j + 1
        while k < end and tokens[k].text in ("::",) :
            k += 2
        if k < end and (
            tokens[k].kind == IDENT or tokens[k].text in ("&", "*", "<")
        ):
            return True
    return False


def _object_name(tokens: List[Token], start: int, end: int) -> Optional[Token]:
    """Best-effort declared-name token for the finding message/line."""
    last_ident: Optional[Token] = None
    angle = 0
    for i in range(start, end):
        t = tokens[i]
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif angle == 0:
            if t.text in ("=", "{", "(", ";"):
                break
            if t.kind == IDENT and t.text not in _CONST_QUALIFIERS:
                last_ident = t
    return last_ident


def _scan_scope(
    tokens: List[Token],
    start: int,
    end: int,
    sf: SourceFile,
    in_function: bool,
    findings: List[Finding],
) -> None:
    i = start
    while i < end:
        t = tokens[i]
        if t.text == "namespace":
            # namespace [name] { ... }  (or namespace alias = ...;)
            j = i + 1
            while j < end and tokens[j].text not in ("{", ";", "="):
                j += 1
            if j < end and tokens[j].text == "{":
                close = _match_brace(tokens, j)
                _scan_scope(tokens, j + 1, close - 1, sf, False, findings)
                i = close
            else:
                i = _declaration_end(tokens, i)
            continue
        if t.text in ("class", "struct", "union", "enum", "concept"):
            i = _declaration_end(tokens, i)
            continue
        if t.text in _SKIP_INTRODUCERS:
            i = _declaration_end(tokens, i)
            continue
        if t.text == "#":  # preprocessor fragments tokenized per line
            i += 1
            continue
        # Macro invocations at namespace scope (BENCHMARK(...), TEST(...),
        # registration macros) follow the ALL_CAPS(...) convention; they
        # are not object declarations.
        if (
            t.kind == IDENT
            and t.text.isupper()
            and i + 1 < end
            and tokens[i + 1].text == "("
        ):
            i = _declaration_end(tokens, i)
            continue
        decl_end = _declaration_end(tokens, i)
        qualifiers = {
            tok.text for tok in tokens[i:decl_end] if tok.kind == IDENT
        }
        is_static = "static" in qualifiers
        mutable_decl = (
            not (qualifiers & _CONST_QUALIFIERS)
            and not _is_function_decl(tokens, i, decl_end)
        )
        if mutable_decl and (not in_function or is_static):
            name_tok = _object_name(tokens, i, decl_end)
            if name_tok is not None:
                where = (
                    "function-local static"
                    if in_function
                    else "namespace-scope"
                )
                findings.append(
                    Finding(
                        sf.rel,
                        name_tok.line,
                        "",
                        f"{where} mutable object '{name_tok.text}' is shared "
                        "state outside the sanctioned seam files (src/ingest "
                        "pipeline/sharded/frame_ring, src/campaign/runner, "
                        "src/telemetry, src/util); pass state explicitly or "
                        "move the seam",
                    )
                )
        elif not mutable_decl and _is_function_decl(tokens, i, decl_end):
            # Recurse into the function *body* (the brace group that closes
            # the declaration, not a brace-init in the member-init list)
            # for static locals.
            k = i
            while k < decl_end:
                if tokens[k].text == "{":
                    close = _match_brace(tokens, k)
                    if close >= decl_end - 1:
                        _scan_scope(
                            tokens, k + 1, close - 1, sf, True, findings
                        )
                        break
                    k = close
                else:
                    k += 1
        i = decl_end


def _check_shared_mutable_static(sf: SourceFile, ctx) -> Iterable[Finding]:
    findings: List[Finding] = []
    _scan_scope(sf.tokens, 0, len(sf.tokens), sf, False, findings)
    return findings


register(
    Rule(
        id="concurrency.shared_mutable_static",
        family="concurrency",
        severity=ERROR,
        summary="mutable namespace-scope / static-local state outside seams",
        rationale=(
            "A mutable global or static local is invisible shared state: "
            "two stubs in the sharded DES, or the ingest producer and "
            "consumer, can touch it without any seam mediating — a data "
            "race at worst and hidden cross-run coupling at best. The tree "
            "keeps all such state behind src/util (e.g. the logging level "
            "atomics) and the ingest seam files, where the threading "
            "contracts are tested under TSan. Constants "
            "(const/constexpr/constinit) are fine anywhere."
        ),
        fix_hint=(
            "Pass the state through constructor/function parameters, hang "
            "it off the owning object, or mark it const/constexpr. If it "
            "is genuinely a process-wide seam, move it to src/util with an "
            "atomic type and a TSan-covered test."
        ),
        targets=_targets,
        check=_check_shared_mutable_static,
    )
)
