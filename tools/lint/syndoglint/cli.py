"""Command-line interface.

Exit status: 0 clean, 1 findings, 2 usage/configuration error — the same
contract the original flat script had, so CMake/CI wiring is unchanged.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .cache import Cache
from .engine import build_context, run
from .output import (
    explain,
    list_rules,
    render_json,
    render_sarif,
    render_text,
)

_CHECK_FAMILIES = ("determinism", "concurrency", "hotpath", "layering", "headers")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="syndog_lint",
        description="repo-invariant static analysis for the SYN-dog tree",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[3],
        help="repository root (default: inferred from this script's location)",
    )
    parser.add_argument(
        "--checks",
        default=",".join(_CHECK_FAMILIES),
        help=f"comma list from {{{', '.join(_CHECK_FAMILIES)}}}",
    )
    parser.add_argument(
        "--cxx",
        default=os.environ.get("CXX", "c++"),
        help="C++ compiler for the header self-containment check",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 4,
        help="parallelism for header compiles",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write findings to this file instead of stdout",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help="incremental cache file (content-hash keyed); omit to disable",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss counters to stderr",
    )
    parser.add_argument(
        "--min-header-cache-hit-rate",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail (exit 2) when the header-compile cache hit rate falls "
        "below FRAC (CI regression guard for warm runs)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print the catalog entry for a rule id (or 'all') and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    parser.add_argument(
        "--waiver-report",
        action="store_true",
        help="print the per-rule waiver inventory to stderr",
    )
    parser.add_argument("--version", action="version", version=__version__)
    return parser


def main(argv: Sequence[str]) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0
    if args.explain is not None:
        text = explain(args.explain)
        if text is None:
            print(
                f"syndog_lint: unknown rule '{args.explain}' "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"syndog_lint: no src/ under {root}", file=sys.stderr)
        return 2

    requested = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = requested - set(_CHECK_FAMILIES)
    if unknown:
        print(
            f"syndog_lint: unknown checks: {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2

    cache = Cache(args.cache) if args.cache is not None else None
    ctx = build_context(root, args.cxx, args.jobs, cache)
    result = run(ctx, requested)
    if cache is not None:
        cache.save()

    if args.format == "text":
        rendered = render_text(result)
    elif args.format == "json":
        rendered = render_json(result)
    else:
        rendered = render_sarif(result)

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            rendered + ("\n" if rendered else ""), encoding="utf-8"
        )
        if args.format == "text" and result.findings:
            # keep failures visible in the terminal too
            print(rendered)
    elif rendered:
        print(rendered)

    if args.waiver_report:
        print("syndog_lint: waiver inventory:", file=sys.stderr)
        for w in result.waivers:
            status = "used" if w.used else "UNUSED"
            just = "justified" if w.justified else "NO JUSTIFICATION"
            print(
                f"  {w.rel}:{w.line}: allow({', '.join(w.rules)}) "
                f"[{status}, {just}]",
                file=sys.stderr,
            )

    if args.cache_stats and cache is not None:
        stats = cache.stats()
        print(f"syndog_lint: cache stats: {stats}", file=sys.stderr)

    if args.min_header_cache_hit_rate is not None:
        rate = cache.header_hit_rate() if cache is not None else None
        if rate is None or rate < args.min_header_cache_hit_rate:
            shown = "n/a" if rate is None else f"{rate:.2f}"
            print(
                "syndog_lint: header cache hit rate "
                f"{shown} below required "
                f"{args.min_header_cache_hit_rate:.2f}",
                file=sys.stderr,
            )
            return 2

    if result.findings:
        print(
            f"syndog_lint: {len(result.findings)} finding(s)", file=sys.stderr
        )
        return 1
    checked = ", ".join(result.checked_families)
    print(f"syndog_lint: clean ({checked})", file=sys.stderr)
    return 0
