"""Shared lexer pass: stripping, tokens, scope depth, waivers, pragmas.

Every rule consumes the same `SourceFile` object, built exactly once per
file per run:

  * `stripped_lines` — the source with comments and string/char literal
    *contents* blanked out (quotes preserved), line structure intact, so
    line numbers in findings always refer to the real file. Raw strings
    (`R"delim(...)delim"`) are handled, including multi-line ones.
  * `tokens` — identifier/number/punctuation tokens with (line, brace
    depth) attached; enough structure for scope-sensitive rules without
    pretending to be a C++ parser.
  * `waivers` — parsed `// syndog-lint: allow(...)` annotations, same-line
    and next-line forms, with their justification text.
  * `pragmas` — file-level markers such as `// syndog-lint: hotpath-file`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

# --------------------------------------------------------------------------
# Stripping

_RAW_STRING_OPEN = re.compile(r'R"([^()\\ \t\v\f\n]{0,16})\(')


def strip_source(text: str) -> str:
    """Blanks comments and literal contents while preserving line structure.

    `// ...` and `/* ... */` comments become spaces/newlines; the contents
    of "..." and '...' literals are blanked but the quotes stay (so token
    boundaries survive); raw strings are recognized so a `//` inside one is
    not mistaken for a comment.
    """
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif ch == "R" and _RAW_STRING_OPEN.match(text, i):
            m = _RAW_STRING_OPEN.match(text, i)
            assert m is not None
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, m.end())
            end = n if j == -1 else j + len(closer)
            out.append('""')
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote)
            out.append(quote if j < n and text[j] == quote else "")
            out.append("\n" * text.count("\n", i, min(j + 1, n)))
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Tokens

IDENT = "ident"
NUMBER = "number"
PUNCT = "punct"

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"  # identifier / keyword
    r"|\d[\w.]*"  # number (incl. 0x..., 1.5e3, digit separators)
    r"|::|<<=|>>=|<=>|->\*|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%^&|~!<>=?:;,.(){}\[\]#]"
)


@dataclass
class Token:
    kind: str
    text: str
    line: int
    depth: int  # brace depth *before* this token is applied


def tokenize(stripped: str) -> List[Token]:
    """Tokens for scope-sensitive rules. Preprocessor lines (and their
    backslash continuations) are line-based, not declaration-based — they
    carry no `;`/`{` structure — so they are excluded from the stream;
    rules that care about #include/#define text use `stripped_lines`."""
    tokens: List[Token] = []
    depth = 0
    in_directive = False
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            continue
        for m in _TOKEN_RE.finditer(line):
            text = m.group(0)
            kind = PUNCT
            if text[0].isalpha() or text[0] == "_":
                kind = IDENT
            elif text[0].isdigit():
                kind = NUMBER
            tokens.append(Token(kind, text, lineno, depth))
            if text == "{":
                depth += 1
            elif text == "}":
                depth = max(0, depth - 1)
    return tokens


# --------------------------------------------------------------------------
# Waivers and pragmas

# Same-line: code;  // syndog-lint: allow(rule.a, rule.b) -- why this is ok
# Next-line: // syndog-lint: allow-next-line(rule.a) -- why this is ok
# File-wide pragma: // syndog-lint: hotpath-file [-- note]
_WAIVER_RE = re.compile(
    r"syndog-lint:\s*(allow|allow-next-line)\(([\w.,\s-]+)\)\s*(.*)"
)
_PRAGMA_RE = re.compile(r"syndog-lint:\s*(hotpath-file)\b")
_JUSTIFICATION_STRIP = re.compile(r"^[-—–:\s]+")


@dataclass
class Waiver:
    line: int  # the line whose findings this waiver suppresses
    rules: Set[str]
    justification: str
    declared_line: int  # where the comment physically sits
    used_rules: Set[str] = field(default_factory=set)

    @property
    def justified(self) -> bool:
        return bool(self.justification)


@dataclass
class SourceFile:
    path: Path
    rel: str  # posix path relative to the scan root
    raw: str
    stripped_lines: List[str] = field(default_factory=list)
    tokens: List[Token] = field(default_factory=list)
    waivers: Dict[int, Waiver] = field(default_factory=dict)
    pragmas: Set[str] = field(default_factory=set)
    includes: List[Tuple[int, str]] = field(default_factory=list)  # syndog/<mod>

    @property
    def raw_lines(self) -> List[str]:
        return self.raw.splitlines()

    def waiver_for(self, line: int, rule: str) -> Optional[Waiver]:
        w = self.waivers.get(line)
        if w is not None and (rule in w.rules or "all" in w.rules):
            return w
        return None


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]syndog/([A-Za-z0-9_]+)/')


def parse_waivers(raw: str) -> Tuple[Dict[int, Waiver], Set[str]]:
    """Scans raw comment text for waivers and file pragmas."""
    waivers: Dict[int, Waiver] = {}
    pragmas: Set[str] = set()
    for lineno, line in enumerate(raw.splitlines(), start=1):
        comment = line.find("//")
        if comment == -1:
            continue
        body = line[comment + 2 :]
        pm = _PRAGMA_RE.search(body)
        if pm:
            pragmas.add(pm.group(1))
        wm = _WAIVER_RE.search(body)
        if not wm:
            continue
        target = lineno + 1 if wm.group(1) == "allow-next-line" else lineno
        rules = {item.strip() for item in wm.group(2).split(",") if item.strip()}
        justification = _JUSTIFICATION_STRIP.sub("", wm.group(3)).strip()
        existing = waivers.get(target)
        if existing is not None:
            existing.rules |= rules
            if justification and not existing.justification:
                existing.justification = justification
        else:
            waivers[target] = Waiver(target, rules, justification, lineno)
    return waivers, pragmas


def lex_file(path: Path, rel: str, raw: Optional[str] = None) -> SourceFile:
    if raw is None:
        raw = path.read_text(encoding="utf-8", errors="replace")
    sf = SourceFile(path=path, rel=rel, raw=raw)
    stripped = strip_source(raw)
    sf.stripped_lines = stripped.splitlines()
    sf.tokens = tokenize(stripped)
    sf.waivers, sf.pragmas = parse_waivers(raw)
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            sf.includes.append((lineno, m.group(1)))
    return sf
