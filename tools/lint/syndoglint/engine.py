"""Analysis driver: lex once, run rules, account for waivers.

Two passes over the tree:

  1. lex every file under the scanned roots, collect the cross-file
     unordered-name pool (determinism.unordered_iteration needs member
     names declared in headers when flagging loops in .cpp files);
  2. run per-file rules (cache-accelerated) and tree rules, then apply
     waivers centrally and emit the waiver-accounting findings
     (`waiver.missing_justification`, `waiver.unknown_rule`,
     `waiver.unused`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from .cache import Cache
from .lexer import SourceFile, lex_file
from .model import ERROR, Finding, Rule, WaiverRecord, all_rules, get_rule, register
from .rules_determinism import collect_unordered_names
from .rules_layering import LAYER_DEPS

# Importing a rule module registers its rules; every family must be pulled
# in here so --list-rules/--explain see the full catalog.
from . import rules_concurrency  # noqa: F401
from . import rules_headers  # noqa: F401
from . import rules_hotpath  # noqa: F401

SOURCE_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".cxx")
SCAN_ROOTS = ("src", "tests", "bench", "examples")

# Waiver meta-rules: registered here because the engine itself emits them.
_WAIVER_RATIONALE = (
    "A waiver is a reviewed exception, not an off switch. Every "
    "`// syndog-lint: allow(...)` must carry an inline justification "
    "(`-- <why>`), must name rules that exist, and must actually suppress "
    "a finding — a stale waiver left behind after the code it excused "
    "changed is itself a finding, so the waiver inventory can only shrink "
    "unless someone argues for a new one in review."
)
for _rid, _summary in (
    (
        "waiver.missing_justification",
        "waiver without an inline `-- <why>` justification",
    ),
    ("waiver.unknown_rule", "waiver names a rule id that does not exist"),
    ("waiver.unused", "waiver suppresses nothing (stale)"),
):
    register(
        Rule(
            id=_rid,
            family="waivers",
            severity=ERROR,
            summary=_summary,
            rationale=_WAIVER_RATIONALE,
            fix_hint=(
                "Write `// syndog-lint: allow(<rule.id>) -- <one-line why>` "
                "on (or `allow-next-line` above) the excused line; delete "
                "waivers that no longer suppress anything."
            ),
            waivable=False,
        )
    )


@dataclass
class TreeContext:
    root: Path
    cxx: str
    jobs: int
    cache: Optional[Cache] = None
    layer_deps: Dict[str, Set[str]] = field(default_factory=lambda: LAYER_DEPS)
    files: Dict[str, SourceFile] = field(default_factory=dict)
    unordered_names: Set[str] = field(default_factory=set)
    modules_on_disk: Set[str] = field(default_factory=set)

    def files_under(self, prefix: str) -> List[SourceFile]:
        return [
            self.files[rel] for rel in sorted(self.files) if rel.startswith(prefix)
        ]


def discover_files(root: Path) -> List[Path]:
    paths: List[Path] = []
    for sub in SCAN_ROOTS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                paths.append(path)
    return paths


def build_context(
    root: Path, cxx: str, jobs: int, cache: Optional[Cache] = None
) -> TreeContext:
    ctx = TreeContext(root=root, cxx=cxx, jobs=jobs, cache=cache)
    for path in discover_files(root):
        rel = path.relative_to(root).as_posix()
        ctx.files[rel] = lex_file(path, rel)
    for sf in ctx.files.values():
        ctx.unordered_names |= collect_unordered_names(sf)
    src = root / "src"
    if src.is_dir():
        ctx.modules_on_disk = {
            p.name
            for p in src.iterdir()
            if p.is_dir() and (p / "CMakeLists.txt").exists()
        }
    return ctx


@dataclass
class RunResult:
    findings: List[Finding] = field(default_factory=list)
    waivers: List[WaiverRecord] = field(default_factory=list)
    checked_families: List[str] = field(default_factory=list)


def _run_fingerprint(ctx: TreeContext, families: Set[str]) -> str:
    from . import __version__

    names = ",".join(sorted(ctx.unordered_names))
    return f"{__version__}|{','.join(sorted(families))}|{names}"


def run(
    ctx: TreeContext,
    families: Set[str],
    account_waivers: bool = True,
) -> RunResult:
    result = RunResult(checked_families=sorted(families))
    rules = [r for r in all_rules() if r.family in families]
    file_rules = [r for r in rules if r.check is not None]
    tree_rules = [r for r in rules if r.tree_check is not None]

    raw_findings: List[Finding] = []
    fingerprint = _run_fingerprint(ctx, families)
    for rel in sorted(ctx.files):
        sf = ctx.files[rel]
        cached = None
        key = None
        if ctx.cache is not None:
            key = ctx.cache.file_key(sf.raw, fingerprint)
            cached = ctx.cache.file_findings(rel, key)
        if cached is not None:
            raw_findings.extend(
                Finding(rel, int(line), str(rule), str(message))
                for line, rule, message in cached
            )
            continue
        produced: List[Finding] = []
        for rule in file_rules:
            if rule.targets is not None and not rule.targets(rel):
                continue
            for finding in rule.check(sf, ctx):
                if not finding.rule:
                    finding.rule = rule.id
                produced.append(finding)
        if ctx.cache is not None and key is not None:
            ctx.cache.store_file_findings(
                rel, key, [[f.line, f.rule, f.message] for f in produced]
            )
        raw_findings.extend(produced)

    for rule in tree_rules:
        for finding in rule.tree_check(ctx):
            if not finding.rule:
                finding.rule = rule.id
            raw_findings.append(finding)

    # -- central waiver application -----------------------------------------
    for finding in raw_findings:
        rule = get_rule(finding.rule)
        sf = ctx.files.get(finding.rel)
        if (
            sf is not None
            and rule is not None
            and rule.waivable
            and (waiver := sf.waiver_for(finding.line, finding.rule))
        ):
            waiver.used_rules.add(finding.rule)
            continue
        result.findings.append(finding)

    # -- waiver accounting ---------------------------------------------------
    if account_waivers:
        complete = {r.family for r in all_rules() if r.family != "waivers"} <= families
        for rel in sorted(ctx.files):
            sf = ctx.files[rel]
            for line in sorted(sf.waivers):
                waiver = sf.waivers[line]
                result.waivers.append(
                    WaiverRecord(
                        rel,
                        waiver.declared_line,
                        sorted(waiver.rules),
                        waiver.justified,
                        sorted(waiver.used_rules),
                    )
                )
                if not waiver.justified:
                    result.findings.append(
                        Finding(
                            rel,
                            waiver.declared_line,
                            "waiver.missing_justification",
                            "waiver has no inline justification; write "
                            "`// syndog-lint: allow(<rule>) -- <why>`",
                        )
                    )
                for rid in sorted(waiver.rules):
                    if rid != "all" and get_rule(rid) is None:
                        result.findings.append(
                            Finding(
                                rel,
                                waiver.declared_line,
                                "waiver.unknown_rule",
                                f"waiver names unknown rule '{rid}'; see "
                                "`syndog_lint --list-rules`",
                            )
                        )
                if complete and not waiver.used_rules:
                    result.findings.append(
                        Finding(
                            rel,
                            waiver.declared_line,
                            "waiver.unused",
                            "waiver suppresses nothing on its target line; "
                            "delete it (stale waivers hide future findings)",
                        )
                    )

    result.findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return result
