"""determinism.* — bit-reproducibility from seeds.

The repo's core contract: every experiment replays bit-identically from a
master seed and every deterministic `BENCH_*.json` sidecar is byte-identical
across runs (CLAUDE.md, docs/STATIC_ANALYSIS.md). These rules ban the three
ways that contract silently dies: ambient entropy, wall-clock reads, and —
new with the threaded roadmap work — nondeterministic iteration order
leaking into ordered output.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set

from .lexer import IDENT, SourceFile
from .model import ERROR, Finding, Rule, register

_CXX_DIRS = ("src/", "tests/", "bench/", "examples/")


def _in_cxx_tree(rel: str) -> bool:
    return rel.startswith(_CXX_DIRS)


# Files that legitimately own the raw mersenne-twister engine.
_RNG_OWNERS = frozenset(
    {"src/util/rng.cpp", "src/util/include/syndog/util/rng.hpp"}
)

# Directories whose files may read std::chrono clocks directly: the time
# utilities and the telemetry layer's WallClock seam.
_WALL_CLOCK_OWNER_DIRS = ("src/util/", "src/obs/")

_PATTERN_RULES = (
    (
        "determinism.random_device",
        re.compile(r"\brandom_device\b"),
        "std::random_device reads ambient entropy; take a seeded util::Rng& instead",
        None,
    ),
    (
        "determinism.rand",
        re.compile(r"(?<![\w:.])rand\s*\("),
        "rand() is a hidden global generator; take a seeded util::Rng& instead",
        None,
    ),
    (
        "determinism.srand",
        re.compile(r"(?<![\w:.])srand\s*\("),
        "srand() mutates hidden global state; seed an explicit util::Rng instead",
        None,
    ),
    (
        "determinism.time_seed",
        re.compile(r"(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "wall-clock seeding breaks reproducibility; derive seeds via util::Rng::child",
        None,
    ),
    (
        "determinism.raw_engine",
        re.compile(r"\bmt19937(?:_64)?\b"),
        "raw mersenne-twister engines live only in syndog/util/rng; use util::Rng&",
        lambda rel: rel in _RNG_OWNERS,
    ),
    (
        "determinism.wall_clock",
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
        "wall-clock reads live behind obs::WallClock (src/obs); sim code uses "
        "util::SimTime so replays stay byte-identical",
        lambda rel: rel.startswith(_WALL_CLOCK_OWNER_DIRS),
    ),
)


def _make_pattern_check(pattern, message, exempt):
    def check(sf: SourceFile, ctx) -> Iterable[Finding]:
        if exempt is not None and exempt(sf.rel):
            return
        for lineno, line in enumerate(sf.stripped_lines, start=1):
            if pattern.search(line):
                yield Finding(sf.rel, lineno, "", message)

    return check


for _rid, _pattern, _message, _exempt in _PATTERN_RULES:
    register(
        Rule(
            id=_rid,
            family="determinism",
            severity=ERROR,
            summary=_message,
            rationale=(
                "Experiments must be bit-reproducible from seeds; any read of "
                "ambient entropy or the wall clock makes a run unrepeatable "
                "and silently invalidates every BENCH_*.json comparison. "
                "Stochastic components take an explicit util::Rng&, child "
                "streams come from util::Rng::child, and wall time is read "
                "only through the obs::WallClock seam."
            ),
            fix_hint=(
                "Thread a util::Rng& parameter (or obs::WallClock for wall "
                "time) to the call site; never reach for global entropy."
            ),
            targets=_in_cxx_tree,
            check=_make_pattern_check(_pattern, _message, _exempt),
        )
    )


# --------------------------------------------------------------------------
# determinism.unordered_iteration
#
# Iterating a std::unordered_{map,set} visits elements in hash-table order —
# a function of libstdc++ version, insertion history, and pointer values.
# Any such loop that feeds ordered output (obs exporters, bench sidecars,
# trace/CSV writers, test expectations) breaks byte-identical sidecars the
# day the container reseeds. The engine collects every identifier declared
# with an unordered type anywhere in the tree (pass 1), then flags range-for
# loops and .begin()/.cbegin() calls over those names (pass 2). Loops whose
# output is provably order-independent carry a justified waiver; everything
# else goes through util::sorted_items()/sorted_keys() (syndog/util/sorted.hpp).

_UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")

# for ( <decl> : <expr> )  — capture the last identifier of <expr>.
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*:\s*(?:[\w:]+\s*\.\s*|\bthis\s*->\s*|[\w:]+\s*->\s*)*"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*\)"
)

_BEGIN_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?begin\s*\(")


def collect_unordered_names(sf: SourceFile) -> Set[str]:
    """Names declared with an unordered container type in this file.

    Token scan: at each `unordered_map`/`unordered_set` token, skip the
    template argument list by angle-bracket matching, then take the next
    identifier as the declared name. Also follows one level of
    `using Alias = std::unordered_map<...>` so members declared via a local
    alias are still caught.
    """
    names: Set[str] = set()
    aliases: Set[str] = set()
    tokens = sf.tokens
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind == IDENT and tok.text in (
            "unordered_map",
            "unordered_set",
            "unordered_multimap",
            "unordered_multiset",
        ):
            # alias form: using X = std::unordered_map<...>;
            j = i - 1
            while j >= 0 and tokens[j].text in ("std", "::"):
                j -= 1
            alias_name = None
            if j >= 1 and tokens[j].text == "=" and tokens[j - 1].kind == IDENT:
                alias_name = tokens[j - 1].text
            # Skip template args by <> matching.
            k = i + 1
            if k < len(tokens) and tokens[k].text == "<":
                depth = 0
                while k < len(tokens):
                    t = tokens[k].text
                    if t == "<":
                        depth += 1
                    elif t == ">":
                        depth -= 1
                        if depth == 0:
                            k += 1
                            break
                    elif t == ">>":
                        depth -= 2
                        if depth <= 0:
                            k += 1
                            break
                    elif t in (";", "{"):
                        break
                    k += 1
            if alias_name is not None:
                aliases.add(alias_name)
            elif k < len(tokens) and tokens[k].kind == IDENT:
                names.add(tokens[k].text)
            i = k
            continue
        i += 1
    # One level of alias resolution: `Alias name;` declarations.
    if aliases:
        for idx in range(len(tokens) - 1):
            if (
                tokens[idx].kind == IDENT
                and tokens[idx].text in aliases
                and tokens[idx + 1].kind == IDENT
            ):
                names.add(tokens[idx + 1].text)
    return names


def _check_unordered_iteration(sf: SourceFile, ctx) -> Iterable[Finding]:
    pool = ctx.unordered_names
    if not pool:
        return
    for lineno, line in enumerate(sf.stripped_lines, start=1):
        hits: List[str] = []
        m = _RANGE_FOR_RE.search(line)
        if m and m.group(1) in pool:
            hits.append(m.group(1))
        for bm in _BEGIN_RE.finditer(line):
            if bm.group(1) in pool and bm.group(1) not in hits:
                hits.append(bm.group(1))
        for name in hits:
            yield Finding(
                sf.rel,
                lineno,
                "",
                f"iteration over unordered container '{name}' visits elements "
                "in hash-table order; route ordered output through "
                "util::sorted_items()/sorted_keys() (syndog/util/sorted.hpp) "
                "or waive with a justification that order cannot escape",
            )


register(
    Rule(
        id="determinism.unordered_iteration",
        family="determinism",
        severity=ERROR,
        summary=(
            "loops over std::unordered_{map,set} leak hash-table order into "
            "output"
        ),
        rationale=(
            "std::unordered_* iteration order depends on the standard "
            "library, the insertion history, and (for pointer keys) ASLR. "
            "A range-for over one that feeds an exporter, sidecar, CSV "
            "writer, or test expectation produces output that changes "
            "between toolchains and — once the sharded DES and multi-ring "
            "ingest land — between worker counts. The fix is a sorted "
            "adapter at the boundary: util::sorted_items(map) / "
            "util::sorted_keys(set) give a deterministic key-ordered view "
            "at snapshot cost only where snapshots are taken."
        ),
        fix_hint=(
            "Iterate util::sorted_items(m)/util::sorted_keys(s) from "
            "syndog/util/sorted.hpp, switch the member to std::map if it is "
            "iterated on every export, or waive with a justification "
            "proving iteration order cannot reach any output."
        ),
        targets=_in_cxx_tree,
        check=_check_unordered_iteration,
    )
)
