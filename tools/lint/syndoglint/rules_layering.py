"""layering.* — #include edges between src/ modules follow the DAG.

Keep LAYER_DEPS in sync with DESIGN.md §3 and the DEPS lists in
src/*/CMakeLists.txt:
  util -> obs/stats/net -> pcap/classify -> detect/trace -> sim/attack
       -> fault -> core/traceback
obs is the in-process observability layer: it may depend only on util
(it must stay embeddable under every other module), while any module may
depend on it. telemetry is the fleet aggregation backend on top of obs
(sink, syndog-tsf/1 format, rollups); core feeds it via FleetRecorder.
mitigate closes the loop on top of core (alarm edges in, router policers
out); nothing below it may depend on it. campaign is the sharded
parallel DES runner on top of core + sim (per-cell schedulers, mailbox
barriers); like mitigate/ingest, nothing may depend on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .model import ERROR, Finding, Rule, register

LAYER_DEPS: Dict[str, Set[str]] = {
    "util": set(),
    "obs": {"util"},
    "stats": {"util"},
    "net": {"util"},
    "pcap": {"net", "util"},
    "classify": {"net", "obs", "util"},
    "detect": {"obs", "stats", "util"},
    "trace": {"net", "stats", "util"},
    "sim": {"net", "obs", "util"},
    "fault": {"net", "obs", "sim", "util"},
    "attack": {"util"},
    "traceback": {"util"},
    "telemetry": {"obs", "util"},
    "core": {"classify", "detect", "net", "obs", "sim", "stats",
             "telemetry", "util"},
    "ingest": {"classify", "core", "net", "obs", "pcap", "sim", "util"},
    "mitigate": {"core", "net", "obs", "sim", "telemetry", "util"},
    "campaign": {"core", "net", "obs", "sim", "util"},
}


def _transitive_deps(deps: Dict[str, Set[str]], module: str) -> Set[str]:
    seen: Set[str] = set()
    stack = list(deps.get(module, ()))
    while stack:
        dep = stack.pop()
        if dep in seen:
            continue
        seen.add(dep)
        stack.extend(deps.get(dep, ()))
    return seen


def _dag_cycle(deps: Dict[str, Set[str]]) -> Optional[List[str]]:
    """Returns a cycle as a module list if the DAG has one, else None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in deps}
    trail: List[str] = []

    def visit(m: str) -> Optional[List[str]]:
        color[m] = GREY
        trail.append(m)
        for dep in sorted(deps.get(m, ())):
            if color.get(dep, WHITE) == GREY:
                return trail[trail.index(dep) :] + [dep]
            if color.get(dep, WHITE) == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        trail.pop()
        color[m] = BLACK
        return None

    for m in sorted(deps):
        if color[m] == WHITE:
            cycle = visit(m)
            if cycle:
                return cycle
    return None


def _check_layering(ctx) -> Iterable[Finding]:
    deps = ctx.layer_deps
    cycle = _dag_cycle(deps)
    if cycle:
        yield Finding(
            "tools/lint/syndoglint/rules_layering.py",
            1,
            "layering.cycle",
            "LAYER_DEPS declares a dependency cycle: " + " -> ".join(cycle),
        )

    for module in sorted(ctx.modules_on_disk - set(deps)):
        yield Finding(
            f"src/{module}/CMakeLists.txt",
            1,
            "layering.unregistered",
            f"module '{module}' is not declared in LAYER_DEPS "
            "(tools/lint/syndoglint/rules_layering.py); add it with its "
            "dependencies",
        )

    for module in sorted(ctx.modules_on_disk & set(deps)):
        allowed = _transitive_deps(deps, module) | {module}
        prefix = f"src/{module}/"
        for sf in ctx.files_under(prefix):
            for lineno, target in sf.includes:
                if target in allowed:
                    continue
                yield Finding(
                    sf.rel,
                    lineno,
                    "layering.violation",
                    f"module '{module}' may not include syndog/{target}/ "
                    f"(allowed: "
                    f"{', '.join(sorted(allowed - {module})) or 'none'})",
                )


_LAYERING_RATIONALE = (
    "The module DAG is what makes the tree refactorable at this pace: a "
    "reverse or lateral include (net -> pcap, detect -> trace) quietly "
    "turns two layers into one and every later split pays for it. The DAG "
    "is mirrored from DESIGN.md §3 and each module's "
    "syndog_add_module(... DEPS ...); transitive deps are allowed. The "
    "map itself is cycle-checked, and a module directory missing from "
    "LAYER_DEPS is its own finding so the map cannot rot."
)

for _rid, _summary in (
    ("layering.violation", "#include edge not in the module DAG"),
    ("layering.cycle", "LAYER_DEPS itself declares a cycle"),
    ("layering.unregistered", "src/ module missing from LAYER_DEPS"),
):
    register(
        Rule(
            id=_rid,
            family="layering",
            severity=ERROR,
            summary=_summary,
            rationale=_LAYERING_RATIONALE,
            fix_hint=(
                "Either remove the include (invert the dependency through "
                "a callback/interface in the lower layer) or, if the edge "
                "is genuinely right, add it to LAYER_DEPS, DESIGN.md §3, "
                "and the module's CMake DEPS in the same change."
            ),
            tree_check=_check_layering if _rid == "layering.violation" else None,
            waivable=_rid == "layering.violation",
        )
    )
