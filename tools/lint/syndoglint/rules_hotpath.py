"""hotpath.* — the DES and ingest hot paths stay allocation-free.

PR-4 made the scheduler hot path allocation-free (InlineCallback events,
slot arena, pooled packets) and PR-5 extended the discipline to the ingest
ring. These rules keep it that way: `hotpath.std_function` is the original
PR-2 ban generalized, and `hotpath.allocation` bans heap traffic and
container growth in any file that opts in with the
`// syndog-lint: hotpath-file` marker — so the list of protected files
lives next to the code, not in the linter.
"""

from __future__ import annotations

import re
from typing import Iterable

from .lexer import SourceFile
from .model import ERROR, Finding, Rule, register

# Public-header trees where per-event work must stay allocation-free.
_HOTPATH_INCLUDE_ROOTS = ("src/sim/include/", "src/ingest/include/")

# The one hot-path header that may define std::function seam types: bound
# once at topology wiring time, never constructed per event.
_STD_FUNCTION_OWNERS = frozenset({"src/sim/include/syndog/sim/callbacks.hpp"})

_STD_FUNCTION_RE = re.compile(
    r"\bstd\s*::\s*function\b|#\s*include\s*<functional>"
)


def _std_function_targets(rel: str) -> bool:
    return (
        rel.startswith(_HOTPATH_INCLUDE_ROOTS)
        and rel.endswith(".hpp")
        and rel not in _STD_FUNCTION_OWNERS
    )


def _check_std_function(sf: SourceFile, ctx) -> Iterable[Finding]:
    for lineno, line in enumerate(sf.stripped_lines, start=1):
        if _STD_FUNCTION_RE.search(line):
            yield Finding(
                sf.rel,
                lineno,
                "",
                "std::function allocates per construction; per-event "
                "callbacks use Scheduler::Callback (util::InlineCallback) "
                "or a virtual sink interface; config-time seams live in "
                "syndog/sim/callbacks.hpp",
            )


register(
    Rule(
        id="hotpath.std_function",
        family="hotpath",
        severity=ERROR,
        summary="std::function / <functional> in sim or ingest public headers",
        rationale=(
            "A std::function is constructed per event on the DES hot path — "
            "millions of times per run — and each construction may heap-"
            "allocate. Scheduler::Callback (util::InlineCallback) stores "
            "the callable in place. The one sanctioned std::function home "
            "is syndog/sim/callbacks.hpp: configuration-time bindings wired "
            "once per topology and only invoked per event."
        ),
        fix_hint=(
            "Use Scheduler::Callback / util::InlineCallback for per-event "
            "work or a virtual sink interface for pluggable consumers; "
            "put genuine config-time seams in syndog/sim/callbacks.hpp."
        ),
        targets=_std_function_targets,
        check=_check_std_function,
    )
)


# --------------------------------------------------------------------------
# hotpath.allocation — opt-in per file via `// syndog-lint: hotpath-file`.

_ALLOCATION_PATTERNS = (
    (
        re.compile(r"(?<![\w:])new\b(?!\s*\()"),
        "new-expression heap-allocates",
    ),
    (
        re.compile(r"(?<![\w:.])(?:malloc|calloc|realloc|strdup)\s*\("),
        "malloc-family call heap-allocates",
    ),
    (
        re.compile(r"\bmake_(?:unique|shared)\b"),
        "make_unique/make_shared heap-allocates",
    ),
    (
        re.compile(r"\b(?:push_back|emplace_back|resize|reserve)\s*\("),
        "container growth can reallocate",
    ),
    (
        re.compile(r"\bstd\s*::\s*function\b"),
        "std::function may heap-allocate per construction",
    ),
)


def _hotpath_marked(sf: SourceFile) -> bool:
    return "hotpath-file" in sf.pragmas


def _check_allocation(sf: SourceFile, ctx) -> Iterable[Finding]:
    if not _hotpath_marked(sf):
        return
    for lineno, line in enumerate(sf.stripped_lines, start=1):
        if line.lstrip().startswith("#"):
            continue  # `#include <new>` is not a new-expression
        for pattern, why in _ALLOCATION_PATTERNS:
            if pattern.search(line):
                yield Finding(
                    sf.rel,
                    lineno,
                    "",
                    f"hotpath-file: {why}; hot-path state lives in arenas/"
                    "pools sized up front (construction-time growth may be "
                    "waived with a justification)",
                )


register(
    Rule(
        id="hotpath.allocation",
        family="hotpath",
        severity=ERROR,
        summary=(
            "heap allocation or container growth in a "
            "`// syndog-lint: hotpath-file` marked file"
        ),
        rationale=(
            "The PR-4/PR-5 benchmarks (bench_sim_throughput, "
            "bench_replay_throughput) hold only while the per-event path "
            "performs zero heap traffic; a single push_back that outgrows "
            "its capacity costs more than a hundred events and shows up as "
            "multi-percent regressions. Files that carry the "
            "`// syndog-lint: hotpath-file` marker ban new/malloc/"
            "make_unique/make_shared, growth-prone container calls, and "
            "std::function outright. Placement new (`new (ptr) T`) is "
            "allowed: it constructs without allocating. The runtime twin "
            "of this rule is tests/support/alloc_guard.hpp, which proves "
            "steady-state loops allocation-free with a counting "
            "operator new."
        ),
        fix_hint=(
            "Size arenas/pools at construction and recycle slots "
            "(sim::PacketPool, ingest::FrameRing are the models). "
            "Construction-time growth is waivable: "
            "`// syndog-lint: allow(hotpath.allocation) -- <why setup-only>`."
        ),
        targets=lambda rel: rel.endswith((".hpp", ".h", ".cpp", ".cc", ".cxx")),
        check=_check_allocation,
    )
)
