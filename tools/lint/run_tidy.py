#!/usr/bin/env python3
"""run_tidy: clang-tidy driver for the `lint-tidy` CMake target.

Runs clang-tidy (config from the repo's .clang-tidy) over every first-party
translation unit in the compile database, in parallel, and exits non-zero if
any check fires. When clang-tidy is not installed the driver prints a notice
and exits 0, so `lint-tidy` stays usable on machines without LLVM; CI runs a
clang image where the tool is guaranteed present.

Pass --require (CI does) to turn the missing-clang-tidy skip into a hard
failure, so the lint job can never silently pass without running the tool.

Stdlib-only by design.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path


def first_party(entry_file: str, source_dir: Path) -> bool:
    try:
        rel = Path(entry_file).resolve().relative_to(source_dir.resolve())
    except ValueError:
        return False
    top = rel.parts[0] if rel.parts else ""
    return top in {"src", "examples", "tools"}


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, required=True,
                        help="build tree containing compile_commands.json")
    parser.add_argument("--source-dir", type=Path, required=True)
    parser.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of skipping when "
                             "clang-tidy is not installed")
    args = parser.parse_args(argv)

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        if args.require:
            print("run_tidy: clang-tidy not found on PATH and --require "
                  "set; install LLVM or drop --require", file=sys.stderr)
            return 2
        print("run_tidy: clang-tidy not found on PATH; skipping (install LLVM "
              "or run the CI lint job)")
        return 0

    compdb = args.build_dir / "compile_commands.json"
    if not compdb.is_file():
        print(f"run_tidy: {compdb} missing; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2

    entries = json.loads(compdb.read_text(encoding="utf-8"))
    files = sorted({e["file"] for e in entries if first_party(e["file"], args.source_dir)})
    if not files:
        print("run_tidy: no first-party files in compile database", file=sys.stderr)
        return 2

    failures = 0

    def run_one(path: str):
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout.strip(), proc.stderr.strip()

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, code, out, _err in pool.map(run_one, files):
            if code != 0 or "warning:" in out or "error:" in out:
                failures += 1
                print(f"--- {path}")
                if out:
                    print(out)

    total = len(files)
    if failures:
        print(f"run_tidy: {failures}/{total} files with findings", file=sys.stderr)
        return 1
    print(f"run_tidy: clean ({total} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
