// Positive fixtures for determinism.unordered_iteration: the members are
// declared (as unordered types) in the header, iterated here — the
// cross-file pool is what makes these reachable.
#include "syndog/detect/unordered_bad.hpp"

namespace syndog::detect {

void CorpusCounts::dump() const {
  for (const auto& item : corpus_counts_) {  // EXPECT(determinism.unordered_iteration)
    (void)item;
  }
  auto it = corpus_seen_.begin();  // EXPECT(determinism.unordered_iteration)
  (void)it;
  for (const auto& entry : corpus_index_) {  // EXPECT(determinism.unordered_iteration)
    (void)entry;
  }
}

std::size_t CorpusCounts::total() const {
  // Negative: size/count/find never observe iteration order.
  return corpus_counts_.size() + corpus_seen_.count(0);
}

}  // namespace syndog::detect
