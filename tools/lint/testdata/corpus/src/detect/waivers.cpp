// Waiver-accounting fixtures. EXPECT-NL markers sit on the line above
// their target because the target line already carries the waiver comment
// under test (anything after the rule list would parse as justification).
namespace syndog::detect {

// Negative: a justified waiver suppresses the finding and itself stays
// silent — both same-line and next-line forms.
int corpus_waived_same = 0;  // syndog-lint: allow(concurrency.shared_mutable_static) -- corpus: justified same-line waiver must suppress
// syndog-lint: allow-next-line(concurrency.shared_mutable_static) -- corpus: justified next-line waiver must suppress
int corpus_waived_next = 0;

// A waiver with no `-- <why>` still suppresses, but is itself a finding.
// EXPECT-NL(waiver.missing_justification)
int corpus_unjustified = 0;  // syndog-lint: allow(concurrency.shared_mutable_static)

// A waiver naming a nonexistent rule id (alongside a real one, so the
// waiver is used and only the unknown id is reported).
// EXPECT-NL(waiver.unknown_rule)
int corpus_unknown = 0;  // syndog-lint: allow(concurrency.shared_mutable_static, corpus.bogus) -- corpus: one real id, one bogus id

// A waiver whose target line produces nothing: stale, must be flagged.
// EXPECT-NL(waiver.unused)
constexpr int kCorpusFine = 1;  // syndog-lint: allow(determinism.rand) -- corpus: stale waiver left to prove unused detection

}  // namespace syndog::detect
