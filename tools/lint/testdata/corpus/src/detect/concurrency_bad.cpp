// Positive fixtures for concurrency.* outside the sanctioned seams.
#include <thread>

namespace syndog::detect {

int corpus_shared_counter = 0;  // EXPECT(concurrency.shared_mutable_static)

void corpus_spawn() {
  std::thread worker([] {});  // EXPECT(concurrency.raw_thread)
  worker.join();
  auto fut = std::async([] { return 1; });  // EXPECT(concurrency.raw_thread)
  (void)fut;
  static int corpus_calls = 0;  // EXPECT(concurrency.shared_mutable_static)
  ++corpus_calls;
}

}  // namespace syndog::detect
