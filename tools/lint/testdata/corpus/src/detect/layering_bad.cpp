#include "syndog/sim/scheduler.hpp"  // EXPECT(layering.violation)
#include "syndog/util/time.hpp"

// detect may reach obs/stats/util (see LAYER_DEPS); sim is a higher
// layer, so the first include above is a DAG violation. The util include
// is a negative: transitive deps are always allowed.
namespace syndog::detect {

void corpus_layering() {}

}  // namespace syndog::detect
