// Positive fixtures for the determinism.* pattern rules.
namespace syndog::detect {

void corpus_entropy() {
  std::random_device rd;                       // EXPECT(determinism.random_device)
  int roll = rand();                           // EXPECT(determinism.rand)
  srand(42);                                   // EXPECT(determinism.srand)
  long stamp = time(nullptr);                  // EXPECT(determinism.time_seed)
  std::mt19937 engine(7);                      // EXPECT(determinism.raw_engine)
  auto t0 = std::chrono::steady_clock::now();  // EXPECT(determinism.wall_clock)
  (void)rd;
  (void)roll;
  (void)stamp;
  (void)engine;
  (void)t0;
}

}  // namespace syndog::detect
