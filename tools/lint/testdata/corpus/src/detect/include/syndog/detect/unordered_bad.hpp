// Declares unordered members; the iteration findings are in
// unordered_bad.cpp — the cross-file name-pool path under test.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>

namespace syndog::detect {

using CorpusIndex = std::unordered_map<int, int>;

class CorpusCounts {
 public:
  void dump() const;
  std::size_t total() const;

 private:
  std::unordered_map<int, int> corpus_counts_;
  std::unordered_set<int> corpus_seen_;
  CorpusIndex corpus_index_;
};

}  // namespace syndog::detect
