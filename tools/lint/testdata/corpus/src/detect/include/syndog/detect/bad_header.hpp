// EXPECT(headers.not_self_contained) -- std::size_t needs <cstddef>.
#pragma once

namespace syndog::detect {

inline std::size_t corpus_size() { return 0; }

}  // namespace syndog::detect
