// Negative fixtures: near-misses that must produce zero findings.
#include <map>
#include <thread>

namespace syndog::detect {

// const/constexpr namespace-scope objects are not shared *mutable* state.
constexpr int kCorpusConst = 42;
const char* const kCorpusName = "corpus";

struct CorpusParams {
  int x;
  int y;
};

class CorpusCtor {
 public:
  CorpusCtor();

  int a_;
  int b_;
};

// Regression fixture: a brace initializer inside a constructor member-init
// list (`CorpusParams{1, 0}`) is not the function body; the scope walk
// must not mistake `b_` for a namespace-scope object declaration.
CorpusCtor::CorpusCtor() : a_(CorpusParams{1, 0}.x), b_(0) {}

// ALL_CAPS namespace-scope macro invocations are registrations, not
// object declarations.
#define CORPUS_REGISTER(fn) static_assert(sizeof(&(fn)) > 0, #fn)

void corpus_clean(int operand) {
  // Mutable locals are fine; so is std::this_thread (no spawn).
  int local = operand + kCorpusConst;
  std::this_thread::yield();
  (void)local;
  (void)kCorpusName;
  // Ordered containers iterate deterministically — never flagged, even
  // with a name ending like the unordered members in the pool.
  std::map<int, int> ordered{{1, 2}};
  for (const auto& item : ordered) {
    (void)item;
  }
  auto it = ordered.begin();
  (void)it;
}

CORPUS_REGISTER(corpus_clean);

}  // namespace syndog::detect
