#include "syndog/fault/chaos.hpp"  // EXPECT(layering.violation)
#include "syndog/sim/router.hpp"

// mitigate sits above core and sim but must stay ignorant of the fault
// layer: chaos schedules *cause* the alarms the controller reacts to, and
// an include edge here would let the response subsystem peek at the
// injected ground truth. The sim include is a negative: policing the leaf
// router is exactly mitigate's job.
namespace syndog::mitigate {

void corpus_layering() {}

}  // namespace syndog::mitigate
