// Negative fixture: src/ingest is a sanctioned seam — threads and mutable
// module state are allowed here (the real pipeline's two-thread pump).
#include <atomic>
#include <thread>

namespace syndog::ingest {

std::atomic<int> corpus_pump_state{0};

void corpus_pump() {
  std::thread pump([] { corpus_pump_state.store(1); });
  pump.join();
}

}  // namespace syndog::ingest
