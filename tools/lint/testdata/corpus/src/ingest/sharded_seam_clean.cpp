// Negative fixture: the `src/ingest/sharded` prefix is a sanctioned
// seam file — threads and mutable module state are allowed in the
// sharded replay's producer/consumer fan-out (and, by the same prefix,
// in this corpus sibling).
#include <atomic>
#include <thread>

namespace syndog::ingest {

std::atomic<int> corpus_pump_state{0};

void corpus_pump() {
  std::thread pump([] { corpus_pump_state.store(1); });
  pump.join();
}

}  // namespace syndog::ingest
