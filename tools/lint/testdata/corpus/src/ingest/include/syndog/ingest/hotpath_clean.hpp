// Negative fixture: a hotpath-file whose only "new" is placement new —
// construction into a pre-sized slot allocates nothing and is allowed.
// syndog-lint: hotpath-file
#pragma once

#include <new>

namespace syndog::ingest {

inline int* corpus_construct(void* slot) {
  return new (slot) int(0);
}

}  // namespace syndog::ingest
