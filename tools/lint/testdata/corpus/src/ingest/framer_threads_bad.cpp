// Positive fixture: src/ingest is no longer a directory-wide seam. A
// sequential ingest file (framer, demux, replay engine) that spawns a
// thread or grows namespace-scope mutable state must be flagged exactly
// like any other module.
#include <thread>

namespace syndog::ingest {

int corpus_frames_seen = 0;  // EXPECT(concurrency.shared_mutable_static)

void corpus_frame_async() {
  std::thread framer([] {});  // EXPECT(concurrency.raw_thread)
  framer.join();
}

}  // namespace syndog::ingest
