#include "syndog/core/agent.hpp"  // EXPECT(layering.violation)
#include "syndog/obs/metrics.hpp"

// telemetry may reach obs/util only (see LAYER_DEPS): core sits *above*
// it (core::FleetRecorder feeds the sink), so the first include inverts
// the DAG. The obs include is a negative: that edge is sanctioned.
namespace syndog::telemetry {

void corpus_layering() {}

}  // namespace syndog::telemetry
