// Negative fixture: src/telemetry is a sanctioned seam — the real sink
// runs a dedicated consumer thread draining a bounded MPSC queue, so
// threads and atomics are allowed here.
#include <atomic>
#include <thread>

namespace syndog::telemetry {

std::atomic<long> corpus_drained{0};

void corpus_drain() {
  std::thread consumer([] { corpus_drained.fetch_add(1); });
  consumer.join();
}

}  // namespace syndog::telemetry
