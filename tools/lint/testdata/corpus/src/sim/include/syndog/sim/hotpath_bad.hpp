// Positive fixtures for hotpath.allocation: the file opts in below.
// syndog-lint: hotpath-file
#pragma once

#include <vector>

namespace syndog::sim {

class CorpusPool {
 public:
  void grow(int value) {
    buf_.push_back(value);   // EXPECT(hotpath.allocation)
    buf_.reserve(64);        // EXPECT(hotpath.allocation)
    int* raw = new int(3);   // EXPECT(hotpath.allocation)
    delete raw;
  }

 private:
  std::vector<int> buf_;
};

}  // namespace syndog::sim
