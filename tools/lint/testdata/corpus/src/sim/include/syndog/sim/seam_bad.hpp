// Positive fixture for hotpath.std_function: a sim public header other
// than syndog/sim/callbacks.hpp (the one sanctioned owner).
#pragma once

#include <functional>  // EXPECT(hotpath.std_function)

namespace syndog::sim {

using CorpusHook = std::function<void()>;  // EXPECT(hotpath.std_function)

}  // namespace syndog::sim
