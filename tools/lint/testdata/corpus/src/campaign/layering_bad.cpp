#include "syndog/mitigate/policy.hpp"  // EXPECT(layering.violation)
#include "syndog/sim/scheduler.hpp"

// campaign sits on top of core + sim (see LAYER_DEPS); mitigate is a
// sibling top-layer module, so the first include above is a DAG
// violation. The sim include is a negative: it is a declared dep.
namespace syndog::campaign {

void corpus_layering() {}

}  // namespace syndog::campaign
