// Negative fixture: the `src/campaign/runner` prefix is a sanctioned
// seam file — the campaign worker pool spawns threads and keeps the
// generation/barrier state that drives run_cell_until across cells (and,
// by the same prefix, this corpus sibling is covered too).
#include <atomic>
#include <thread>

namespace syndog::campaign {

std::atomic<int> corpus_generation{0};

void corpus_run_window() {
  std::thread worker([] { corpus_generation.fetch_add(1); });
  worker.join();
}

}  // namespace syndog::campaign
