// Positive fixture: src/campaign is not a directory-wide seam. Only the
// runner (worker pool) may spawn threads; CampaignSim and the other
// sequential per-cell files must be flagged exactly like any other
// module when they grow threads or namespace-scope mutable state.
#include <thread>

namespace syndog::campaign {

int corpus_cells_run = 0;  // EXPECT(concurrency.shared_mutable_static)

void corpus_cell_async() {
  std::thread cell([] {});  // EXPECT(concurrency.raw_thread)
  cell.join();
}

}  // namespace syndog::campaign
