// Negative fixture: a self-contained header compiles clean standalone.
#pragma once

#include <cstdint>

namespace syndog::util {

inline std::uint32_t corpus_mix(std::uint32_t x) { return x * 2654435761u; }

}  // namespace syndog::util
