#!/usr/bin/env python3
"""syndog_lint: repo-invariant static analysis for the SYN-dog tree.

Thin executable shim over the `syndoglint` package in this directory; the
engine, rule families, output formats, and cache live there. See
docs/STATIC_ANALYSIS.md for the rule catalog, or:

    syndog_lint.py --list-rules
    syndog_lint.py --explain <rule.id>

Stdlib-only by design — runs anywhere a Python 3.8+ interpreter exists.
Exit status: 0 when clean, 1 when any finding is reported, 2 on usage or
configuration error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from syndoglint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
