#!/usr/bin/env python3
"""syndog_lint: repo-invariant linter for the SYN-dog tree.

Enforces three invariants that generic tools (compiler warnings, clang-tidy)
cannot express; each rule's rationale is documented in docs/STATIC_ANALYSIS.md:

  determinism   No ambient entropy or wall-clock seeding anywhere in the
                tree. Every stochastic component must draw from an explicit
                `util::Rng&`; raw engines live only in src/util's rng files.
                Experiments must be bit-reproducible from seeds.

  layering      #include <syndog/...> edges between src/ modules must follow
                the dependency DAG declared in LAYER_DEPS (mirrored from
                DESIGN.md §3 and each module's CMakeLists DEPS). The DAG
                itself is checked for cycles.

  headers       Every public header under src/*/include/syndog/ must be
                self-contained: a generated translation unit containing only
                that #include must compile (-fsyntax-only).

  hotpath       std::function is banned in src/sim public headers: per-event
                callbacks must be Scheduler::Callback (util::InlineCallback,
                allocation-free). The one sanctioned home for config-time
                std::function seams is syndog/sim/callbacks.hpp.

Stdlib-only by design — runs anywhere a Python 3.8+ interpreter exists.
Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.

A finding on a specific line can be waived with a trailing comment:
    // syndog-lint: allow(<rule>)
where <rule> is the rule id printed with the finding (e.g. determinism.rand).
Waivers are for false positives only; document the why next to the waiver.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Module layering DAG: module -> direct dependencies.
#
# Keep in sync with DESIGN.md §3 and the DEPS lists in src/*/CMakeLists.txt:
#   util -> obs/stats/net -> pcap/classify -> detect/trace -> sim/attack
#        -> fault -> core/traceback
# obs is the telemetry layer: it may depend only on util (it must stay
# embeddable under every other module), while any module may depend on it.
LAYER_DEPS: Dict[str, Set[str]] = {
    "util": set(),
    "obs": {"util"},
    "stats": {"util"},
    "net": {"util"},
    "pcap": {"net", "util"},
    "classify": {"net", "obs", "util"},
    "detect": {"obs", "stats", "util"},
    "trace": {"net", "stats", "util"},
    "sim": {"net", "obs", "util"},
    "fault": {"net", "obs", "sim", "util"},
    "attack": {"util"},
    "traceback": {"util"},
    "core": {"classify", "detect", "net", "obs", "sim", "stats", "util"},
    "ingest": {"core", "net", "obs", "pcap", "sim", "util"},
}

# Determinism rules: (rule id, compiled regex, message). Applied to
# comment-stripped source; `mt19937` is additionally allowed inside the two
# rng implementation files.
_DETERMINISM_RULES: Sequence[Tuple[str, "re.Pattern[str]", str]] = (
    (
        "determinism.random_device",
        re.compile(r"\brandom_device\b"),
        "std::random_device reads ambient entropy; take a seeded util::Rng& instead",
    ),
    (
        "determinism.rand",
        re.compile(r"(?<![\w:.])rand\s*\("),
        "rand() is a hidden global generator; take a seeded util::Rng& instead",
    ),
    (
        "determinism.srand",
        re.compile(r"(?<![\w:.])srand\s*\("),
        "srand() mutates hidden global state; seed an explicit util::Rng instead",
    ),
    (
        "determinism.time_seed",
        re.compile(r"(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "wall-clock seeding breaks reproducibility; derive seeds via util::Rng::child",
    ),
    (
        "determinism.raw_engine",
        re.compile(r"\bmt19937(?:_64)?\b"),
        "raw mersenne-twister engines live only in syndog/util/rng; use util::Rng&",
    ),
    (
        "determinism.wall_clock",
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
        "wall-clock reads live behind obs::WallClock (src/obs); sim code uses "
        "util::SimTime so replays stay byte-identical",
    ),
)

# Files that legitimately own the raw engine.
_RNG_OWNERS = (
    Path("src/util/rng.cpp"),
    Path("src/util/include/syndog/util/rng.hpp"),
)

# Directories whose files may read std::chrono clocks directly: the time
# utilities and the telemetry layer's WallClock seam.
_WALL_CLOCK_OWNER_DIRS = (
    Path("src/util"),
    Path("src/obs"),
)

# Public-header trees where per-event work must stay allocation-free:
# the DES hot path and the capture-ingest hot path.
_HOTPATH_INCLUDE_ROOTS = (
    Path("src/sim/include"),
    Path("src/ingest/include"),
)

# The one hot-path header that may define std::function seam types: bound
# once at topology wiring time, never constructed per event (see its
# prologue). Ingest headers have no such carve-out: their seams are
# virtual interfaces (FrameSink / ReplaySink).
_STD_FUNCTION_OWNERS = (
    Path("src/sim/include/syndog/sim/callbacks.hpp"),
)

_STD_FUNCTION_RE = re.compile(
    r"\bstd\s*::\s*function\b|#\s*include\s*<functional>"
)

_WAIVER_RE = re.compile(r"syndog-lint:\s*allow\(([\w.,\s-]+)\)")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]syndog/([A-Za-z0-9_]+)/')

_SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving line structure."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif ch in "\"'":
            # Skip string/char literal (handles escapes; good enough for C++).
            quote = ch
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _iter_source_files(root: Path, subdirs: Iterable[str]) -> Iterable[Path]:
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in _SOURCE_SUFFIXES and path.is_file():
                yield path


def _waived(raw_line: str, rule: str) -> bool:
    m = _WAIVER_RE.search(raw_line)
    if not m:
        return False
    allowed = {item.strip() for item in m.group(1).split(",")}
    return rule in allowed or "all" in allowed


# --------------------------------------------------------------------------
# determinism


def check_determinism(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    rng_owners = {(root / p).resolve() for p in _RNG_OWNERS}
    clock_owner_dirs = [(root / d).resolve() for d in _WALL_CLOCK_OWNER_DIRS]
    for path in _iter_source_files(root, ("src", "tests", "bench", "examples")):
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = _strip_comments(raw)
        raw_lines = raw.splitlines()
        resolved = path.resolve()
        is_rng_owner = resolved in rng_owners
        is_clock_owner = any(
            base == resolved or base in resolved.parents
            for base in clock_owner_dirs
        )
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            for rule, pattern, message in _DETERMINISM_RULES:
                if rule == "determinism.raw_engine" and is_rng_owner:
                    continue
                if rule == "determinism.wall_clock" and is_clock_owner:
                    continue
                if not pattern.search(line):
                    continue
                raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                if _waived(raw_line, rule):
                    continue
                findings.append(Finding(path, lineno, rule, message))
    return findings


# --------------------------------------------------------------------------
# hotpath


def check_hotpath(root: Path) -> List[Finding]:
    """std::function stays out of hot-path public headers (sim, ingest)."""
    findings: List[Finding] = []
    owners = {(root / p).resolve() for p in _STD_FUNCTION_OWNERS}
    for rel in _HOTPATH_INCLUDE_ROOTS:
        include_root = root / rel
        if not include_root.is_dir():
            continue
        for path in sorted(include_root.rglob("*.hpp")):
            if path.resolve() in owners:
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            stripped = _strip_comments(raw)
            raw_lines = raw.splitlines()
            for lineno, line in enumerate(stripped.splitlines(), start=1):
                if not _STD_FUNCTION_RE.search(line):
                    continue
                raw_line = (
                    raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                )
                if _waived(raw_line, "hotpath.std_function"):
                    continue
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "hotpath.std_function",
                        "std::function allocates per construction; per-event "
                        "callbacks use Scheduler::Callback "
                        "(util::InlineCallback) or a virtual sink interface; "
                        "config-time seams live in syndog/sim/callbacks.hpp",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# layering


def _transitive_deps(module: str) -> Set[str]:
    seen: Set[str] = set()
    stack = list(LAYER_DEPS.get(module, ()))
    while stack:
        dep = stack.pop()
        if dep in seen:
            continue
        seen.add(dep)
        stack.extend(LAYER_DEPS.get(dep, ()))
    return seen


def _dag_cycle() -> Optional[List[str]]:
    """Returns a cycle as a module list if LAYER_DEPS has one, else None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in LAYER_DEPS}
    trail: List[str] = []

    def visit(m: str) -> Optional[List[str]]:
        color[m] = GREY
        trail.append(m)
        for dep in sorted(LAYER_DEPS.get(m, ())):
            if color.get(dep, WHITE) == GREY:
                return trail[trail.index(dep) :] + [dep]
            if color.get(dep, WHITE) == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        trail.pop()
        color[m] = BLACK
        return None

    for m in sorted(LAYER_DEPS):
        if color[m] == WHITE:
            cycle = visit(m)
            if cycle:
                return cycle
    return None


def check_layering(root: Path) -> List[Finding]:
    findings: List[Finding] = []

    cycle = _dag_cycle()
    if cycle:
        findings.append(
            Finding(
                root / "tools/lint/syndog_lint.py",
                1,
                "layering.cycle",
                "LAYER_DEPS declares a dependency cycle: " + " -> ".join(cycle),
            )
        )

    src = root / "src"
    modules_on_disk = {
        p.name for p in src.iterdir() if p.is_dir() and (p / "CMakeLists.txt").exists()
    }
    for module in sorted(modules_on_disk - set(LAYER_DEPS)):
        findings.append(
            Finding(
                src / module / "CMakeLists.txt",
                1,
                "layering.unregistered",
                f"module '{module}' is not declared in LAYER_DEPS "
                "(tools/lint/syndog_lint.py); add it with its dependencies",
            )
        )

    for module in sorted(modules_on_disk & set(LAYER_DEPS)):
        allowed = _transitive_deps(module) | {module}
        for path in _iter_source_files(root, (f"src/{module}",)):
            raw = path.read_text(encoding="utf-8", errors="replace")
            for lineno, line in enumerate(raw.splitlines(), start=1):
                m = _INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1)
                if target in allowed:
                    continue
                if _waived(line, "layering.violation"):
                    continue
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "layering.violation",
                        f"module '{module}' may not include syndog/{target}/ "
                        f"(allowed: {', '.join(sorted(allowed - {module})) or 'none'})",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# header self-containment


def _public_headers(root: Path) -> List[Path]:
    headers: List[Path] = []
    for module_dir in sorted((root / "src").iterdir()):
        include = module_dir / "include" / "syndog"
        if include.is_dir():
            headers.extend(sorted(include.rglob("*.hpp")))
    return headers


def _include_flags(root: Path) -> List[str]:
    flags: List[str] = []
    for module_dir in sorted((root / "src").iterdir()):
        include = module_dir / "include"
        if include.is_dir():
            flags.append(f"-I{include}")
    return flags


def check_headers(root: Path, cxx: str, jobs: int) -> List[Finding]:
    if shutil.which(cxx) is None:
        return [
            Finding(
                root / "tools/lint/syndog_lint.py",
                1,
                "headers.no_compiler",
                f"compiler '{cxx}' not found; pass --cxx or set $CXX",
            )
        ]

    headers = _public_headers(root)
    include_flags = _include_flags(root)
    findings: List[Finding] = []

    def compile_one(header: Path) -> Optional[Finding]:
        rel = header.as_posix().split("/include/", 1)[1]  # -> syndog/<mod>/x.hpp
        tu = f'#include "{rel}"\n'
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", prefix="syndog_hdr_", delete=False
        ) as tmp:
            tmp.write(tu)
            tmp_path = tmp.name
        try:
            proc = subprocess.run(
                [
                    cxx,
                    "-std=c++20",
                    "-fsyntax-only",
                    "-Wall",
                    "-Wextra",
                    "-Wpedantic",
                    *include_flags,
                    "-x",
                    "c++",
                    tmp_path,
                ],
                capture_output=True,
                text=True,
            )
        finally:
            os.unlink(tmp_path)
        if proc.returncode != 0:
            first_error = next(
                (ln for ln in proc.stderr.splitlines() if "error" in ln),
                proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "compile failed",
            )
            return Finding(
                header,
                1,
                "headers.not_self_contained",
                f"one-include TU fails to compile: {first_error.strip()}",
            )
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(compile_one, headers):
            if result is not None:
                findings.append(result)
    return findings


# --------------------------------------------------------------------------


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root (default: inferred from this script's location)",
    )
    parser.add_argument(
        "--checks",
        default="determinism,hotpath,layering,headers",
        help="comma list from {determinism, hotpath, layering, headers}",
    )
    parser.add_argument(
        "--cxx",
        default=os.environ.get("CXX", "c++"),
        help="C++ compiler for the header self-containment check",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 4,
        help="parallelism for header compiles",
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"syndog_lint: no src/ under {root}", file=sys.stderr)
        return 2

    requested = [c.strip() for c in args.checks.split(",") if c.strip()]
    known = {"determinism", "hotpath", "layering", "headers"}
    unknown = set(requested) - known
    if unknown:
        print(f"syndog_lint: unknown checks: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    findings: List[Finding] = []
    if "determinism" in requested:
        findings.extend(check_determinism(root))
    if "hotpath" in requested:
        findings.extend(check_hotpath(root))
    if "layering" in requested:
        findings.extend(check_layering(root))
    if "headers" in requested:
        findings.extend(check_headers(root, args.cxx, args.jobs))

    for finding in findings:
        print(finding.render(root))
    if findings:
        print(f"syndog_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"syndog_lint: clean ({', '.join(requested)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
