#!/usr/bin/env python3
"""Fixture-corpus selftest for the syndoglint engine (`lint.selftest`).

Lints `testdata/corpus/` — a miniature repository tree — with the real
engine and requires the findings to match the `// EXPECT(rule.id)` /
`// EXPECT-NL(rule.id)` markers embedded in the fixtures exactly: no
missing findings, no extras. On top of the corpus round-trip it pins the
lexer/waiver-parser unit behavior, validates the SARIF 2.1.0 rendering
structurally, exercises the incremental cache (cold -> warm -> edited),
and asserts that every registered rule fires somewhere in the selftest —
so a rule cannot silently rot into a no-op.

Stdlib only, like the linter itself:  python3 tools/lint/selftest.py
"""

from __future__ import annotations

import json
import re
import shutil
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from syndoglint.cache import Cache  # noqa: E402
from syndoglint.cli import main as cli_main  # noqa: E402
from syndoglint.engine import SCAN_ROOTS, TreeContext, build_context, run  # noqa: E402
from syndoglint.lexer import parse_waivers, strip_source, tokenize  # noqa: E402
from syndoglint.model import all_rules  # noqa: E402
from syndoglint.output import render_json, render_sarif  # noqa: E402

CORPUS = Path(__file__).resolve().parent / "testdata" / "corpus"
ALL_FAMILIES = {"determinism", "concurrency", "hotpath", "layering", "headers"}

# Expectations that cannot live as in-file markers (CMakeLists.txt is not
# a lexed source file).
EXTRA_EXPECTED = {
    ("src/orphan/CMakeLists.txt", 1, "layering.unregistered"),
}

_MARKER = re.compile(r"EXPECT(-NL)?\(([\w.]+)\)")


def corpus_expectations():
    expected = set(EXTRA_EXPECTED)
    for sub in SCAN_ROOTS:
        base = CORPUS / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc", ".cxx"):
                continue
            rel = path.relative_to(CORPUS).as_posix()
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                for m in _MARKER.finditer(line):
                    target = lineno + (1 if m.group(1) else 0)
                    expected.add((rel, target, m.group(2)))
    return expected


def lint_corpus(root=CORPUS, cache=None, families=ALL_FAMILIES):
    ctx = build_context(root, cxx="c++", jobs=4, cache=cache)
    return run(ctx, set(families))


class CorpusTest(unittest.TestCase):
    """The headline test: engine findings == corpus EXPECT markers."""

    @classmethod
    def setUpClass(cls):
        cls.result = lint_corpus()
        cls.actual = {
            (f.rel, f.line, f.rule) for f in cls.result.findings
        }
        cls.expected = corpus_expectations()

    def test_every_expected_finding_fires(self):
        missing = self.expected - self.actual
        self.assertFalse(
            missing, f"expected findings never fired: {sorted(missing)}"
        )

    def test_no_unexpected_findings(self):
        extra = self.actual - self.expected
        self.assertFalse(
            extra, f"findings without EXPECT markers: {sorted(extra)}"
        )

    def test_corpus_covers_every_corpus_reachable_rule(self):
        """Every rule reachable from a corpus run fires at least once
        (layering.cycle and headers.no_compiler need injected contexts
        and are covered by EngineEdgeTest)."""
        fired = {rule for (_, _, rule) in self.actual}
        reachable = {r.id for r in all_rules()} - {
            "layering.cycle",
            "headers.no_compiler",
        }
        self.assertEqual(reachable - fired, set())

    def test_waiver_inventory_is_accounted(self):
        # 5 waivers in waivers.cpp + the marker-free suppressions must all
        # appear in the inventory with used/justified flags.
        records = {
            (w.rel, w.line): w
            for w in self.result.waivers
            if w.rel.endswith("waivers.cpp")
        }
        self.assertEqual(len(records), 5)
        used = [w for w in records.values() if w.used]
        self.assertEqual(len(used), 4)  # all but the stale one


class EngineEdgeTest(unittest.TestCase):
    def test_layer_cycle_detected(self):
        ctx = TreeContext(
            root=CORPUS,
            cxx="c++",
            jobs=1,
            layer_deps={"a": {"b"}, "b": {"a"}},
        )
        result = run(ctx, {"layering"}, account_waivers=False)
        self.assertEqual(
            {f.rule for f in result.findings}, {"layering.cycle"}
        )

    def test_missing_compiler_is_a_finding(self):
        ctx = TreeContext(
            root=CORPUS, cxx="syndog-no-such-compiler", jobs=1
        )
        result = run(ctx, {"headers"}, account_waivers=False)
        self.assertEqual(
            [f.rule for f in result.findings], ["headers.no_compiler"]
        )

    def test_every_registered_rule_fires_somewhere(self):
        fired = {(f.rule) for f in lint_corpus().findings}
        fired |= {"layering.cycle", "headers.no_compiler"}  # edge tests above
        self.assertEqual({r.id for r in all_rules()} - fired, set())


class LexerTest(unittest.TestCase):
    def test_comments_and_literals_are_blanked(self):
        source = (
            'int x = 7; // trailing rand()\n'
            'const char* s = "rand()"; /* block\nspanning */ int y;\n'
        )
        stripped = strip_source(source)
        self.assertNotIn("rand", stripped)
        # line structure intact
        self.assertEqual(stripped.count("\n"), source.count("\n"))
        self.assertIn('""', stripped)  # quotes survive, contents blanked

    def test_raw_string_comment_lookalike_survives(self):
        stripped = strip_source('auto s = R"x(// not a comment)x"; int z;')
        self.assertIn("int z", stripped)
        self.assertNotIn("not a comment", stripped)

    def test_tokenize_skips_preprocessor_lines(self):
        tokens = tokenize(
            "#include <cstdio>\n#define WIDE(a, \\\n  b) a\nint live;\n"
        )
        self.assertEqual(
            [t.text for t in tokens], ["int", "live", ";"]
        )

    def test_brace_depth_tracks(self):
        tokens = tokenize("namespace n {\nint a;\n}\n")
        depth_of = {t.text: t.depth for t in tokens}
        self.assertEqual(depth_of["int"], 1)
        self.assertEqual(depth_of["namespace"], 0)


class WaiverParseTest(unittest.TestCase):
    def test_same_line_and_next_line_targets(self):
        waivers, _ = parse_waivers(
            "int a;  // syndog-lint: allow(rule.a) -- why a\n"
            "// syndog-lint: allow-next-line(rule.b) -- why b\n"
            "int b;\n"
        )
        self.assertEqual(sorted(waivers), [1, 3])
        self.assertEqual(waivers[1].rules, {"rule.a"})
        self.assertEqual(waivers[3].rules, {"rule.b"})
        self.assertEqual(waivers[3].justification, "why b")

    def test_multi_rule_and_justification_stripping(self):
        waivers, _ = parse_waivers(
            "x;  // syndog-lint: allow(r.one, r.two) — em-dash why\n"
        )
        self.assertEqual(waivers[1].rules, {"r.one", "r.two"})
        self.assertEqual(waivers[1].justification, "em-dash why")
        self.assertTrue(waivers[1].justified)

    def test_missing_justification_detected(self):
        waivers, _ = parse_waivers("x;  // syndog-lint: allow(r.one)\n")
        self.assertFalse(waivers[1].justified)

    def test_pragma_parsing(self):
        _, pragmas = parse_waivers(
            "// syndog-lint: hotpath-file -- steady state allocates nothing\n"
        )
        self.assertEqual(pragmas, {"hotpath-file"})


class SarifTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.doc = json.loads(render_sarif(lint_corpus()))

    def test_log_skeleton(self):
        self.assertEqual(self.doc["version"], "2.1.0")
        self.assertIn("sarif-schema-2.1.0.json", self.doc["$schema"])
        self.assertEqual(len(self.doc["runs"]), 1)

    def test_driver_and_rule_metadata(self):
        driver = self.doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "syndog_lint")
        ids = [r["id"] for r in driver["rules"]]
        self.assertEqual(len(ids), len(set(ids)))
        for rule in driver["rules"]:
            self.assertTrue(rule["shortDescription"]["text"])
            self.assertTrue(rule["fullDescription"]["text"])
            self.assertIn(
                rule["defaultConfiguration"]["level"],
                ("error", "warning", "note"),
            )

    def test_results_reference_declared_rules(self):
        rules = self.doc["runs"][0]["tool"]["driver"]["rules"]
        results = self.doc["runs"][0]["results"]
        self.assertTrue(results)
        for res in results:
            self.assertTrue(res["message"]["text"])
            if "ruleIndex" in res:
                self.assertEqual(
                    rules[res["ruleIndex"]]["id"], res["ruleId"]
                )
            loc = res["locations"][0]["physicalLocation"]
            self.assertEqual(
                loc["artifactLocation"]["uriBaseId"], "SRCROOT"
            )
            self.assertFalse(loc["artifactLocation"]["uri"].startswith("/"))
            self.assertGreaterEqual(loc["region"]["startLine"], 1)

    def test_srcroot_base_declared(self):
        self.assertIn(
            "SRCROOT", self.doc["runs"][0]["originalUriBaseIds"]
        )

    def test_json_format_summary(self):
        doc = json.loads(render_json(lint_corpus()))
        self.assertEqual(doc["summary"]["findings"], len(doc["findings"]))
        self.assertEqual(doc["tool"]["name"], "syndog_lint")


class CacheTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="syndog_lint_self_")
        self.root = Path(self._tmp.name) / "corpus"
        shutil.copytree(CORPUS, self.root)
        self.cache_path = Path(self._tmp.name) / "cache.json"

    def tearDown(self):
        self._tmp.cleanup()

    def _run(self):
        cache = Cache(self.cache_path)
        result = lint_corpus(self.root, cache=cache)
        cache.save()
        return result, cache

    def test_warm_run_hits_everything_and_agrees(self):
        cold_result, cold_cache = self._run()
        self.assertEqual(cold_cache.file_hits, 0)
        self.assertGreater(cold_cache.header_misses, 0)

        warm_result, warm_cache = self._run()
        self.assertEqual(warm_cache.file_misses, 0)
        self.assertEqual(warm_cache.header_misses, 0)
        self.assertEqual(warm_cache.header_hit_rate(), 1.0)
        self.assertEqual(
            [f.render() for f in cold_result.findings],
            [f.render() for f in warm_result.findings],
        )

    def test_edited_file_misses_alone(self):
        _, _ = self._run()
        victim = self.root / "src" / "detect" / "determinism_bad.cpp"
        victim.write_text(
            victim.read_text(encoding="utf-8") + "// touched\n",
            encoding="utf-8",
        )
        result, cache = self._run()
        self.assertEqual(cache.file_misses, 1)
        self.assertEqual(cache.header_misses, 0)
        # A comment-only edit changes no findings.
        baseline = corpus_expectations()
        self.assertEqual(
            {(f.rel, f.line, f.rule) for f in result.findings}, baseline
        )

    def test_version_skew_discards_cache(self):
        self._run()
        data = json.loads(self.cache_path.read_text(encoding="utf-8"))
        data["version"] = "0.0.0-stale"
        self.cache_path.write_text(json.dumps(data), encoding="utf-8")
        _, cache = self._run()
        self.assertEqual(cache.file_hits, 0)


class CliTest(unittest.TestCase):
    def test_corpus_run_exits_one_with_findings(self):
        import contextlib
        import io

        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = cli_main(["--root", str(CORPUS), "--format", "json"])
        self.assertEqual(status, 1)
        doc = json.loads(out.getvalue())
        self.assertGreater(doc["summary"]["findings"], 0)

    def test_explain_and_unknown_rule(self):
        import contextlib
        import io

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(
                cli_main(["--explain", "determinism.unordered_iteration"]), 0
            )
        self.assertIn("sorted_items", out.getvalue())
        with contextlib.redirect_stderr(io.StringIO()):
            self.assertEqual(cli_main(["--explain", "no.such.rule"]), 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
