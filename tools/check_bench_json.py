#!/usr/bin/env python3
"""Validates BENCH_*.json sidecars against the syndog-bench/1 schema.

Every bench binary writes a machine-readable sidecar next to its stdout
report (bench/common/sidecar.hpp). CI's bench-smoke job runs a couple of
fast benches and feeds the files through this checker so a malformed
export — or a headline number drifting out of its calibrated range —
fails the build instead of silently shipping a broken artifact.

Usage:
    check_bench_json.py FILE [FILE ...]
        [--expect name:key:lo:hi ...]

Schema (syndog-bench/1):
    name     non-empty string (matches the BENCH_<name>.json filename)
    schema   the literal "syndog-bench/1"
    scalars  object: str -> finite number
    text     object: str -> str
    series   object: str -> list of finite numbers; a series named "t_s"
             or ending in "_t_s" is a timestamp axis and must be
             monotonically non-decreasing
    metrics  object with counters / gauges / histograms:
               counters    str -> non-negative int
               gauges      str -> finite number
               histograms  str -> {bounds: [num...] strictly increasing,
                                   counts: [int...] of len(bounds)+1,
                                   count: int, sum: finite number}
    events   object: {recorded: int >= 0, dropped: int >= 0}

--expect asserts a scalar range: "table2_unc_detection:unc_k_bar:1900:2400"
checks that the file whose name is table2_unc_detection has scalar
unc_k_bar in [1900, 2400]. Expectations naming a file not present on the
command line are an error (a vanished bench must not pass silently).

Stdlib only; exits non-zero with one line per problem.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

SCHEMA = "syndog-bench/1"


def is_finite_number(v) -> bool:
    return (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    )


def is_count(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_str_map(obj, where, value_check, value_desc, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object")
        return
    for key, value in obj.items():
        if not value_check(value):
            errors.append(f"{where}[{key!r}]: expected {value_desc}")


def check_histogram(name, hist, errors):
    where = f"metrics.histograms[{name!r}]"
    if not isinstance(hist, dict):
        errors.append(f"{where}: expected an object")
        return
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    if not isinstance(bounds, list) or not all(
        is_finite_number(b) for b in bounds
    ):
        errors.append(f"{where}.bounds: expected a list of finite numbers")
        bounds = None
    elif any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        errors.append(f"{where}.bounds: not strictly increasing")
    if not isinstance(counts, list) or not all(is_count(c) for c in counts):
        errors.append(f"{where}.counts: expected a list of counts")
    elif bounds is not None and len(counts) != len(bounds) + 1:
        errors.append(
            f"{where}.counts: expected len(bounds)+1 = {len(bounds) + 1} "
            f"entries, got {len(counts)}"
        )
    if not is_count(hist.get("count")):
        errors.append(f"{where}.count: expected a count")
    if not is_finite_number(hist.get("sum")):
        errors.append(f"{where}.sum: expected a finite number")


def check_file(path: Path, errors: list[str]) -> dict | None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return None

    def err(msg):
        errors.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        err("top level must be an object")
        return None
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        err("name: expected a non-empty string")
    elif path.name != f"BENCH_{name}.json":
        err(f"name {name!r} does not match filename {path.name!r}")
    if doc.get("schema") != SCHEMA:
        err(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")

    local: list[str] = []
    check_str_map(doc.get("scalars"), "scalars", is_finite_number,
                  "a finite number", local)
    check_str_map(doc.get("text"), "text",
                  lambda v: isinstance(v, str), "a string", local)
    series = doc.get("series")
    check_str_map(
        series, "series",
        lambda v: isinstance(v, list) and all(is_finite_number(x) for x in v),
        "a list of finite numbers", local)
    if isinstance(series, dict):
        for sname, values in series.items():
            if not (sname == "t_s" or sname.endswith("_t_s")):
                continue  # not a timestamp axis
            if not isinstance(values, list) or not all(
                is_finite_number(x) for x in values
            ):
                continue  # already reported above
            for i, (a, b) in enumerate(zip(values, values[1:])):
                if b < a:
                    local.append(
                        f"series[{sname!r}]: timestamps not monotonically "
                        f"non-decreasing at index {i + 1} ({b} < {a})"
                    )
                    break

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        local.append("metrics: expected an object")
    else:
        check_str_map(metrics.get("counters"), "metrics.counters", is_count,
                      "a non-negative integer", local)
        check_str_map(metrics.get("gauges"), "metrics.gauges",
                      is_finite_number, "a finite number", local)
        hists = metrics.get("histograms")
        if not isinstance(hists, dict):
            local.append("metrics.histograms: expected an object")
        else:
            for hname, hist in hists.items():
                check_histogram(hname, hist, local)

    events = doc.get("events")
    if not isinstance(events, dict) or not is_count(
        events.get("recorded")
    ) or not is_count(events.get("dropped")):
        local.append("events: expected {recorded: int >= 0, dropped: int >= 0}")

    errors.extend(f"{path}: {msg}" for msg in local)
    return doc


def parse_expectation(spec: str):
    parts = spec.split(":")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"expected name:key:lo:hi, got {spec!r}")
    name, key, lo, hi = parts
    try:
        lo_f, hi_f = float(lo), float(hi)
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad bound in {spec!r}: {e}")
    # float("nan") <= x <= float("inf") comparisons would silently pass
    # (or never fail) instead of validating anything.
    if not math.isfinite(lo_f) or not math.isfinite(hi_f):
        raise argparse.ArgumentTypeError(
            f"non-finite bound in {spec!r}: bounds must be finite numbers")
    if lo_f > hi_f:
        raise argparse.ArgumentTypeError(f"empty range in {spec!r}: lo > hi")
    return name, key, lo_f, hi_f


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json sidecars (syndog-bench/1).")
    parser.add_argument("files", nargs="+", type=Path)
    parser.add_argument(
        "--expect", action="append", default=[], type=parse_expectation,
        metavar="NAME:KEY:LO:HI",
        help="require scalar KEY of bench NAME to lie in [LO, HI]")
    args = parser.parse_args()

    errors: list[str] = []
    docs: dict[str, dict] = {}
    for path in args.files:
        doc = check_file(path, errors)
        if doc is not None and isinstance(doc.get("name"), str):
            docs[doc["name"]] = doc

    for name, key, lo, hi in args.expect:
        doc = docs.get(name)
        if doc is None:
            errors.append(f"--expect {name}:{key}: no such bench among inputs")
            continue
        value = doc.get("scalars", {}).get(key) if isinstance(
            doc.get("scalars"), dict) else None
        if isinstance(value, float) and not math.isfinite(value):
            # json.loads accepts bare NaN/Infinity tokens, and any
            # comparison against NaN is False — call it out explicitly
            # instead of reporting a confusing range failure.
            errors.append(f"{name}: scalar {key} = {value} is not finite")
        elif not is_finite_number(value):
            errors.append(f"{name}: scalar {key!r} missing or non-numeric")
        elif not lo <= value <= hi:
            errors.append(
                f"{name}: scalar {key} = {value} outside [{lo}, {hi}]")

    if errors:
        for e in errors:
            print(f"check_bench_json: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_json: {len(args.files)} file(s) valid "
          f"({len(args.expect)} expectation(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
