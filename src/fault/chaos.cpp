#include "syndog/fault/chaos.hpp"

#include <stdexcept>
#include <utility>

namespace syndog::fault {

// Applies the link-scoped fault windows of one link. Owns a private child
// Rng: draws happen only while a window is open and only for this link's
// packets, so the base traffic and loss streams never observe the fault
// layer's existence.
class ChaosController::LinkPerturber : public sim::LinkChaos {
 public:
  LinkPerturber(std::vector<const FaultSpec*> specs, util::Rng rng)
      : specs_(std::move(specs)), rng_(std::move(rng)) {}

  Verdict inspect(util::SimTime now, const net::Packet& packet) override {
    (void)packet;
    Verdict verdict;
    for (const FaultSpec* spec : specs_) {
      if (!spec->active_at(now)) continue;
      switch (spec->kind) {
        case FaultKind::kLinkFlap:
          // Down is down: no later window can resurrect the packet.
          verdict.drop = Drop::kLinkDown;
          return verdict;
        case FaultKind::kBurstLoss:
          if (verdict.drop == Drop::kNone &&
              rng_.bernoulli(spec->magnitude)) {
            verdict.drop = Drop::kLoss;
          }
          break;
        case FaultKind::kDuplication:
          if (rng_.bernoulli(spec->magnitude)) verdict.extra_copies += 1;
          break;
        case FaultKind::kDelayJitter:
          verdict.extra_delay =
              verdict.extra_delay +
              util::SimTime::nanoseconds(
                  rng_.uniform_int(0, spec->bound.ns()));
          break;
        case FaultKind::kTapOutage:
        case FaultKind::kAsymmetricRoute:
          break;  // router-scoped; never routed to a link perturber
      }
    }
    return verdict;
  }

 private:
  std::vector<const FaultSpec*> specs_;
  util::Rng rng_;
};

ChaosController::ChaosController(sim::StubNetworkSim& sim,
                                 FaultSchedule schedule, std::uint64_t seed)
    : sim_(sim),
      schedule_(std::move(schedule)),
      seed_(seed),
      asym_rng_(util::Rng::child(seed, 0xa5f1)) {
  for (const FaultSpec& spec : schedule_.specs()) spec.validate();
  install();
}

ChaosController::~ChaosController() {
  for (const sim::EventId id : edge_events_) sim_.scheduler().cancel(id);
  if (uplink_perturber_) sim_.uplink().set_chaos(nullptr);
  if (downlink_perturber_) sim_.downlink().set_chaos(nullptr);
  if (!asym_specs_.empty()) sim_.router().set_inbound_tap_bypass({});
}

void ChaosController::install() {
  const util::SimTime now = sim_.scheduler().now();
  std::vector<const FaultSpec*> uplink_specs;
  std::vector<const FaultSpec*> downlink_specs;
  for (const FaultSpec& spec : schedule_.specs()) {
    if (spec.start < now) {
      throw std::invalid_argument(
          "ChaosController: fault window opens in the past");
    }
    switch (spec.target) {
      case FaultTarget::kUplink:
        uplink_specs.push_back(&spec);
        break;
      case FaultTarget::kDownlink:
        downlink_specs.push_back(&spec);
        break;
      case FaultTarget::kRouter:
        if (spec.kind == FaultKind::kAsymmetricRoute) {
          asym_specs_.push_back(&spec);
        }
        break;
    }
    const FaultSpec* p = &spec;
    edge_events_.push_back(sim_.scheduler().schedule_at(
        spec.start, [this, p] { on_window_edge(*p, true); }));
    edge_events_.push_back(sim_.scheduler().schedule_at(
        spec.end, [this, p] { on_window_edge(*p, false); }));
  }
  if (!uplink_specs.empty()) {
    uplink_perturber_ = std::make_unique<LinkPerturber>(
        std::move(uplink_specs), util::Rng::child(seed_, 0x11));
    sim_.uplink().set_chaos(uplink_perturber_.get());
  }
  if (!downlink_specs.empty()) {
    downlink_perturber_ = std::make_unique<LinkPerturber>(
        std::move(downlink_specs), util::Rng::child(seed_, 0x22));
    sim_.downlink().set_chaos(downlink_perturber_.get());
  }
  if (!asym_specs_.empty()) {
    sim_.router().set_inbound_tap_bypass(
        [this](util::SimTime at, const net::Packet& packet) {
          return divert_inbound(at, packet);
        });
  }
}

void ChaosController::on_window_edge(const FaultSpec& spec, bool active) {
  active_faults_ += active ? 1 : -1;
  if (edges_counter_ != nullptr) edges_counter_->add();
  if (active_gauge_ != nullptr) {
    active_gauge_->set(static_cast<double>(active_faults_));
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.scheduler().now(),
                    obs::FaultEdge{static_cast<std::uint8_t>(spec.kind),
                                   static_cast<std::uint8_t>(spec.target),
                                   active});
  }
  if (spec.kind == FaultKind::kTapOutage) {
    const std::int64_t before = open_tap_outages_;
    open_tap_outages_ += active ? 1 : -1;
    sim_.router().set_taps_enabled(open_tap_outages_ == 0);
    const bool was_out = before > 0;
    const bool is_out = open_tap_outages_ > 0;
    if (was_out != is_out && outage_listener_) {
      outage_listener_(sim_.scheduler().now(), is_out);
    }
  }
}

bool ChaosController::divert_inbound(util::SimTime now,
                                     const net::Packet& packet) {
  if (!packet.is_syn_ack()) return false;
  for (const FaultSpec* spec : asym_specs_) {
    if (!spec->active_at(now)) continue;
    if (asym_rng_.bernoulli(spec->magnitude)) {
      ++diverted_syn_acks_;
      if (diverted_counter_ != nullptr) diverted_counter_->add();
      return true;
    }
    // Exactly one window's draw per packet: overlapping asym windows do
    // not compound.
    return false;
  }
  return false;
}

void ChaosController::attach_observer(obs::Registry* registry,
                                      obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry != nullptr) {
    edges_counter_ = &registry->counter("fault.edges");
    diverted_counter_ = &registry->counter("fault.diverted_syn_acks");
    active_gauge_ = &registry->gauge("fault.active_faults");
  } else {
    edges_counter_ = nullptr;
    diverted_counter_ = nullptr;
    active_gauge_ = nullptr;
  }
}

}  // namespace syndog::fault
