#include "syndog/fault/schedule.hpp"

#include <stdexcept>

namespace syndog::fault {

namespace {

bool is_probability_kind(FaultKind kind) {
  return kind == FaultKind::kBurstLoss || kind == FaultKind::kDuplication ||
         kind == FaultKind::kAsymmetricRoute;
}

bool is_router_kind(FaultKind kind) {
  return kind == FaultKind::kTapOutage ||
         kind == FaultKind::kAsymmetricRoute;
}

}  // namespace

void FaultSpec::validate() const {
  if (!(end > start)) {
    throw std::invalid_argument("FaultSpec: window must satisfy end > start");
  }
  if (is_probability_kind(kind)) {
    if (!(magnitude > 0.0 && magnitude <= 1.0)) {
      throw std::invalid_argument(
          "FaultSpec: probability magnitude must be in (0,1]");
    }
  }
  if (kind == FaultKind::kDelayJitter && bound <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "FaultSpec: delay jitter needs a positive bound");
  }
  if (is_router_kind(kind) != (target == FaultTarget::kRouter)) {
    throw std::invalid_argument(
        "FaultSpec: tap/routing faults target the router; link faults "
        "target a link");
  }
}

FaultSchedule& FaultSchedule::add(FaultSpec spec) {
  spec.validate();
  specs_.push_back(spec);
  return *this;
}

FaultSchedule& FaultSchedule::link_flap(FaultTarget target,
                                        util::SimTime start,
                                        util::SimTime end) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkFlap;
  spec.target = target;
  spec.start = start;
  spec.end = end;
  return add(spec);
}

FaultSchedule& FaultSchedule::burst_loss(FaultTarget target,
                                         util::SimTime start,
                                         util::SimTime end,
                                         double probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kBurstLoss;
  spec.target = target;
  spec.start = start;
  spec.end = end;
  spec.magnitude = probability;
  return add(spec);
}

FaultSchedule& FaultSchedule::duplication(FaultTarget target,
                                          util::SimTime start,
                                          util::SimTime end,
                                          double probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kDuplication;
  spec.target = target;
  spec.start = start;
  spec.end = end;
  spec.magnitude = probability;
  return add(spec);
}

FaultSchedule& FaultSchedule::delay_jitter(FaultTarget target,
                                           util::SimTime start,
                                           util::SimTime end,
                                           util::SimTime bound) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelayJitter;
  spec.target = target;
  spec.start = start;
  spec.end = end;
  spec.bound = bound;
  return add(spec);
}

FaultSchedule& FaultSchedule::tap_outage(util::SimTime start,
                                         util::SimTime end) {
  FaultSpec spec;
  spec.kind = FaultKind::kTapOutage;
  spec.target = FaultTarget::kRouter;
  spec.start = start;
  spec.end = end;
  return add(spec);
}

FaultSchedule& FaultSchedule::asymmetric_route(util::SimTime start,
                                               util::SimTime end,
                                               double fraction) {
  FaultSpec spec;
  spec.kind = FaultKind::kAsymmetricRoute;
  spec.target = FaultTarget::kRouter;
  spec.start = start;
  spec.end = end;
  spec.magnitude = fraction;
  return add(spec);
}

}  // namespace syndog::fault
