// ChaosController: attaches a FaultSchedule to a running stub-network sim.
//
// The controller owns one LinkChaos perturber per faulted link and wires
// the router-level faults (tap outage, asymmetric return routing) through
// the router's fault seams. Each perturber draws from its *own*
// util::Rng child stream, so attaching a schedule never advances the base
// traffic/loss RNG streams: an empty schedule — or a schedule whose
// windows never open — leaves every packet-level outcome of the
// simulation byte-identical to an unfaulted run.
//
// Fault window edges are announced three ways, all optional: an
// obs::FaultEdge trace event, the "fault.*" registry instruments, and —
// for tap outages — a callback the agent harness can route into
// core::SynDogAgent::notify_sniffer_outage (the fault layer itself does
// not depend on core).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "syndog/fault/schedule.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::fault {

class ChaosController {
 public:
  /// Fired on tap-outage window edges: (time, outage now active).
  using OutageListener = std::function<void(util::SimTime, bool)>;

  /// Attaches `schedule` to `sim` (which must outlive the controller).
  /// Perturbers are installed on the faulted links, window-edge events are
  /// scheduled on the sim's scheduler, and router faults are wired to the
  /// router seams. An empty schedule installs nothing.
  ChaosController(sim::StubNetworkSim& sim, FaultSchedule schedule,
                  std::uint64_t seed);

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;
  ~ChaosController();

  /// True when at least one fault was installed.
  [[nodiscard]] bool attached() const { return !schedule_.empty(); }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// Registers the sink for tap-outage edges (e.g. the agent's
  /// notify_sniffer_outage). Must be set before the first window opens to
  /// see that edge; nullptr-like empty function disables.
  void set_outage_listener(OutageListener listener) {
    outage_listener_ = std::move(listener);
  }

  /// Attaches telemetry ("fault.edges" counter, "fault.active_faults"
  /// gauge, obs::FaultEdge events). Sinks must outlive the controller;
  /// nullptr tracer disables tracing.
  void attach_observer(obs::Registry* registry, obs::EventTracer* tracer);

  /// SYN/ACKs diverted around the inbound tap so far.
  [[nodiscard]] std::uint64_t diverted_syn_acks() const {
    return diverted_syn_acks_;
  }
  /// Fault windows currently open.
  [[nodiscard]] std::int64_t active_faults() const { return active_faults_; }

 private:
  class LinkPerturber;

  void install();
  void on_window_edge(const FaultSpec& spec, bool active);
  [[nodiscard]] bool divert_inbound(util::SimTime now,
                                    const net::Packet& packet);

  sim::StubNetworkSim& sim_;
  FaultSchedule schedule_;
  std::uint64_t seed_;
  util::Rng asym_rng_;
  std::unique_ptr<LinkPerturber> uplink_perturber_;
  std::unique_ptr<LinkPerturber> downlink_perturber_;
  std::vector<const FaultSpec*> asym_specs_;
  std::vector<sim::EventId> edge_events_;
  OutageListener outage_listener_;
  std::int64_t open_tap_outages_ = 0;
  std::int64_t active_faults_ = 0;
  std::uint64_t diverted_syn_acks_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  obs::Counter* edges_counter_ = nullptr;
  obs::Counter* diverted_counter_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
};

}  // namespace syndog::fault
