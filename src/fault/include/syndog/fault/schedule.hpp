// Fault-injection schedule (chaos for the leaf router's first mile).
//
// A FaultSchedule is a validated list of timed fault windows — link flaps,
// burst loss, duplication, delay jitter/reordering, sniffer-tap outages,
// and asymmetric return routing — that a fault::ChaosController later
// attaches to a sim::StubNetworkSim. The schedule itself is pure data:
// deterministic, copyable, and inert until attached. An *empty* schedule
// attaches nothing at all, so every unfaulted experiment is byte-identical
// to one built without the fault layer.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/util/time.hpp"

namespace syndog::fault {

/// What misbehaves (values are stable: they appear in obs::FaultEdge).
enum class FaultKind : std::uint8_t {
  /// The link is administratively dead for the window: every packet is
  /// dropped (counted as dropped_link_down, not as loss).
  kLinkFlap = 0,
  /// Extra Bernoulli loss at `magnitude` on top of the base loss model.
  kBurstLoss = 1,
  /// Each packet is duplicated with probability `magnitude` (one extra
  /// copy, delivered shortly after the original).
  kDuplication = 2,
  /// Each packet gains an extra uniform delay in [0, bound]; a bound
  /// larger than the inter-packet spacing yields bounded reordering.
  kDelayJitter = 3,
  /// The router's span/tap feed is dead: forwarding continues but no
  /// sniffer tap fires, so the agent's counters silently gap.
  kTapOutage = 4,
  /// Asymmetric return routing: each returning SYN/ACK bypasses the
  /// monitored inbound interface with probability `magnitude` (it still
  /// reaches its host, invisible to the sniffer).
  kAsymmetricRoute = 5,
};

/// What the fault applies to (stable values, exported in obs::FaultEdge).
enum class FaultTarget : std::uint8_t {
  kUplink = 0,    ///< router -> Internet link
  kDownlink = 1,  ///< Internet -> router link
  kRouter = 2,    ///< the leaf router itself (taps, return routing)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kLinkFlap;
  FaultTarget target = FaultTarget::kDownlink;
  util::SimTime start;                       ///< window start (inclusive)
  util::SimTime end;                         ///< window end (exclusive)
  double magnitude = 0.0;                    ///< probability knob, in [0,1]
  util::SimTime bound = util::SimTime::zero();  ///< jitter bound

  /// Throws std::invalid_argument on nonsense (empty window, probability
  /// outside [0,1], router fault aimed at a link, ...).
  void validate() const;

  /// True when `now` lies inside [start, end).
  [[nodiscard]] bool active_at(util::SimTime now) const {
    return now >= start && now < end;
  }
};

class FaultSchedule {
 public:
  /// Appends a validated spec; returns *this for chaining.
  FaultSchedule& add(FaultSpec spec);

  // Convenience builders (all validate, all return *this).
  FaultSchedule& link_flap(FaultTarget target, util::SimTime start,
                           util::SimTime end);
  FaultSchedule& burst_loss(FaultTarget target, util::SimTime start,
                            util::SimTime end, double probability);
  FaultSchedule& duplication(FaultTarget target, util::SimTime start,
                             util::SimTime end, double probability);
  FaultSchedule& delay_jitter(FaultTarget target, util::SimTime start,
                              util::SimTime end, util::SimTime bound);
  FaultSchedule& tap_outage(util::SimTime start, util::SimTime end);
  FaultSchedule& asymmetric_route(util::SimTime start, util::SimTime end,
                                  double fraction);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace syndog::fault
