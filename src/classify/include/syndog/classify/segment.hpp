// TCP control-segment classification, exactly as paper §2 describes:
//
//   1. check that the IP packet contains a TCP header (protocol == 6, and
//      fragment offset == 0 — only first fragments carry the TCP header);
//   2. compute the offset of the TCP flag bits inside the IP packet;
//   3. read the six flag bits to determine the segment type.
//
// `classify_frame_fast` performs those steps with direct offset arithmetic
// on the raw bytes — no allocation, no full header decode — which is what
// makes the sniffer cheap enough to run at line rate on a leaf router.
#pragma once

#include <cstdint>
#include <string_view>

#include "syndog/net/packet.hpp"

namespace syndog::classify {

/// The segment taxonomy the sniffers count. kNotTcp covers non-IPv4,
/// non-TCP, and non-first-fragment packets alike: none of them can be
/// classified by TCP flags.
enum class SegmentKind : std::uint8_t {
  kSyn = 0,      ///< SYN set, ACK clear: connection request
  kSynAck = 1,   ///< SYN and ACK set: connection acceptance
  kFin = 2,      ///< FIN set (any ACK): teardown
  kRst = 3,      ///< RST set: reset
  kPureAck = 4,  ///< ACK only, no payload-relevant flags
  kData = 5,     ///< any other valid TCP segment
  kNotTcp = 6,
};
inline constexpr std::size_t kSegmentKindCount = 7;

[[nodiscard]] std::string_view to_string(SegmentKind kind);

/// Classifies from already-parsed flags. RST takes precedence over FIN
/// (a RST|FIN segment is a reset); SYN takes precedence over both, matching
/// how endpoint stacks interpret such segments.
[[nodiscard]] SegmentKind classify_flags(net::TcpFlags flags);

/// Classifies a logical packet (simulator path).
[[nodiscard]] SegmentKind classify_packet(const net::Packet& packet);

/// Classifies a raw Ethernet frame (capture path) using the three-step
/// procedure above; never reads past `frame.size()`.
[[nodiscard]] SegmentKind classify_frame_fast(net::ByteSpan frame);

/// Per-kind counters; what each SYN-dog sniffer accumulates per period.
struct SegmentCounters {
  std::uint64_t counts[kSegmentKindCount] = {};

  void add(SegmentKind kind) {
    ++counts[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t count(SegmentKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t syn() const { return count(SegmentKind::kSyn); }
  [[nodiscard]] std::uint64_t syn_ack() const {
    return count(SegmentKind::kSynAck);
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts) sum += c;
    return sum;
  }
  void reset() {
    for (std::uint64_t& c : counts) c = 0;
  }
  SegmentCounters& operator+=(const SegmentCounters& rhs) {
    for (std::size_t i = 0; i < kSegmentKindCount; ++i) {
      counts[i] += rhs.counts[i];
    }
    return *this;
  }
};

}  // namespace syndog::classify
