// Telemetry binding for the control-segment classifier.
//
// The classifier itself (segment.hpp) stays a pure function — cheapness at
// line rate is the paper's §2 design point. SegmentMetrics is the optional
// observer a sniffer attaches next to it: one cached obs::Counter per
// segment kind (exact totals, O(1) per packet) plus a sampled
// obs::ClassifierHit event stream so the tracer shows *what kinds* of
// segments a busy period carried without recording every packet.
#pragma once

#include <cstdint>
#include <string_view>

#include "syndog/classify/segment.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"

namespace syndog::classify {

/// Lowercase metric-path segment for a kind ("syn", "syn_ack", ...);
/// to_string() in segment.hpp is the human-facing spelling.
[[nodiscard]] std::string_view segment_metric_name(SegmentKind kind);

class SegmentMetrics {
 public:
  /// Registers `<prefix>.<kind>` counters (e.g. "sniffer.out.syn") in
  /// `registry`, which must outlive this object. When `tracer` is given,
  /// every `sample_every`-th classified packet is also recorded as an
  /// obs::ClassifierHit event.
  SegmentMetrics(obs::Registry& registry, std::string_view prefix,
                 obs::EventTracer* tracer = nullptr,
                 std::uint64_t sample_every = 4096);

  /// O(1): one counter add, plus a ring write on sampled packets.
  void on_segment(util::SimTime at, SegmentKind kind) {
    counters_[static_cast<std::size_t>(kind)]->add();
    if (tracer_ != nullptr && ++seen_ % sample_every_ == 0) {
      tracer_->record(at, obs::ClassifierHit{
                              static_cast<std::uint8_t>(kind), seen_});
    }
  }

  [[nodiscard]] std::uint64_t seen() const { return seen_; }

 private:
  obs::Counter* counters_[kSegmentKindCount] = {};
  obs::EventTracer* tracer_;
  std::uint64_t sample_every_;
  std::uint64_t seen_ = 0;
};

}  // namespace syndog::classify
