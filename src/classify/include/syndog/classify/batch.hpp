// Batched §2 flag classification: SIMD sweep over packed TCP-flag bytes.
//
// The per-frame classifier (segment.hpp) reads one flag byte at a time;
// at line rate that byte-at-a-time loop is the sniffer's hot spot. The
// sharded ingest datapath instead *packs* the flag byte of every frame it
// routes into a contiguous buffer and counts SYN / SYN-ACK over the whole
// span at once:
//
//   SYN      iff (b & (SYN|ACK)) == SYN        (connection request)
//   SYN-ACK  iff (b & (SYN|ACK)) == SYN|ACK    (connection acceptance)
//
// which is exactly the §2 decision the sniffers make (sniffer.hpp counts
// kSyn outbound and kSynAck inbound; the other segment kinds never feed
// the detector). Frames that carry no classifiable TCP flags — non-IPv4,
// non-TCP, non-first fragments — are represented by a byte with bit 7 set
// (net::FlowDigest::kNoTcpFlags): wire parsing masks real flag bytes to
// the six RFC 793 bits, so bit 7 never collides, and it makes both tests
// above fail, counting the frame as neither.
//
// sweep_flags() dispatches to an SSE2 or NEON kernel (16 flag bytes per
// step: mask, byte-compare, population count) when the target supports
// one, and to sweep_flags_scalar() otherwise. The two paths are proven
// equivalent on random buffers by classify_test; results are identical
// bit for bit, so the deterministic reference pump may use either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace syndog::classify {

/// SYN / SYN-ACK totals over one packed flag-byte span.
struct FlagSweep {
  std::uint64_t syn = 0;      ///< (b & (SYN|ACK)) == SYN
  std::uint64_t syn_ack = 0;  ///< (b & (SYN|ACK)) == SYN|ACK

  FlagSweep& operator+=(const FlagSweep& rhs) {
    syn += rhs.syn;
    syn_ack += rhs.syn_ack;
    return *this;
  }
  constexpr bool operator==(const FlagSweep&) const = default;
};

/// Portable reference sweep: one byte at a time. The SIMD kernels must
/// match this exactly (pinned by the randomized property test).
[[nodiscard]] FlagSweep sweep_flags_scalar(std::span<const std::uint8_t> flags);

/// Counts SYN / SYN-ACK bytes in `flags` using the best kernel the build
/// target supports. Bit-identical to sweep_flags_scalar().
[[nodiscard]] FlagSweep sweep_flags(std::span<const std::uint8_t> flags);

/// Which kernel sweep_flags() compiles to: "sse2", "neon", or "scalar".
[[nodiscard]] std::string_view sweep_flags_backend();

}  // namespace syndog::classify
