// Text format for classification rules (ACL-style configuration).
//
// One rule per line:
//
//   <action> [priority=N] [proto=tcp|udp|icmp] [src=PREFIX] [dst=PREFIX]
//            [sport=N|LO-HI] [dport=N|LO-HI] [flags=SPEC] [name=TEXT]
//
// where <action> is permit | deny | count-syn | count-synack | mirror and
// SPEC is one of syn (pure SYN), syn-ack, ack, rst, fin, or an explicit
// MASK:VALUE pair in hex (e.g. 0x12:0x02). '#' starts a comment; blank
// lines are ignored. Omitted fields are wildcards. Example — the two
// rules SYN-dog installs:
//
//   count-syn    priority=0 proto=tcp flags=syn     name=syndog-out
//   count-synack priority=1 proto=tcp flags=syn-ack name=syndog-in
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "syndog/classify/rule.hpp"

namespace syndog::classify {

/// Parses one rule line (comments/blank not allowed here). Throws
/// std::invalid_argument with a descriptive message on malformed input.
[[nodiscard]] Rule parse_rule_line(std::string_view line);

/// Parses a whole configuration (lines, '#' comments). Error messages
/// carry 1-based line numbers.
[[nodiscard]] std::vector<Rule> parse_rules(std::string_view text);

/// Renders a rule in the same format (round-trips through parse).
[[nodiscard]] std::string format_rule(const Rule& rule);

}  // namespace syndog::classify
