// Three interchangeable rule-matching engines.
//
// * LinearClassifier — priority-ordered scan; the correctness reference.
// * HierarchicalTrieClassifier — source-prefix binary trie whose nodes hang
//   destination tries (Srinivasan et al., SIGCOMM'98 style).
// * TupleSpaceClassifier — rules grouped by (src-len, dst-len) tuple with a
//   hash probe per tuple (Srinivasan/Suri/Varghese tuple space search).
//
// All three implement first-match semantics and are checked against each
// other by property tests; the microbenchmark compares their lookup cost.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "syndog/classify/rule.hpp"

namespace syndog::classify {

class LinearClassifier final : public Classifier {
 public:
  void add_rule(Rule rule) override;
  void build() override;
  [[nodiscard]] const Rule* match(const FlowKey& key) const override;
  [[nodiscard]] std::size_t rule_count() const override {
    return rules_.size();
  }
  [[nodiscard]] std::string_view name() const override { return "linear"; }

 private:
  std::vector<Rule> rules_;  // sorted by (priority, insertion) after build()
  bool built_ = false;
};

class HierarchicalTrieClassifier final : public Classifier {
 public:
  HierarchicalTrieClassifier();

  void add_rule(Rule rule) override;
  void build() override;
  [[nodiscard]] const Rule* match(const FlowKey& key) const override;
  [[nodiscard]] std::size_t rule_count() const override {
    return rules_.size();
  }
  [[nodiscard]] std::string_view name() const override { return "trie"; }

  /// Number of allocated trie nodes (memory diagnostics for the bench).
  [[nodiscard]] std::size_t node_count() const;

 private:
  static constexpr std::uint32_t kNoNode = UINT32_MAX;

  struct DstNode {
    std::uint32_t child[2] = {kNoNode, kNoNode};
    std::vector<std::uint32_t> rule_indices;  // rules anchored at this node
  };
  struct SrcNode {
    std::uint32_t child[2] = {kNoNode, kNoNode};
    std::uint32_t dst_root = kNoNode;  // root of this node's dest trie
  };

  std::uint32_t alloc_src();
  std::uint32_t alloc_dst();
  void insert_rule(std::uint32_t rule_index);

  std::vector<Rule> rules_;
  std::vector<SrcNode> src_nodes_;
  std::vector<DstNode> dst_nodes_;
  bool built_ = false;
};

class TupleSpaceClassifier final : public Classifier {
 public:
  void add_rule(Rule rule) override;
  void build() override;
  [[nodiscard]] const Rule* match(const FlowKey& key) const override;
  [[nodiscard]] std::size_t rule_count() const override {
    return rules_.size();
  }
  [[nodiscard]] std::string_view name() const override {
    return "tuple-space";
  }

  /// Number of distinct (src-len, dst-len) tuples (probe count per lookup).
  [[nodiscard]] std::size_t tuple_count() const { return tuples_.size(); }

 private:
  struct Tuple {
    int src_len = 0;
    int dst_len = 0;
    // masked (src, dst) pair -> rule indices, ordered by priority.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  static std::uint64_t bucket_key(std::uint32_t masked_src,
                                  std::uint32_t masked_dst) {
    return (std::uint64_t{masked_src} << 32) | masked_dst;
  }

  std::vector<Rule> rules_;
  std::vector<Tuple> tuples_;
  bool built_ = false;
};

/// Factory used by tests/benches to instantiate every engine.
[[nodiscard]] std::vector<std::unique_ptr<Classifier>> make_all_classifiers();

}  // namespace syndog::classify
