// Multi-field classification rules (cf. paper refs [14, 15, 28]).
//
// A leaf router that differentiates TCP control packets needs a general
// rule engine: SYN-dog's sniffer taps are just two rules in it ("outbound
// pure-SYN", "inbound SYN/ACK"). Rules match on source/destination prefix,
// port ranges, protocol, and TCP flag mask/value; lowest priority number
// wins (first-match semantics).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "syndog/net/address.hpp"
#include "syndog/net/packet.hpp"

namespace syndog::classify {

/// Inclusive port range; the default matches every port.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  [[nodiscard]] constexpr bool contains(std::uint16_t p) const {
    return p >= lo && p <= hi;
  }
  [[nodiscard]] constexpr bool is_wildcard() const {
    return lo == 0 && hi == 65535;
  }
  [[nodiscard]] static constexpr PortRange exactly(std::uint16_t p) {
    return {p, p};
  }
  constexpr bool operator==(const PortRange&) const = default;
};

/// The header fields classification operates on, extracted once per packet.
struct FlowKey {
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  std::uint8_t tcp_flags = 0;  ///< 0 for non-TCP

  [[nodiscard]] static FlowKey from_packet(const net::Packet& packet);
  constexpr bool operator==(const FlowKey&) const = default;
};

/// Actions are opaque small integers owned by the caller; these named
/// values cover the uses inside this project.
enum class Action : std::uint16_t {
  kPermit = 0,
  kDeny = 1,
  kCountSyn = 2,
  kCountSynAck = 3,
  kMirror = 4,
};

struct Rule {
  net::Ipv4Prefix src;          ///< default /0 = any
  net::Ipv4Prefix dst;          ///< default /0 = any
  PortRange src_ports;
  PortRange dst_ports;
  std::optional<std::uint8_t> protocol;  ///< nullopt = any
  std::uint8_t flag_mask = 0;   ///< TCP flag bits that must be examined
  std::uint8_t flag_value = 0;  ///< required value under flag_mask
  std::uint32_t priority = 0;   ///< lower number = higher priority
  Action action = Action::kPermit;
  std::string name;

  [[nodiscard]] bool matches(const FlowKey& key) const;
  [[nodiscard]] std::string to_string() const;
};

/// Convenience constructors for the two rules SYN-dog installs.
[[nodiscard]] Rule make_syn_count_rule(std::uint32_t priority = 0);
[[nodiscard]] Rule make_syn_ack_count_rule(std::uint32_t priority = 0);

/// Abstract matcher; implementations must agree on first-match semantics:
/// among matching rules, the one with the smallest priority value (ties
/// broken by insertion order) is returned, or nullptr if none match.
class Classifier {
 public:
  virtual ~Classifier() = default;
  /// Rules are copied in; call build() once after the last add.
  virtual void add_rule(Rule rule) = 0;
  virtual void build() = 0;
  [[nodiscard]] virtual const Rule* match(const FlowKey& key) const = 0;
  [[nodiscard]] virtual std::size_t rule_count() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace syndog::classify
