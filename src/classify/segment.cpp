#include "syndog/classify/segment.hpp"

namespace syndog::classify {

std::string_view to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kSyn:
      return "SYN";
    case SegmentKind::kSynAck:
      return "SYN/ACK";
    case SegmentKind::kFin:
      return "FIN";
    case SegmentKind::kRst:
      return "RST";
    case SegmentKind::kPureAck:
      return "ACK";
    case SegmentKind::kData:
      return "DATA";
    case SegmentKind::kNotTcp:
      return "non-TCP";
  }
  return "?";
}

SegmentKind classify_flags(net::TcpFlags flags) {
  if (flags.syn()) {
    return flags.ack() ? SegmentKind::kSynAck : SegmentKind::kSyn;
  }
  if (flags.rst()) return SegmentKind::kRst;
  if (flags.fin()) return SegmentKind::kFin;
  if (flags.ack() && !flags.psh() && !flags.urg()) {
    return SegmentKind::kPureAck;
  }
  return SegmentKind::kData;
}

SegmentKind classify_packet(const net::Packet& packet) {
  if (!packet.tcp) return SegmentKind::kNotTcp;
  if (packet.ip.fragment_offset() != 0) return SegmentKind::kNotTcp;
  const SegmentKind kind = classify_flags(packet.tcp->flags);
  // A pure ACK carrying payload is a data segment.
  if (kind == SegmentKind::kPureAck && packet.payload_bytes > 0) {
    return SegmentKind::kData;
  }
  return kind;
}

SegmentKind classify_frame_fast(net::ByteSpan frame) {
  // Step 0: Ethernet header with IPv4 ethertype.
  constexpr std::size_t kEthSize = net::EthernetHeader::kSize;
  if (frame.size() < kEthSize + net::Ipv4Header::kMinSize) {
    return SegmentKind::kNotTcp;
  }
  if (frame[12] != 0x08 || frame[13] != 0x00) return SegmentKind::kNotTcp;

  // Step 1: TCP protocol and zero fragment offset.
  const std::uint8_t version_ihl = frame[kEthSize];
  if ((version_ihl >> 4) != 4) return SegmentKind::kNotTcp;
  const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0x0f)
                                * 4;
  if (ihl_bytes < net::Ipv4Header::kMinSize) return SegmentKind::kNotTcp;
  if (frame[kEthSize + 9] !=
      static_cast<std::uint8_t>(net::IpProtocol::kTcp)) {
    return SegmentKind::kNotTcp;
  }
  const std::uint16_t frag =
      static_cast<std::uint16_t>((frame[kEthSize + 6] << 8) |
                                 frame[kEthSize + 7]);
  if ((frag & net::Ipv4Header::kFragOffsetMask) != 0) {
    return SegmentKind::kNotTcp;
  }

  // Step 2: offset of the TCP flag byte within the frame.
  const std::size_t flags_at = kEthSize + ihl_bytes + 13;
  if (frame.size() <= flags_at) return SegmentKind::kNotTcp;

  // Step 3: read the six flag bits.
  const net::TcpFlags flags{static_cast<std::uint8_t>(frame[flags_at] &
                                                      0x3f)};
  const SegmentKind kind = classify_flags(flags);
  if (kind != SegmentKind::kPureAck) return kind;

  // Distinguish pure ACK from data using the IP total length.
  const std::uint16_t total_len =
      static_cast<std::uint16_t>((frame[kEthSize + 2] << 8) |
                                 frame[kEthSize + 3]);
  const std::size_t data_offset_at = kEthSize + ihl_bytes + 12;
  const std::size_t tcp_header =
      static_cast<std::size_t>(frame[data_offset_at] >> 4) * 4;
  if (total_len > ihl_bytes + tcp_header) return SegmentKind::kData;
  return SegmentKind::kPureAck;
}

}  // namespace syndog::classify
