#include "syndog/classify/batch.hpp"

#include <bit>

#include "syndog/net/headers.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#define SYNDOG_SWEEP_SSE2 1
#elif defined(__aarch64__)
// vaddvq_u8 (horizontal add) needs A64; 32-bit NEON falls back to scalar.
#include <arm_neon.h>
#define SYNDOG_SWEEP_NEON 1
#endif

namespace syndog::classify {

namespace {

constexpr std::uint8_t kSynAckMask =
    net::TcpFlags::kSyn | net::TcpFlags::kAck;  // 0x12

}  // namespace

FlagSweep sweep_flags_scalar(std::span<const std::uint8_t> flags) {
  FlagSweep out;
  for (const std::uint8_t b : flags) {
    const std::uint8_t m = b & kSynAckMask;
    out.syn += m == net::TcpFlags::kSyn ? 1 : 0;
    out.syn_ack += m == kSynAckMask ? 1 : 0;
  }
  return out;
}

#if defined(SYNDOG_SWEEP_SSE2)

std::string_view sweep_flags_backend() { return "sse2"; }

FlagSweep sweep_flags(std::span<const std::uint8_t> flags) {
  FlagSweep out;
  const std::uint8_t* p = flags.data();
  std::size_t n = flags.size();
  const __m128i mask = _mm_set1_epi8(static_cast<char>(kSynAckMask));
  const __m128i syn = _mm_set1_epi8(static_cast<char>(net::TcpFlags::kSyn));
  while (n >= 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i m = _mm_and_si128(v, mask);
    out.syn += static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(m, syn)))));
    out.syn_ack += static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(m, mask)))));
    p += 16;
    n -= 16;
  }
  out += sweep_flags_scalar({p, n});
  return out;
}

#elif defined(SYNDOG_SWEEP_NEON)

std::string_view sweep_flags_backend() { return "neon"; }

FlagSweep sweep_flags(std::span<const std::uint8_t> flags) {
  FlagSweep out;
  const std::uint8_t* p = flags.data();
  std::size_t n = flags.size();
  const uint8x16_t mask = vdupq_n_u8(kSynAckMask);
  const uint8x16_t syn = vdupq_n_u8(net::TcpFlags::kSyn);
  const uint8x16_t one = vdupq_n_u8(1);
  while (n >= 16) {
    const uint8x16_t v = vld1q_u8(p);
    const uint8x16_t m = vandq_u8(v, mask);
    // vceqq yields 0xff per matching lane; mask to 1 and sum the lanes.
    out.syn += vaddvq_u8(vandq_u8(vceqq_u8(m, syn), one));
    out.syn_ack += vaddvq_u8(vandq_u8(vceqq_u8(m, mask), one));
    p += 16;
    n -= 16;
  }
  out += sweep_flags_scalar({p, n});
  return out;
}

#else

std::string_view sweep_flags_backend() { return "scalar"; }

FlagSweep sweep_flags(std::span<const std::uint8_t> flags) {
  return sweep_flags_scalar(flags);
}

#endif

}  // namespace syndog::classify
