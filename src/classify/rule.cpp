#include "syndog/classify/rule.hpp"

#include "syndog/util/strings.hpp"

namespace syndog::classify {

FlowKey FlowKey::from_packet(const net::Packet& packet) {
  FlowKey key;
  key.src_ip = packet.ip.src;
  key.dst_ip = packet.ip.dst;
  key.protocol = packet.ip.protocol;
  if (packet.tcp) {
    key.src_port = packet.tcp->src_port;
    key.dst_port = packet.tcp->dst_port;
    key.tcp_flags = packet.tcp->flags.bits;
  } else if (packet.udp) {
    key.src_port = packet.udp->src_port;
    key.dst_port = packet.udp->dst_port;
  }
  return key;
}

bool Rule::matches(const FlowKey& key) const {
  if (!src.contains(key.src_ip)) return false;
  if (!dst.contains(key.dst_ip)) return false;
  if (!src_ports.contains(key.src_port)) return false;
  if (!dst_ports.contains(key.dst_port)) return false;
  if (protocol && *protocol != key.protocol) return false;
  if (flag_mask != 0) {
    if (key.protocol != static_cast<std::uint8_t>(net::IpProtocol::kTcp)) {
      return false;
    }
    if ((key.tcp_flags & flag_mask) != flag_value) return false;
  }
  return true;
}

std::string Rule::to_string() const {
  return util::strprintf(
      "#%u %s: %s:%u-%u -> %s:%u-%u proto=%s mask=0x%02x val=0x%02x",
      priority, name.empty() ? "(rule)" : name.c_str(),
      src.to_string().c_str(), src_ports.lo, src_ports.hi,
      dst.to_string().c_str(), dst_ports.lo, dst_ports.hi,
      protocol ? std::to_string(*protocol).c_str() : "any", flag_mask,
      flag_value);
}

Rule make_syn_count_rule(std::uint32_t priority) {
  Rule rule;
  rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);
  // Pure SYN: SYN set and ACK clear.
  rule.flag_mask = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  rule.flag_value = net::TcpFlags::kSyn;
  rule.priority = priority;
  rule.action = Action::kCountSyn;
  rule.name = "count-syn";
  return rule;
}

Rule make_syn_ack_count_rule(std::uint32_t priority) {
  Rule rule;
  rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);
  rule.flag_mask = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  rule.flag_value = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  rule.priority = priority;
  rule.action = Action::kCountSynAck;
  rule.name = "count-synack";
  return rule;
}

}  // namespace syndog::classify
