#include "syndog/classify/engines.hpp"

#include <algorithm>
#include <stdexcept>

#include "syndog/util/sorted.hpp"

namespace syndog::classify {

namespace {
void require_built(bool built, const char* who) {
  if (!built) {
    throw std::logic_error(std::string(who) + ": match() before build()");
  }
}
void require_not_built(bool built, const char* who) {
  if (built) {
    throw std::logic_error(std::string(who) + ": add_rule() after build()");
  }
}
/// Stable priority sort: after this, a smaller vector index always means
/// higher match precedence, which is the invariant the engines rely on.
void sort_by_priority(std::vector<Rule>& rules) {
  std::stable_sort(rules.begin(), rules.end(),
                   [](const Rule& a, const Rule& b) {
                     return a.priority < b.priority;
                   });
}
}  // namespace

// --- LinearClassifier ------------------------------------------------------

void LinearClassifier::add_rule(Rule rule) {
  require_not_built(built_, "LinearClassifier");
  rules_.push_back(std::move(rule));
}

void LinearClassifier::build() {
  sort_by_priority(rules_);
  built_ = true;
}

const Rule* LinearClassifier::match(const FlowKey& key) const {
  require_built(built_, "LinearClassifier");
  for (const Rule& rule : rules_) {
    if (rule.matches(key)) return &rule;
  }
  return nullptr;
}

// --- HierarchicalTrieClassifier ---------------------------------------------

HierarchicalTrieClassifier::HierarchicalTrieClassifier() = default;

void HierarchicalTrieClassifier::add_rule(Rule rule) {
  require_not_built(built_, "HierarchicalTrieClassifier");
  rules_.push_back(std::move(rule));
}

std::uint32_t HierarchicalTrieClassifier::alloc_src() {
  src_nodes_.emplace_back();
  return static_cast<std::uint32_t>(src_nodes_.size() - 1);
}

std::uint32_t HierarchicalTrieClassifier::alloc_dst() {
  dst_nodes_.emplace_back();
  return static_cast<std::uint32_t>(dst_nodes_.size() - 1);
}

void HierarchicalTrieClassifier::insert_rule(std::uint32_t rule_index) {
  const Rule& rule = rules_[rule_index];
  // Walk/extend the source trie along the rule's source prefix bits.
  std::uint32_t node = 0;
  for (int bit = 0; bit < rule.src.length(); ++bit) {
    const std::uint32_t b = (rule.src.base().value() >> (31 - bit)) & 1;
    if (src_nodes_[node].child[b] == kNoNode) {
      const std::uint32_t fresh = alloc_src();
      src_nodes_[node].child[b] = fresh;
    }
    node = src_nodes_[node].child[b];
  }
  if (src_nodes_[node].dst_root == kNoNode) {
    src_nodes_[node].dst_root = alloc_dst();
  }
  // Then the destination trie hanging off that source node.
  std::uint32_t dnode = src_nodes_[node].dst_root;
  for (int bit = 0; bit < rule.dst.length(); ++bit) {
    const std::uint32_t b = (rule.dst.base().value() >> (31 - bit)) & 1;
    if (dst_nodes_[dnode].child[b] == kNoNode) {
      const std::uint32_t fresh = alloc_dst();
      dst_nodes_[dnode].child[b] = fresh;
    }
    dnode = dst_nodes_[dnode].child[b];
  }
  dst_nodes_[dnode].rule_indices.push_back(rule_index);
}

void HierarchicalTrieClassifier::build() {
  sort_by_priority(rules_);
  src_nodes_.clear();
  dst_nodes_.clear();
  alloc_src();  // root
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    insert_rule(i);
  }
  // Keep per-node candidate lists in precedence order.
  for (DstNode& node : dst_nodes_) {
    std::sort(node.rule_indices.begin(), node.rule_indices.end());
  }
  built_ = true;
}

const Rule* HierarchicalTrieClassifier::match(const FlowKey& key) const {
  require_built(built_, "HierarchicalTrieClassifier");
  std::uint32_t best = kNoNode;

  // Visit every source-trie node on the path of key.src_ip (all prefix
  // lengths that could match), and for each, every dest node on the path
  // of key.dst_ip.
  std::uint32_t snode = 0;
  for (int sbit = 0; sbit <= 32 && snode != kNoNode; ++sbit) {
    const std::uint32_t droot = src_nodes_[snode].dst_root;
    if (droot != kNoNode) {
      std::uint32_t dnode = droot;
      for (int dbit = 0; dbit <= 32 && dnode != kNoNode; ++dbit) {
        for (std::uint32_t idx : dst_nodes_[dnode].rule_indices) {
          if (idx >= best) break;  // indices are sorted; no improvement left
          if (rules_[idx].matches(key)) {
            best = idx;
            break;
          }
        }
        if (dbit == 32) break;
        const std::uint32_t b = (key.dst_ip.value() >> (31 - dbit)) & 1;
        dnode = dst_nodes_[dnode].child[b];
      }
    }
    if (sbit == 32) break;
    const std::uint32_t b = (key.src_ip.value() >> (31 - sbit)) & 1;
    snode = src_nodes_[snode].child[b];
  }
  return best == kNoNode ? nullptr : &rules_[best];
}

std::size_t HierarchicalTrieClassifier::node_count() const {
  return src_nodes_.size() + dst_nodes_.size();
}

// --- TupleSpaceClassifier ---------------------------------------------------

void TupleSpaceClassifier::add_rule(Rule rule) {
  require_not_built(built_, "TupleSpaceClassifier");
  rules_.push_back(std::move(rule));
}

void TupleSpaceClassifier::build() {
  sort_by_priority(rules_);
  tuples_.clear();
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    auto it = std::find_if(tuples_.begin(), tuples_.end(),
                           [&](const Tuple& t) {
                             return t.src_len == rule.src.length() &&
                                    t.dst_len == rule.dst.length();
                           });
    if (it == tuples_.end()) {
      tuples_.push_back(Tuple{rule.src.length(), rule.dst.length(), {}});
      it = tuples_.end() - 1;
    }
    it->buckets[bucket_key(rule.src.base().value(),
                           rule.dst.base().value())]
        .push_back(i);
  }
  for (Tuple& tuple : tuples_) {
    for (auto* entry : util::sorted_items(tuple.buckets)) {
      std::sort(entry->second.begin(), entry->second.end());
    }
  }
  built_ = true;
}

const Rule* TupleSpaceClassifier::match(const FlowKey& key) const {
  require_built(built_, "TupleSpaceClassifier");
  std::uint32_t best = UINT32_MAX;
  for (const Tuple& tuple : tuples_) {
    const std::uint32_t smask =
        tuple.src_len == 0 ? 0 : ~std::uint32_t{0} << (32 - tuple.src_len);
    const std::uint32_t dmask =
        tuple.dst_len == 0 ? 0 : ~std::uint32_t{0} << (32 - tuple.dst_len);
    const auto it = tuple.buckets.find(
        bucket_key(key.src_ip.value() & smask, key.dst_ip.value() & dmask));
    if (it == tuple.buckets.end()) continue;
    for (std::uint32_t idx : it->second) {
      if (idx >= best) break;
      if (rules_[idx].matches(key)) {
        best = idx;
        break;
      }
    }
  }
  return best == UINT32_MAX ? nullptr : &rules_[best];
}

std::vector<std::unique_ptr<Classifier>> make_all_classifiers() {
  std::vector<std::unique_ptr<Classifier>> out;
  out.push_back(std::make_unique<LinearClassifier>());
  out.push_back(std::make_unique<HierarchicalTrieClassifier>());
  out.push_back(std::make_unique<TupleSpaceClassifier>());
  return out;
}

}  // namespace syndog::classify
