#include "syndog/classify/instrument.hpp"

#include <stdexcept>
#include <string>

namespace syndog::classify {

std::string_view segment_metric_name(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kSyn:
      return "syn";
    case SegmentKind::kSynAck:
      return "syn_ack";
    case SegmentKind::kFin:
      return "fin";
    case SegmentKind::kRst:
      return "rst";
    case SegmentKind::kPureAck:
      return "ack";
    case SegmentKind::kData:
      return "data";
    case SegmentKind::kNotTcp:
      return "not_tcp";
  }
  return "unknown";
}

SegmentMetrics::SegmentMetrics(obs::Registry& registry,
                               std::string_view prefix,
                               obs::EventTracer* tracer,
                               std::uint64_t sample_every)
    : tracer_(tracer), sample_every_(sample_every) {
  if (sample_every_ == 0) {
    throw std::invalid_argument("SegmentMetrics: sample_every must be > 0");
  }
  for (std::size_t i = 0; i < kSegmentKindCount; ++i) {
    const std::string name =
        std::string(prefix) + "." +
        std::string(segment_metric_name(static_cast<SegmentKind>(i)));
    counters_[i] = &registry.counter(name);
  }
}

}  // namespace syndog::classify
