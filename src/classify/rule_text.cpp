#include "syndog/classify/rule_text.hpp"

#include <charconv>
#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::classify {

namespace {

[[noreturn]] void bad(std::string_view line, const std::string& why) {
  throw std::invalid_argument("rule '" + std::string(line) + "': " + why);
}

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> out;
  for (const std::string& piece : util::split(line, ' ')) {
    const std::string_view token = util::trim(piece);
    if (!token.empty()) out.emplace_back(token);
  }
  return out;
}

Action parse_action(std::string_view text, std::string_view line) {
  if (util::iequals(text, "permit")) return Action::kPermit;
  if (util::iequals(text, "deny")) return Action::kDeny;
  if (util::iequals(text, "count-syn")) return Action::kCountSyn;
  if (util::iequals(text, "count-synack")) return Action::kCountSynAck;
  if (util::iequals(text, "mirror")) return Action::kMirror;
  bad(line, "unknown action '" + std::string(text) + "'");
}

std::string_view action_name(Action action) {
  switch (action) {
    case Action::kPermit:
      return "permit";
    case Action::kDeny:
      return "deny";
    case Action::kCountSyn:
      return "count-syn";
    case Action::kCountSynAck:
      return "count-synack";
    case Action::kMirror:
      return "mirror";
  }
  return "?";
}

PortRange parse_ports(std::string_view text, std::string_view line) {
  const std::size_t dash = text.find('-');
  const auto parse_port = [&](std::string_view part) -> std::uint16_t {
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || ptr != part.data() + part.size() ||
        value > 65535) {
      bad(line, "bad port '" + std::string(part) + "'");
    }
    return static_cast<std::uint16_t>(value);
  };
  if (dash == std::string_view::npos) {
    return PortRange::exactly(parse_port(text));
  }
  const PortRange range{parse_port(text.substr(0, dash)),
                        parse_port(text.substr(dash + 1))};
  if (range.lo > range.hi) bad(line, "inverted port range");
  return range;
}

void parse_flags(std::string_view text, Rule& rule, std::string_view line) {
  using F = net::TcpFlags;
  if (util::iequals(text, "syn")) {
    rule.flag_mask = F::kSyn | F::kAck;
    rule.flag_value = F::kSyn;
    return;
  }
  if (util::iequals(text, "syn-ack")) {
    rule.flag_mask = F::kSyn | F::kAck;
    rule.flag_value = F::kSyn | F::kAck;
    return;
  }
  if (util::iequals(text, "ack")) {
    rule.flag_mask = F::kAck;
    rule.flag_value = F::kAck;
    return;
  }
  if (util::iequals(text, "rst")) {
    rule.flag_mask = F::kRst;
    rule.flag_value = F::kRst;
    return;
  }
  if (util::iequals(text, "fin")) {
    rule.flag_mask = F::kFin;
    rule.flag_value = F::kFin;
    return;
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    bad(line, "bad flags '" + std::string(text) +
                  "' (syn|syn-ack|ack|rst|fin|MASK:VALUE)");
  }
  const auto parse_hex = [&](std::string_view part) -> std::uint8_t {
    if (util::starts_with(part, "0x") || util::starts_with(part, "0X")) {
      part.remove_prefix(2);
    }
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(
        part.data(), part.data() + part.size(), value, 16);
    if (ec != std::errc{} || ptr != part.data() + part.size() ||
        value > 0x3f) {
      bad(line, "bad flag byte '" + std::string(part) + "'");
    }
    return static_cast<std::uint8_t>(value);
  };
  rule.flag_mask = parse_hex(text.substr(0, colon));
  rule.flag_value = parse_hex(text.substr(colon + 1));
  if ((rule.flag_value & ~rule.flag_mask) != 0) {
    bad(line, "flag value has bits outside the mask");
  }
}

}  // namespace

Rule parse_rule_line(std::string_view line) {
  const std::vector<std::string> tokens = tokens_of(line);
  if (tokens.empty()) bad(line, "empty rule");

  Rule rule;
  rule.action = parse_action(tokens[0], line);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad(line, "expected key=value, got '" + std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (util::iequals(key, "priority")) {
      unsigned prio = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), prio);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        bad(line, "bad priority");
      }
      rule.priority = prio;
    } else if (util::iequals(key, "proto")) {
      if (util::iequals(value, "tcp")) {
        rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);
      } else if (util::iequals(value, "udp")) {
        rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kUdp);
      } else if (util::iequals(value, "icmp")) {
        rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kIcmp);
      } else {
        bad(line, "bad proto '" + std::string(value) + "'");
      }
    } else if (util::iequals(key, "src") || util::iequals(key, "dst")) {
      const auto prefix = net::Ipv4Prefix::parse(value);
      if (!prefix) bad(line, "bad prefix '" + std::string(value) + "'");
      (util::iequals(key, "src") ? rule.src : rule.dst) = *prefix;
    } else if (util::iequals(key, "sport")) {
      rule.src_ports = parse_ports(value, line);
    } else if (util::iequals(key, "dport")) {
      rule.dst_ports = parse_ports(value, line);
    } else if (util::iequals(key, "flags")) {
      parse_flags(value, rule, line);
      // Flag rules are only meaningful for TCP; constrain implicitly.
      if (!rule.protocol) {
        rule.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);
      }
    } else if (util::iequals(key, "name")) {
      rule.name = std::string(value);
    } else {
      bad(line, "unknown key '" + std::string(key) + "'");
    }
  }
  return rule;
}

std::vector<Rule> parse_rules(std::string_view text) {
  std::vector<Rule> rules;
  std::size_t line_no = 0;
  for (const std::string& raw : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = util::trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    try {
      rules.push_back(parse_rule_line(line));
    } catch (const std::invalid_argument& ex) {
      throw std::invalid_argument("line " + std::to_string(line_no) + ": " +
                                  ex.what());
    }
  }
  return rules;
}

std::string format_rule(const Rule& rule) {
  std::string out{action_name(rule.action)};
  out += " priority=" + std::to_string(rule.priority);
  if (rule.protocol) {
    switch (static_cast<net::IpProtocol>(*rule.protocol)) {
      case net::IpProtocol::kTcp:
        out += " proto=tcp";
        break;
      case net::IpProtocol::kUdp:
        out += " proto=udp";
        break;
      case net::IpProtocol::kIcmp:
        out += " proto=icmp";
        break;
    }
  }
  if (rule.src.length() > 0) out += " src=" + rule.src.to_string();
  if (rule.dst.length() > 0) out += " dst=" + rule.dst.to_string();
  if (!rule.src_ports.is_wildcard()) {
    out += " sport=" + std::to_string(rule.src_ports.lo);
    if (rule.src_ports.hi != rule.src_ports.lo) {
      out += "-" + std::to_string(rule.src_ports.hi);
    }
  }
  if (!rule.dst_ports.is_wildcard()) {
    out += " dport=" + std::to_string(rule.dst_ports.lo);
    if (rule.dst_ports.hi != rule.dst_ports.lo) {
      out += "-" + std::to_string(rule.dst_ports.hi);
    }
  }
  if (rule.flag_mask != 0) {
    out += util::strprintf(" flags=0x%02x:0x%02x", rule.flag_mask,
                           rule.flag_value);
  }
  if (!rule.name.empty()) out += " name=" + rule.name;
  return out;
}

}  // namespace syndog::classify
