#include "syndog/attack/flood.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::attack {

std::string_view to_string(FloodShape shape) {
  switch (shape) {
    case FloodShape::kConstant:
      return "constant";
    case FloodShape::kOnOff:
      return "on-off";
    case FloodShape::kRamp:
      return "ramp";
  }
  return "?";
}

void FloodSpec::validate() const {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("FloodSpec: rate must be positive");
  }
  if (start < util::SimTime::zero() || duration <= util::SimTime::zero()) {
    throw std::invalid_argument("FloodSpec: bad start/duration");
  }
  if (shape == FloodShape::kOnOff) {
    if (on_off_period <= util::SimTime::zero() ||
        !(duty_cycle > 0.0 && duty_cycle <= 1.0)) {
      throw std::invalid_argument("FloodSpec: bad on/off parameters");
    }
  }
}

std::vector<util::SimTime> generate_flood_times(const FloodSpec& spec,
                                                util::Rng& rng) {
  spec.validate();
  std::vector<util::SimTime> out;
  const double start = spec.start.to_seconds();
  const double end = start + spec.duration.to_seconds();
  out.reserve(static_cast<std::size_t>(spec.rate *
                                       spec.duration.to_seconds() * 1.1) +
              16);

  switch (spec.shape) {
    case FloodShape::kConstant: {
      double t = start;
      while (true) {
        t += rng.exponential_mean(1.0 / spec.rate);
        if (t >= end) break;
        out.push_back(util::SimTime::from_seconds(t));
      }
      break;
    }
    case FloodShape::kOnOff: {
      const double period = spec.on_off_period.to_seconds();
      const double on_len = period * spec.duty_cycle;
      const double on_rate = spec.rate / spec.duty_cycle;
      for (double cycle = start; cycle < end; cycle += period) {
        const double on_end = std::min(end, cycle + on_len);
        double t = cycle;
        while (true) {
          t += rng.exponential_mean(1.0 / on_rate);
          if (t >= on_end) break;
          out.push_back(util::SimTime::from_seconds(t));
        }
      }
      break;
    }
    case FloodShape::kRamp: {
      // Rate lambda(t) = 2*rate*(t-start)/duration; generate by thinning
      // against the peak rate 2*rate.
      const double peak = 2.0 * spec.rate;
      const double dur = spec.duration.to_seconds();
      double t = start;
      while (true) {
        t += rng.exponential_mean(1.0 / peak);
        if (t >= end) break;
        const double accept = (t - start) / dur;
        if (rng.uniform() < accept) {
          out.push_back(util::SimTime::from_seconds(t));
        }
      }
      break;
    }
  }
  return out;
}

double expected_flood_syns(const FloodSpec& spec) {
  spec.validate();
  return spec.rate * spec.duration.to_seconds();
}

}  // namespace syndog::attack
