// Distributed-campaign model (paper §4.2 and §4.2.3).
//
// A master instructs slaves in many stub networks to flood one victim.
// With aggregate rate V spread evenly over A_s stubs (one slave each), the
// rate each SYN-dog sees is f_i = V / A_s — the attacker's best strategy
// for hiding from leaf-router detection. These helpers compute both sides
// of that trade-off: the per-stub rate of a campaign, and the maximum
// number of stubs an attacker can spread over before dropping below a
// site's detection floor f_min.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "syndog/attack/flood.hpp"

namespace syndog::attack {

/// Flood volumes the paper cites [8]: minimum aggregate SYN rate to
/// overwhelm a server.
inline constexpr double kUnprotectedServerRate = 500.0;    ///< SYN/s
inline constexpr double kFirewalledServerRate = 14000.0;   ///< SYN/s

struct CampaignSpec {
  double aggregate_rate = kFirewalledServerRate;  ///< V, SYN/s at victim
  std::int64_t stub_networks = 100;               ///< A_s, one slave each
  FloodShape shape = FloodShape::kConstant;
  util::SimTime start = util::SimTime::minutes(5);
  util::SimTime duration = util::SimTime::minutes(10);

  void validate() const;

  /// Rate seen by each stub's outbound sniffer: f_i = V / A_s.
  [[nodiscard]] double per_stub_rate() const;
  /// Flood spec as observed at one participating stub.
  [[nodiscard]] FloodSpec stub_flood() const;
};

/// Maximum number of stub networks the attacker can spread over while the
/// aggregate still reaches `aggregate_rate` and each stub's share stays at
/// or above `f_min` (i.e. remains detectable): floor(V / f_min).
[[nodiscard]] std::int64_t max_hiding_stubs(double aggregate_rate,
                                            double f_min);

/// A named slave inside one stub network, for localization scenarios.
struct Slave {
  std::uint32_t host_index = 0;  ///< stub host running the attack daemon
  std::string tool = "tfn2k";
};

/// The campaign as a whole: which stubs participate and with which slaves.
/// `slaves_in_stub(i)` is deterministic in the seed so experiments
/// reproduce.
class Campaign {
 public:
  Campaign(CampaignSpec spec, std::uint64_t seed);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  /// Host indices of the compromised machines in stub `stub_index`
  /// (paper's evaluation: exactly one slave per stub).
  [[nodiscard]] std::vector<Slave> slaves_in_stub(
      std::int64_t stub_index) const;
  /// Flood SYN emission times inside stub `stub_index`.
  [[nodiscard]] std::vector<util::SimTime> flood_times_in_stub(
      std::int64_t stub_index) const;

 private:
  CampaignSpec spec_;
  std::uint64_t seed_;
};

}  // namespace syndog::attack
