// SYN-flood traffic generation.
//
// Models the flooding behaviour of the DDoS tools the paper surveys (TFN,
// TFN2K, Trinity, Plague, Shaft): a slave continuously emits spoofed SYNs
// toward the victim. The paper argues detection sensitivity depends only
// on total flood volume, not the emission pattern; the shapes below let
// the ablation bench verify that.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::attack {

enum class FloodShape : std::uint8_t {
  kConstant,  ///< Poisson emission at a fixed mean rate
  kOnOff,     ///< square-wave bursts: full rate while ON, silent while OFF
  kRamp,      ///< rate grows linearly from 0 to 2x the mean over the flood
};

[[nodiscard]] std::string_view to_string(FloodShape shape);

struct FloodSpec {
  /// Mean SYN rate seen by the outbound sniffer, f_i (SYN/s). The paper's
  /// evaluation sweeps exactly this.
  double rate = 45.0;
  util::SimTime start = util::SimTime::minutes(5);
  util::SimTime duration = util::SimTime::minutes(10);  ///< paper: 10 min
  FloodShape shape = FloodShape::kConstant;
  /// ON/OFF shape: burst period and duty cycle; the ON-rate is scaled to
  /// rate/duty so the mean stays `rate`.
  util::SimTime on_off_period = util::SimTime::seconds(10);
  double duty_cycle = 0.5;

  void validate() const;
};

/// Emission times of every flood SYN, ascending, within
/// [start, start+duration).
[[nodiscard]] std::vector<util::SimTime> generate_flood_times(
    const FloodSpec& spec, util::Rng& rng);

/// Expected SYN count (mean) over the whole flood.
[[nodiscard]] double expected_flood_syns(const FloodSpec& spec);

}  // namespace syndog::attack
