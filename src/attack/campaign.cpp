#include "syndog/attack/campaign.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::attack {

void CampaignSpec::validate() const {
  if (!(aggregate_rate > 0.0)) {
    throw std::invalid_argument("CampaignSpec: aggregate_rate must be > 0");
  }
  if (stub_networks <= 0) {
    throw std::invalid_argument("CampaignSpec: stub_networks must be > 0");
  }
  if (duration <= util::SimTime::zero()) {
    throw std::invalid_argument("CampaignSpec: duration must be positive");
  }
}

double CampaignSpec::per_stub_rate() const {
  validate();
  return aggregate_rate / static_cast<double>(stub_networks);
}

FloodSpec CampaignSpec::stub_flood() const {
  FloodSpec flood;
  flood.rate = per_stub_rate();
  flood.start = start;
  flood.duration = duration;
  flood.shape = shape;
  return flood;
}

std::int64_t max_hiding_stubs(double aggregate_rate, double f_min) {
  if (!(aggregate_rate > 0.0) || !(f_min > 0.0)) {
    throw std::invalid_argument("max_hiding_stubs: rates must be positive");
  }
  return static_cast<std::int64_t>(std::floor(aggregate_rate / f_min));
}

Campaign::Campaign(CampaignSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  spec_.validate();
}

std::vector<Slave> Campaign::slaves_in_stub(std::int64_t stub_index) const {
  if (stub_index < 0 || stub_index >= spec_.stub_networks) {
    throw std::out_of_range("Campaign: stub_index out of range");
  }
  // One slave per stub (the paper's evaluation setting); the compromised
  // host is a deterministic pseudo-random pick inside the stub.
  util::Rng rng = util::Rng::child(seed_,
                                   static_cast<std::uint64_t>(stub_index));
  Slave slave;
  slave.host_index = static_cast<std::uint32_t>(rng.uniform_int(1, 250));
  return {slave};
}

std::vector<util::SimTime> Campaign::flood_times_in_stub(
    std::int64_t stub_index) const {
  if (stub_index < 0 || stub_index >= spec_.stub_networks) {
    throw std::out_of_range("Campaign: stub_index out of range");
  }
  util::Rng rng = util::Rng::child(
      seed_ ^ 0x5371b5u, static_cast<std::uint64_t>(stub_index));
  return generate_flood_times(spec_.stub_flood(), rng);
}

}  // namespace syndog::attack
