#include "syndog/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "syndog/obs/json.hpp"

namespace syndog::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.bounds() != upper_bounds) {
      throw std::invalid_argument("Registry: histogram '" +
                                  std::string(name) +
                                  "' re-registered with different bounds");
    }
    return it->second;
  }
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h.bounds(), h.bucket_counts(), h.count(), h.sum()});
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSample& c : counters) {
    if (!first) out.push_back(',');
    first = false;
    out += json_string(c.name) + ":" + json_number(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    out += json_string(g.name) + ":" + json_number(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += json_string(h.name) + ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out.push_back(',');
      out += json_number(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out.push_back(',');
      out += json_number(h.counts[i]);
    }
    out += "],\"count\":" + json_number(h.count) +
           ",\"sum\":" + json_number(h.sum) + "}";
  }
  out += "}}";
  return out;
}

void MetricsSnapshot::for_each_scalar(
    const std::function<void(std::string_view, double)>& fn) const {
  std::string scratch;
  const auto emit = [&](const char* family, const std::string& name,
                        const char* suffix, double value) {
    scratch.assign(family);
    scratch += name;
    scratch += suffix;
    fn(scratch, value);
  };
  for (const CounterSample& c : counters) {
    emit("counter.", c.name, "", static_cast<double>(c.value));
  }
  for (const GaugeSample& g : gauges) {
    emit("gauge.", g.name, "", g.value);
  }
  for (const HistogramSample& h : histograms) {
    emit("histogram.", h.name, ".count", static_cast<double>(h.count));
    emit("histogram.", h.name, ".sum", h.sum);
  }
}

}  // namespace syndog::obs
