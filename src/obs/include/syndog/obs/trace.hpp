// Sim-clock event tracer.
//
// A bounded ring buffer of typed events, timestamped with the DES clock
// (util::SimTime) — never wall clock — so identical seeds produce
// byte-identical event exports (export.hpp renders them as JSONL). The
// ring keeps the most recent `capacity` events; overflow evicts the oldest
// and is counted, never silent.
//
// Recording is O(1) with no allocation after construction, cheap enough
// to leave enabled inside the detector and simulator hot paths.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "syndog/util/time.hpp"

namespace syndog::obs {

/// One observation period closed: the raw counter exchange (paper Fig. 2).
struct PeriodRollover {
  std::int64_t period = 0;
  std::int64_t syn = 0;
  std::int64_t syn_ack = 0;
};

/// One CUSUM derivation (paper Eqs. 1-4): Δn, K(n), Xn, yn.
struct CusumUpdate {
  std::int64_t period = 0;
  double delta = 0.0;
  double k = 0.0;
  double x = 0.0;
  double y = 0.0;
};

/// yn crossed the flooding threshold N upward.
struct AlarmRaised {
  std::int64_t period = 0;
  double y = 0.0;
  double threshold = 0.0;
};

/// The statistic fell back below N after an alarm.
struct AlarmCleared {
  std::int64_t period = 0;
  double y = 0.0;
};

/// One generic change-detector step (detect::run_trial): input x,
/// post-update statistic, alarm flag. Used by the GLR/Shiryaev/ARL
/// comparators, which do not share the CUSUM's {Δ,K} decomposition.
struct DetectorStep {
  std::int64_t index = 0;
  double x = 0.0;
  double statistic = 0.0;
  bool alarm = false;
};

/// A packet classifier decision (classify::SegmentKind as integer;
/// recorded sampled, not per packet — the counters carry exact totals).
struct ClassifierHit {
  std::uint8_t segment_kind = 0;
  std::uint64_t total_seen = 0;
};

/// Periodic scheduler health sample.
struct QueueDepth {
  std::uint64_t pending = 0;
  std::uint64_t executed = 0;
};

/// A fault-injection activation edge (fault::FaultKind / FaultTarget as
/// integers; the fault layer records one event when a fault turns on and
/// one when it turns off).
struct FaultEdge {
  std::uint8_t kind = 0;
  std::uint8_t target = 0;
  bool active = false;
};

/// A SynDogAgent health-state transition (core::AgentHealth as integer):
/// healthy <-> degraded <-> blind, plus the reason code the agent assigns
/// (core::HealthReason).
struct HealthTransition {
  std::uint8_t from = 0;
  std::uint8_t to = 0;
  std::uint8_t reason = 0;
  std::int64_t period = 0;
};

/// A mitigation stage transition for one policed source
/// (mitigate::Stage / mitigate::EdgeReason as integers; target is the
/// station MAC packed into the low 48 bits).
struct MitigationEdge {
  std::uint64_t target = 0;
  std::uint8_t from = 0;
  std::uint8_t to = 0;
  std::uint8_t reason = 0;
};

using EventPayload =
    std::variant<PeriodRollover, CusumUpdate, AlarmRaised, AlarmCleared,
                 DetectorStep, ClassifierHit, QueueDepth, FaultEdge,
                 HealthTransition, MitigationEdge>;

struct Event {
  util::SimTime at;       ///< DES clock, never wall clock
  std::uint64_t seq = 0;  ///< monotonic record index (survives eviction)
  EventPayload payload;
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 4096);

  void record(util::SimTime at, EventPayload payload);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events evicted by overflow (recorded() - size()).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Visits retained events oldest-first.
  void for_each(const std::function<void(const Event&)>& fn) const;
  /// Copies retained events oldest-first.
  [[nodiscard]] std::vector<Event> events() const;

  void clear();

 private:
  std::vector<Event> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace syndog::obs
