// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry is the accumulation side of the telemetry layer (the event
// tracer in trace.hpp is the sequencing side). Instruments are created once
// by name and then updated through stable references, so the hot paths the
// paper's "low computation overhead" claim covers (classifier, sniffers,
// CUSUM update) pay one integer add per observation — no lookup, no lock,
// no allocation.
//
// Snapshots are stable-ordered (sorted by name) and render to JSON with
// deterministic number formatting, so two identical runs produce identical
// exports — the same reproducibility contract as the rest of the tree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace syndog::obs {

/// Monotonically increasing integer (events, packets, alarms).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar (queue depth, current K estimate).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= bounds[i] (first matching bucket); one implicit overflow
/// bucket collects everything above the last bound. Bounds are fixed at
/// registration so merging/exporting never rebins.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every instrument, sorted by name within each
/// family. The order is part of the export contract: identical registry
/// state renders to byte-identical JSON.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] std::string to_json() const;

  /// Flattens every instrument to (name, value) scalar pairs in the same
  /// stable order the JSON export uses: counters as "counter.<name>",
  /// gauges as "gauge.<name>", histograms as "histogram.<name>.count" /
  /// ".sum". This is the serialization seam the fleet telemetry sink
  /// (src/telemetry) ingests snapshots through — per-bucket counts are
  /// deliberately not flattened (bucket layouts belong to the JSON side).
  void for_each_scalar(
      const std::function<void(std::string_view, double)>& fn) const;
};

/// Owns instruments by name. References returned by the getters are stable
/// for the registry's lifetime (node-based storage), so callers cache them
/// once and update them on the hot path.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Creates the instrument on first use; later calls return the same one.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `upper_bounds` is used on first registration only; a later call with
  /// different bounds throws std::invalid_argument (silent rebinning would
  /// corrupt the export).
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace syndog::obs
