// The repository's single wall-clock seam.
//
// Everything in the tree is deterministic from seeds; wall time exists only
// to *measure* the implementation (the paper's "low computation overhead"
// claim), never to drive it. All wall-clock reads go through WallClock so
// the linter can forbid std::chrono clock reads everywhere else
// (determinism.wall_clock in tools/lint/syndog_lint.py), and tests swap in
// ManualWallClock to make timing code itself deterministic.
//
// Wall-clock readings may feed metrics (perf histograms in a Registry) but
// must never be recorded into an EventTracer: event exports are part of the
// byte-identical-replay contract.
#pragma once

#include <cstdint>

#include "syndog/obs/metrics.hpp"

namespace syndog::obs {

class WallClock {
 public:
  virtual ~WallClock() = default;
  /// Monotonic nanoseconds; only deltas are meaningful.
  [[nodiscard]] virtual std::int64_t now_ns() const;
};

/// Test double: time advances only when told to.
class ManualWallClock final : public WallClock {
 public:
  [[nodiscard]] std::int64_t now_ns() const override { return now_ns_; }
  void advance_ns(std::int64_t delta) { now_ns_ += delta; }
  void set_ns(std::int64_t now) { now_ns_ = now; }

 private:
  std::int64_t now_ns_ = 0;
};

/// Records the elapsed wall time of a scope into a latency histogram.
/// Usage on a hot path:
///   Histogram& h = registry.histogram("classify.frame_ns", kLatencyBuckets);
///   { ScopedTimer t(clock, h);  classify_frame_fast(frame); }
class ScopedTimer {
 public:
  ScopedTimer(const WallClock& clock, Histogram& sink)
      : clock_(clock), sink_(sink), start_ns_(clock.now_ns()) {}
  ~ScopedTimer() {
    sink_.observe(static_cast<double>(clock_.now_ns() - start_ns_));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const WallClock& clock_;
  Histogram& sink_;
  std::int64_t start_ns_;
};

/// Default bucket bounds (ns) for hot-path latency histograms: 16 ns to
/// ~1 ms in powers of four, covering a line-rate classifier decision up to
/// a full period rollover.
[[nodiscard]] std::vector<double> latency_buckets_ns();

}  // namespace syndog::obs
