// Deterministic JSON fragment helpers shared by the exporters.
//
// Numbers are rendered with shortest-round-trip formatting so the same
// double always produces the same bytes on the same platform — the
// byte-identical-export contract rests on this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace syndog::obs {

/// Shortest decimal form that round-trips the double ("0.049", "2114",
/// "1e-09"). NaN/inf are not valid JSON and render as null.
[[nodiscard]] std::string json_number(double v);
[[nodiscard]] std::string json_number(std::int64_t v);
[[nodiscard]] std::string json_number(std::uint64_t v);

/// Quotes and escapes a string for embedding in JSON output.
[[nodiscard]] std::string json_string(std::string_view s);

}  // namespace syndog::obs
