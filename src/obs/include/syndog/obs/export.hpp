// Exporters: JSONL event streams and CSV period series.
//
// Formats are documented in docs/OBSERVABILITY.md. Rendering is fully
// deterministic (stable field order, shortest-round-trip numbers), so two
// runs from the same seed produce byte-identical output — tests assert
// exactly that.
#pragma once

#include <string>

#include "syndog/obs/trace.hpp"

namespace syndog::obs {

/// One event as a single-line JSON object:
///   {"t_ns":<ns>,"seq":N,"type":"cusum_update","period":5,...}
[[nodiscard]] std::string event_to_json(const Event& event);

/// Retained events, oldest-first, one JSON object per line.
[[nodiscard]] std::string to_jsonl(const EventTracer& tracer);

/// The per-period series implied by the trace, as CSV with header
///   period,t_s,syn,syn_ack,delta,k,x,y,alarm
/// built by joining PeriodRollover and CusumUpdate events on the period
/// index and marking periods covered by a raised alarm. Rows appear for
/// every period that has at least one of the two event kinds; missing
/// fields render empty. This is the figure-reproduction format (Figs. 5,
/// 7, 8): a run's dynamics replay from the export alone.
[[nodiscard]] std::string period_series_csv(const EventTracer& tracer);

/// Writes `content` to `path` (truncating); throws std::runtime_error on
/// I/O failure so a bench cannot silently emit nothing.
void write_file(const std::string& path, const std::string& content);

}  // namespace syndog::obs
