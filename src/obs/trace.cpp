#include "syndog/obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndog::obs {

EventTracer::EventTracer(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("EventTracer: capacity must be positive");
  }
}

void EventTracer::record(util::SimTime at, EventPayload payload) {
  Event& slot = ring_[recorded_ % ring_.size()];
  slot.at = at;
  slot.seq = recorded_;
  slot.payload = std::move(payload);
  ++recorded_;
}

std::size_t EventTracer::size() const {
  return std::min<std::uint64_t>(recorded_, ring_.size());
}

std::uint64_t EventTracer::dropped() const {
  return recorded_ - size();
}

void EventTracer::for_each(
    const std::function<void(const Event&)>& fn) const {
  const std::size_t n = size();
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = first; i < recorded_; ++i) {
    fn(ring_[i % ring_.size()]);
  }
}

std::vector<Event> EventTracer::events() const {
  std::vector<Event> out;
  out.reserve(size());
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

void EventTracer::clear() {
  recorded_ = 0;
}

}  // namespace syndog::obs
