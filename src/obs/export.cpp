#include "syndog/obs/export.hpp"

#include <cstdio>
#include <map>
#include <optional>
#include <stdexcept>

#include "syndog/obs/json.hpp"

namespace syndog::obs {

namespace {

struct PayloadJson {
  std::string operator()(const PeriodRollover& e) const {
    return std::string("\"type\":\"period_rollover\",\"period\":") +
           json_number(e.period) + ",\"syn\":" + json_number(e.syn) +
           ",\"syn_ack\":" + json_number(e.syn_ack);
  }
  std::string operator()(const CusumUpdate& e) const {
    return std::string("\"type\":\"cusum_update\",\"period\":") +
           json_number(e.period) + ",\"delta\":" + json_number(e.delta) +
           ",\"k\":" + json_number(e.k) + ",\"x\":" + json_number(e.x) +
           ",\"y\":" + json_number(e.y);
  }
  std::string operator()(const AlarmRaised& e) const {
    return std::string("\"type\":\"alarm_raised\",\"period\":") +
           json_number(e.period) + ",\"y\":" + json_number(e.y) +
           ",\"threshold\":" + json_number(e.threshold);
  }
  std::string operator()(const AlarmCleared& e) const {
    return std::string("\"type\":\"alarm_cleared\",\"period\":") +
           json_number(e.period) + ",\"y\":" + json_number(e.y);
  }
  std::string operator()(const DetectorStep& e) const {
    return std::string("\"type\":\"detector_step\",\"index\":") +
           json_number(e.index) + ",\"x\":" + json_number(e.x) +
           ",\"statistic\":" + json_number(e.statistic) +
           ",\"alarm\":" + (e.alarm ? "true" : "false");
  }
  std::string operator()(const ClassifierHit& e) const {
    return std::string("\"type\":\"classifier_hit\",\"segment_kind\":") +
           json_number(static_cast<std::uint64_t>(e.segment_kind)) +
           ",\"total_seen\":" + json_number(e.total_seen);
  }
  std::string operator()(const QueueDepth& e) const {
    return std::string("\"type\":\"queue_depth\",\"pending\":") +
           json_number(e.pending) +
           ",\"executed\":" + json_number(e.executed);
  }
  std::string operator()(const FaultEdge& e) const {
    return std::string("\"type\":\"fault_edge\",\"kind\":") +
           json_number(static_cast<std::uint64_t>(e.kind)) + ",\"target\":" +
           json_number(static_cast<std::uint64_t>(e.target)) +
           ",\"active\":" + (e.active ? "true" : "false");
  }
  std::string operator()(const HealthTransition& e) const {
    return std::string("\"type\":\"health_transition\",\"from\":") +
           json_number(static_cast<std::uint64_t>(e.from)) + ",\"to\":" +
           json_number(static_cast<std::uint64_t>(e.to)) + ",\"reason\":" +
           json_number(static_cast<std::uint64_t>(e.reason)) +
           ",\"period\":" + json_number(e.period);
  }
  std::string operator()(const MitigationEdge& e) const {
    return std::string("\"type\":\"mitigation_edge\",\"target\":") +
           json_number(e.target) + ",\"from\":" +
           json_number(static_cast<std::uint64_t>(e.from)) + ",\"to\":" +
           json_number(static_cast<std::uint64_t>(e.to)) + ",\"reason\":" +
           json_number(static_cast<std::uint64_t>(e.reason));
  }
};

}  // namespace

std::string event_to_json(const Event& event) {
  std::string out = "{\"t_ns\":" + json_number(event.at.ns()) +
                    ",\"seq\":" + json_number(event.seq) + ",";
  out += std::visit(PayloadJson{}, event.payload);
  out.push_back('}');
  return out;
}

std::string to_jsonl(const EventTracer& tracer) {
  std::string out;
  tracer.for_each([&out](const Event& e) {
    out += event_to_json(e);
    out.push_back('\n');
  });
  return out;
}

std::string period_series_csv(const EventTracer& tracer) {
  struct Row {
    std::optional<util::SimTime> at;
    std::optional<std::int64_t> syn;
    std::optional<std::int64_t> syn_ack;
    std::optional<CusumUpdate> cusum;
    int alarm_edge = 0;  ///< +1 raised this period, -1 cleared, 0 none
  };
  std::map<std::int64_t, Row> rows;

  tracer.for_each([&rows](const Event& e) {
    if (const auto* p = std::get_if<PeriodRollover>(&e.payload)) {
      Row& row = rows[p->period];
      row.at = row.at.value_or(e.at);
      row.syn = p->syn;
      row.syn_ack = p->syn_ack;
    } else if (const auto* c = std::get_if<CusumUpdate>(&e.payload)) {
      Row& row = rows[c->period];
      row.at = e.at;
      row.cusum = *c;
    } else if (const auto* a = std::get_if<AlarmRaised>(&e.payload)) {
      rows[a->period].alarm_edge = 1;
    } else if (const auto* a2 = std::get_if<AlarmCleared>(&e.payload)) {
      rows[a2->period].alarm_edge = -1;
    }
  });

  std::string out = "period,t_s,syn,syn_ack,delta,k,x,y,alarm\n";
  bool alarm = false;
  for (const auto& [period, row] : rows) {
    if (row.alarm_edge != 0) alarm = row.alarm_edge > 0;
    out += json_number(period);
    out.push_back(',');
    if (row.at) out += json_number(row.at->to_seconds());
    out.push_back(',');
    if (row.syn) out += json_number(*row.syn);
    out.push_back(',');
    if (row.syn_ack) out += json_number(*row.syn_ack);
    out.push_back(',');
    if (row.cusum) out += json_number(row.cusum->delta);
    out.push_back(',');
    if (row.cusum) out += json_number(row.cusum->k);
    out.push_back(',');
    if (row.cusum) out += json_number(row.cusum->x);
    out.push_back(',');
    if (row.cusum) out += json_number(row.cusum->y);
    out.push_back(',');
    out += alarm ? "1" : "0";
    out.push_back('\n');
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("obs::write_file: cannot open " + path);
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    throw std::runtime_error("obs::write_file: short write to " + path);
  }
}

}  // namespace syndog::obs
