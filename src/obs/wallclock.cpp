#include "syndog/obs/wallclock.hpp"

#include <chrono>

namespace syndog::obs {

std::int64_t WallClock::now_ns() const {
  // The one sanctioned wall-clock read outside src/util (see
  // determinism.wall_clock in tools/lint/syndog_lint.py).
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<double> latency_buckets_ns() {
  std::vector<double> bounds;
  for (double b = 16.0; b <= 1.1e6; b *= 4.0) bounds.push_back(b);
  return bounds;
}

}  // namespace syndog::obs
