#include "syndog/obs/json.hpp"

#include <charconv>
#include <cmath>

namespace syndog::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // std::to_chars with no precision emits the shortest representation that
  // round-trips, which is deterministic for a given value — unlike printf
  // "%g", it never depends on locale and never pads.
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

std::string json_number(std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace syndog::obs
