#include "syndog/core/fleet.hpp"

#include <stdexcept>
#include <utility>

namespace syndog::core {

FleetRecorder::FleetRecorder(telemetry::TelemetrySink& sink)
    : FleetRecorder(sink, Cadence{}) {}

FleetRecorder::FleetRecorder(telemetry::TelemetrySink& sink, Cadence cadence)
    : sink_(sink), cadence_(cadence) {
  if (cadence_.heartbeat_periods <= 0) {
    throw std::invalid_argument(
        "FleetRecorder: heartbeat_periods must be positive");
  }
}

std::size_t FleetRecorder::new_slot(std::string_view name,
                                    std::uint32_t as_number,
                                    std::unique_ptr<SynDog> dog) {
  const std::uint32_t agent = sink_.register_agent(name, as_number);
  Slot slot;
  slot.dog = std::move(dog);
  slot.s_syn = sink_.series_id(agent, sink_.metric_id(kFleetMetricSyn));
  slot.s_syn_ack =
      sink_.series_id(agent, sink_.metric_id(kFleetMetricSynAck));
  slot.s_k = sink_.series_id(agent, sink_.metric_id(kFleetMetricK));
  slot.s_y = sink_.series_id(agent, sink_.metric_id(kFleetMetricY));
  slot.s_alarm = sink_.series_id(agent, sink_.metric_id(kFleetMetricAlarm));
  slot.s_health = sink_.series_id(agent, sink_.metric_id(kFleetMetricHealth));
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

std::size_t FleetRecorder::add_agent(std::string_view name,
                                     std::uint32_t as_number,
                                     const SynDogParams& params) {
  return new_slot(name, as_number, std::make_unique<SynDog>(params));
}

std::size_t FleetRecorder::attach(SynDogAgent& agent, std::string_view name,
                                  std::uint32_t as_number) {
  const std::size_t slot = new_slot(name, as_number, nullptr);
  agent.add_period_callback(
      [this, slot](const PeriodReport& report, AgentHealth health,
                   util::SimTime at) {
        record(slots_[slot], report, static_cast<double>(health), at);
      });
  return slot;
}

PeriodReport FleetRecorder::observe(std::size_t slot, std::int64_t syn,
                                    std::int64_t syn_ack, util::SimTime at) {
  Slot& s = slots_.at(slot);
  if (s.dog == nullptr) {
    throw std::logic_error("FleetRecorder: observe() on an attach() slot");
  }
  const PeriodReport report = s.dog->observe_period(syn, syn_ack);
  record(s, report, 0.0, at);
  return report;
}

const SynDog& FleetRecorder::detector(std::size_t slot) const {
  const Slot& s = slots_.at(slot);
  if (s.dog == nullptr) {
    throw std::logic_error("FleetRecorder: attach() slots keep their "
                           "detector inside the SynDogAgent");
  }
  return *s.dog;
}

void FleetRecorder::record(Slot& slot, const PeriodReport& report,
                           double health, util::SimTime at) {
  const bool heartbeat =
      slot.fed_periods % cadence_.heartbeat_periods == 0;
  ++slot.fed_periods;
  const bool alarm_edge = report.alarm != slot.alarm_state;
  const bool health_edge = health != slot.health_state;
  // Edges force a full sample set so the surrounding context (counts, K,
  // y) is always on file for the periods that matter.
  if (heartbeat || alarm_edge || health_edge) {
    sink_.push(slot.s_syn, at, static_cast<double>(report.syn_count));
    sink_.push(slot.s_syn_ack, at,
               static_cast<double>(report.syn_ack_count));
    sink_.push(slot.s_k, at, report.k_estimate);
    sink_.push(slot.s_y, at, report.y);
  }
  if (alarm_edge) {
    slot.alarm_state = report.alarm;
    sink_.push(slot.s_alarm, at, report.alarm ? 1.0 : 0.0);
  }
  if (health_edge) {
    slot.health_state = health;
    sink_.push(slot.s_health, at, health);
  }
}

}  // namespace syndog::core
