#include "syndog/core/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndog::core {

void AdaptiveParams::validate() const {
  if (training_periods < 2) {
    throw std::invalid_argument(
        "AdaptiveParams: need at least 2 training periods");
  }
  if (sigma_margin <= 0.0) {
    throw std::invalid_argument("AdaptiveParams: sigma_margin must be > 0");
  }
  if (!(a_min > 0.0) || a_max < a_min) {
    throw std::invalid_argument("AdaptiveParams: need 0 < a_min <= a_max");
  }
  if (target_delay_periods <= 0.0) {
    throw std::invalid_argument(
        "AdaptiveParams: target_delay_periods must be > 0");
  }
  universal.validate();
}

AdaptiveSynDog::AdaptiveSynDog(AdaptiveParams params)
    : params_(params), detector_(params.universal) {
  params_.validate();
}

const SynDogParams& AdaptiveSynDog::active_params() const {
  return tuned_ ? *tuned_ : params_.universal;
}

PeriodReport AdaptiveSynDog::observe_period(std::int64_t syn_count,
                                            std::int64_t syn_ack_count) {
  const PeriodReport report =
      detector_.observe_period(syn_count, syn_ack_count);
  if (!tuned_) {
    // Only quiet samples teach the baseline: a flood period has Xn at or
    // above the universal offset, and feeding it would raise the learned
    // a toward blindness. Gating on the sample (not on y) matters because
    // y can stay elevated long after a flood ends.
    if (report.x < params_.universal.a) {
      x_stats_.add(report.x);
    }
    if (x_stats_.count() >= params_.training_periods) {
      maybe_finish_training();
    }
  }
  return report;
}

void AdaptiveSynDog::maybe_finish_training() {
  const double c = x_stats_.mean();
  const double sigma = x_stats_.stddev();
  SynDogParams tuned = params_.universal;
  tuned.a = std::clamp(c + params_.sigma_margin * sigma, params_.a_min,
                       params_.a_max);
  tuned.h = 2.0 * tuned.a;
  // Eq. (7) inverted at the design point h = 2a, c ~= 0:
  // N = target * (h - a) = target * a.
  tuned.threshold = params_.target_delay_periods * (tuned.h - tuned.a);

  // Carry the detector's K estimate across the switch by replaying the
  // level into a fresh instance.
  const double k = detector_.k();
  SynDog replacement(tuned);
  if (k > 0.0) {
    // One observation with SYN == SYNACK == K primes the estimator at the
    // learned level without perturbing the statistic.
    (void)replacement.observe_period(static_cast<std::int64_t>(k),
                                     static_cast<std::int64_t>(k));
  }
  detector_ = std::move(replacement);
  tuned_ = tuned;
}

double AdaptiveSynDog::min_detectable_rate() const {
  return SynDog::min_detectable_rate(active_params().a, learned_c(),
                                     detector_.k(),
                                     active_params().observation_period);
}

}  // namespace syndog::core
