#include "syndog/core/agent.hpp"

namespace syndog::core {

SynDogAgent::SynDogAgent(sim::LeafRouter& router, sim::Scheduler& scheduler,
                         SynDogParams params, AlarmCallback on_alarm,
                         AgentMode mode)
    : scheduler_(scheduler), params_(params), mode_(mode), syndog_(params),
      locator_(router.stub_prefix()), on_alarm_(std::move(on_alarm)) {
  if (mode_ == AgentMode::kFirstMile) {
    // Outgoing SYNs and incoming SYN/ACKs; SYN emitters are on the local
    // segment, so the locator gathers MAC evidence from the outbound tap.
    router.add_outbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          const classify::SegmentKind kind = outbound_.on_packet(packet);
          if (outbound_metrics_) outbound_metrics_->on_segment(at, kind);
          locator_.on_packet(at, packet);
        });
    router.add_inbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          const classify::SegmentKind kind = inbound_.on_packet(packet);
          if (inbound_metrics_) inbound_metrics_->on_segment(at, kind);
        });
  } else {
    // Last mile: the flood *arrives* through the inbound interface and
    // the victim's SYN/ACK replies leave through the outbound one. The
    // sources are beyond the router, so there is no MAC evidence.
    router.add_inbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          // counts SYNs (role kOutbound)
          const classify::SegmentKind kind = outbound_.on_packet(packet);
          if (outbound_metrics_) outbound_metrics_->on_segment(at, kind);
        });
    router.add_outbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          // counts SYN/ACKs (role kInbound)
          const classify::SegmentKind kind = inbound_.on_packet(packet);
          if (inbound_metrics_) inbound_metrics_->on_segment(at, kind);
        });
  }
  scheduler_.schedule_after(params_.observation_period,
                            [this] { on_period_end(); });
}

void SynDogAgent::attach_observer(obs::EventTracer* tracer,
                                  obs::Registry& registry) {
  tracer_ = tracer;
  // The detector stamps period n at epoch + (n+1)·t0; with the current
  // scheduler time minus the periods already fed as the epoch, that lands
  // exactly on the scheduler time of each on_period_end() tick.
  syndog_.attach_observer(
      tracer, &registry,
      scheduler_.now() -
          syndog_.periods_observed() * params_.observation_period);
  outbound_metrics_.emplace(registry, "sniffer.out", tracer);
  inbound_metrics_.emplace(registry, "sniffer.in", tracer);
}

void SynDogAgent::on_period_end() {
  const auto syns = static_cast<std::int64_t>(outbound_.harvest());
  const auto syn_acks = static_cast<std::int64_t>(inbound_.harvest());
  if (tracer_ != nullptr) {
    tracer_->record(scheduler_.now(),
                    obs::PeriodRollover{syndog_.periods_observed(), syns,
                                        syn_acks});
  }
  const PeriodReport report = syndog_.observe_period(syns, syn_acks);
  history_.push_back(report);

  if (report.alarm) {
    ever_alarmed_ = true;
    if (first_alarm_period_ < 0) {
      first_alarm_period_ = report.period_index;
    }
    if (on_alarm_) {
      on_alarm_(AlarmEvent{scheduler_.now(), report,
                           mode_ == AgentMode::kFirstMile
                               ? locator_.suspects()
                               : std::vector<Suspect>{}});
    }
  }
  scheduler_.schedule_after(params_.observation_period,
                            [this] { on_period_end(); });
}

}  // namespace syndog::core
