#include "syndog/core/agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syndog::core {

void AgentHealthPolicy::validate() const {
  if (!(gap_tolerance > 1.0)) {
    throw std::invalid_argument(
        "AgentHealthPolicy: gap_tolerance must exceed 1");
  }
  if (!(collapse_fraction > 0.0 && collapse_fraction < 1.0)) {
    throw std::invalid_argument(
        "AgentHealthPolicy: collapse_fraction in (0,1)");
  }
  if (!(collapse_min_k > 0.0) || collapse_min_syn < 0) {
    throw std::invalid_argument(
        "AgentHealthPolicy: collapse guards must be positive");
  }
  if (outage_patience < 1) {
    throw std::invalid_argument(
        "AgentHealthPolicy: outage_patience must be >= 1");
  }
  if (quarantine_initial < 1 || quarantine_max < quarantine_initial) {
    throw std::invalid_argument(
        "AgentHealthPolicy: quarantine lengths must satisfy 1 <= initial "
        "<= max");
  }
  if (heal_after < 1 || backoff_decay_after < 1) {
    throw std::invalid_argument(
        "AgentHealthPolicy: healing horizons must be >= 1");
  }
}

SynDogAgent::SynDogAgent(sim::LeafRouter& router, sim::Scheduler& scheduler,
                         SynDogParams params, AlarmCallback on_alarm,
                         AgentMode mode)
    : scheduler_(scheduler), params_(params), mode_(mode), syndog_(params),
      locator_(router.stub_prefix()), on_alarm_(std::move(on_alarm)) {
  policy_.validate();
  backoff_periods_ = policy_.quarantine_initial;
  if (mode_ == AgentMode::kFirstMile) {
    // Outgoing SYNs and incoming SYN/ACKs; SYN emitters are on the local
    // segment, so the locator gathers MAC evidence from the outbound tap.
    router.add_outbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          const classify::SegmentKind kind = outbound_.on_packet(packet);
          if (outbound_metrics_) outbound_metrics_->on_segment(at, kind);
          locator_.on_packet(at, packet);
        });
    router.add_inbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          const classify::SegmentKind kind = inbound_.on_packet(packet);
          if (inbound_metrics_) inbound_metrics_->on_segment(at, kind);
        });
  } else {
    // Last mile: the flood *arrives* through the inbound interface and
    // the victim's SYN/ACK replies leave through the outbound one. The
    // sources are beyond the router, so there is no MAC evidence.
    router.add_inbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          // counts SYNs (role kOutbound)
          const classify::SegmentKind kind = outbound_.on_packet(packet);
          if (outbound_metrics_) outbound_metrics_->on_segment(at, kind);
        });
    router.add_outbound_tap(
        [this](util::SimTime at, const net::Packet& packet) {
          // counts SYN/ACKs (role kInbound)
          const classify::SegmentKind kind = inbound_.on_packet(packet);
          if (inbound_metrics_) inbound_metrics_->on_segment(at, kind);
        });
  }
  last_rollover_ = scheduler_.now();
  schedule_next_period();
}

void SynDogAgent::attach_observer(obs::EventTracer* tracer,
                                  obs::Registry& registry) {
  tracer_ = tracer;
  registry_ = &registry;
  // The detector stamps period n at epoch + (n+1)·t0; with the current
  // scheduler time minus the periods already fed as the epoch, that lands
  // exactly on the scheduler time of each on_period_end() tick.
  syndog_.attach_observer(
      tracer, &registry,
      scheduler_.now() -
          syndog_.periods_observed() * params_.observation_period);
  outbound_metrics_.emplace(registry, "sniffer.out", tracer);
  inbound_metrics_.emplace(registry, "sniffer.in", tracer);
}

void SynDogAgent::set_period_callback(PeriodCallback cb) {
  on_period_.clear();
  add_period_callback(std::move(cb));
}

void SynDogAgent::add_period_callback(PeriodCallback cb) {
  if (cb) on_period_.push_back(std::move(cb));
}

void SynDogAgent::set_health_policy(AgentHealthPolicy policy) {
  policy.validate();
  policy_ = policy;
  backoff_periods_ = std::clamp(backoff_periods_, policy_.quarantine_initial,
                                policy_.quarantine_max);
}

void SynDogAgent::notify_sniffer_outage(bool active) {
  if (active == outage_active_) return;
  outage_active_ = active;
  if (active) {
    outage_touched_ = true;
    clean_streak_ = 0;
    transition(AgentHealth::kBlind, HealthReason::kSnifferOutage);
  }
  // Deactivation is acted on at the next rollover: the partial counters
  // are discarded once more and the agent re-arms through quarantine.
}

void SynDogAgent::stall_until(util::SimTime at) {
  const util::SimTime pending =
      last_rollover_ + params_.observation_period;
  if (at <= pending) return;
  scheduler_.cancel(period_timer_);
  period_timer_ = scheduler_.schedule_at(at, [this] { on_period_end(); });
}

void SynDogAgent::schedule_next_period() {
  period_timer_ = scheduler_.schedule_after(params_.observation_period,
                                            [this] { on_period_end(); });
}

void SynDogAgent::transition(AgentHealth to, HealthReason reason) {
  if (health_ == to) return;
  const auto from = static_cast<std::uint8_t>(health_);
  health_ = to;
  if (tracer_ != nullptr) {
    tracer_->record(scheduler_.now(),
                    obs::HealthTransition{from,
                                          static_cast<std::uint8_t>(to),
                                          static_cast<std::uint8_t>(reason),
                                          syndog_.periods_observed()});
  }
  if (registry_ != nullptr) {
    registry_->counter("agent.health_transitions").add();
  }
}

void SynDogAgent::begin_quarantine() {
  // The statistic accumulated before/through the blind interval mixes
  // real and faulted evidence; discard it but keep K (site level changes
  // slowly) and hold alarms until the detector has re-earned trust.
  syndog_.rearm();
  quarantine_remaining_ = backoff_periods_;
  backoff_periods_ = std::min(backoff_periods_ * 2, policy_.quarantine_max);
  ++recoveries_;
  clean_streak_ = 0;
  if (registry_ != nullptr) registry_->counter("agent.recoveries").add();
  transition(AgentHealth::kDegraded, HealthReason::kQuarantine);
}

void SynDogAgent::note_clean_period() {
  ++clean_streak_;
  if (health_ == AgentHealth::kDegraded && quarantine_remaining_ == 0 &&
      clean_streak_ >= policy_.heal_after) {
    transition(AgentHealth::kHealthy, HealthReason::kRecovered);
  }
  if (backoff_periods_ > policy_.quarantine_initial &&
      clean_streak_ % policy_.backoff_decay_after == 0) {
    backoff_periods_ =
        std::max(policy_.quarantine_initial, backoff_periods_ / 2);
  }
}

bool SynDogAgent::synack_collapsed(std::int64_t syns,
                                   std::int64_t syn_acks) const {
  const double k = syndog_.k();
  return k >= policy_.collapse_min_k &&
         syns >= policy_.collapse_min_syn &&
         static_cast<double>(syn_acks) <= policy_.collapse_fraction * k;
}

void SynDogAgent::on_period_end() {
  const util::SimTime now = scheduler_.now();
  const util::SimTime elapsed = now - last_rollover_;
  last_rollover_ = now;

  auto syns = static_cast<std::int64_t>(outbound_.harvest());
  auto syn_acks = static_cast<std::int64_t>(inbound_.harvest());
  // In-prefix SYNs a downstream policer dropped never left the stub; see
  // discount_outbound_syns. Applied before the gap rescale so the
  // correction smears with the harvest it belongs to.
  syns = std::max<std::int64_t>(0, syns - policed_discount_);
  policed_discount_ = 0;

  // (a) Late rollover (stalled process/timer): the harvest smears over the
  // whole stall. Account the missed rollovers as gaps and rescale the
  // counts to one period's worth so Δn and Xn are not inflated by the
  // stall length itself.
  const double ratio = static_cast<double>(elapsed.ns()) /
                       static_cast<double>(params_.observation_period.ns());
  std::int64_t missed = 0;
  if (ratio > policy_.gap_tolerance) {
    missed = std::max<std::int64_t>(
        static_cast<std::int64_t>(std::llround(ratio)) - 1, 1);
    syndog_.note_gap_periods(missed);
    clean_streak_ = 0;
    transition(AgentHealth::kDegraded, HealthReason::kPeriodGap);
    syns = std::llround(static_cast<double>(syns) / ratio);
    syn_acks = std::llround(static_cast<double>(syn_acks) / ratio);
  }

  // (b) Known sniffer outage: the counters are garbage (partial or zero),
  // not evidence. Discard the period entirely; once the outage ends,
  // re-arm through quarantine.
  if (outage_active_ || outage_touched_) {
    const bool outage_ended = outage_touched_ && !outage_active_;
    outage_touched_ = outage_active_;
    ++blind_periods_;
    if (registry_ != nullptr) registry_->counter("agent.blind_periods").add();
    syndog_.note_gap_periods(1);
    if (outage_ended) begin_quarantine();
    schedule_next_period();
    return;
  }

  // (c) SYN/ACK collapse (first-mile only): spoofed floods do not suppress
  // SYN/ACKs — the legitimate background still draws them — so SYNACK ≈ 0
  // against a healthy K means the return path is dead, not that the stub
  // is attacking. Absorb up to outage_patience such periods as gaps; past
  // that, feed raw counts so a genuinely dead link still alarms instead of
  // being masked forever.
  if (mode_ == AgentMode::kFirstMile && synack_collapsed(syns, syn_acks)) {
    ++consecutive_collapsed_;
    if (consecutive_collapsed_ <= policy_.outage_patience) {
      syndog_.note_gap_periods(1);
      clean_streak_ = 0;
      if (registry_ != nullptr) {
        registry_->counter("agent.collapse_periods").add();
      }
      transition(AgentHealth::kDegraded, HealthReason::kSynAckCollapse);
      schedule_next_period();
      return;
    }
  } else {
    consecutive_collapsed_ = 0;
  }

  if (tracer_ != nullptr) {
    tracer_->record(now, obs::PeriodRollover{syndog_.periods_observed(),
                                             syns, syn_acks});
  }
  const PeriodReport report = syndog_.observe_period(syns, syn_acks);
  history_.push_back(report);

  if (quarantine_remaining_ > 0) {
    --quarantine_remaining_;
    if (report.alarm) {
      ++suppressed_alarm_periods_;
      if (registry_ != nullptr) {
        registry_->counter("agent.suppressed_alarm_periods").add();
      }
    }
  } else if (report.alarm) {
    ever_alarmed_ = true;
    if (first_alarm_period_ < 0) {
      first_alarm_period_ = report.period_index;
    }
    if (on_alarm_) {
      on_alarm_(AlarmEvent{now, report,
                           mode_ == AgentMode::kFirstMile
                               ? locator_.suspects()
                               : std::vector<Suspect>{}});
    }
  }

  if (missed == 0 && consecutive_collapsed_ == 0) note_clean_period();
  for (const PeriodCallback& cb : on_period_) cb(report, health_, now);
  schedule_next_period();
}

}  // namespace syndog::core
