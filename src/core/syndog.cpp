#include "syndog/core/syndog.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace syndog::core {

void SynDogParams::validate() const {
  if (!(a > 0.0)) {
    throw std::invalid_argument("SynDogParams: a must be positive");
  }
  if (!(h > a)) {
    throw std::invalid_argument(
        "SynDogParams: h must exceed a (detectable drift)");
  }
  if (!(threshold > 0.0)) {
    throw std::invalid_argument("SynDogParams: threshold must be positive");
  }
  if (!(ewma_alpha > 0.0 && ewma_alpha < 1.0)) {
    throw std::invalid_argument("SynDogParams: ewma_alpha in (0,1)");
  }
  if (observation_period <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "SynDogParams: observation_period must be positive");
  }
  if (!(k_floor > 0.0)) {
    throw std::invalid_argument("SynDogParams: k_floor must be positive");
  }
  if (x_clamp_negative < 0.0) {
    throw std::invalid_argument(
        "SynDogParams: x_clamp_negative must be >= 0 (0 disables)");
  }
}

SynDogParams SynDogParams::site_tuned_unc() {
  SynDogParams p;
  p.a = 0.2;
  p.h = 0.4;
  p.threshold = 0.6;
  return p;
}

SynDog::SynDog(SynDogParams params)
    : params_(params),
      cusum_(detect::NonParametricCusumParams{params.a, params.threshold,
                                              params.statistic_cap}),
      k_(params.ewma_alpha) {
  params_.validate();
}

double SynDog::k() const {
  return k_.primed() ? k_.value() : 0.0;
}

void SynDog::attach_observer(obs::EventTracer* tracer,
                             obs::Registry* registry, util::SimTime epoch) {
  tracer_ = tracer;
  trace_epoch_ = epoch;
  registry_ = registry;
  if (registry != nullptr) {
    periods_counter_ = &registry->counter("syndog.periods");
    alarm_periods_counter_ = &registry->counter("syndog.alarm_periods");
    alarms_raised_counter_ = &registry->counter("syndog.alarms_raised");
    k_gauge_ = &registry->gauge("syndog.k");
    y_gauge_ = &registry->gauge("syndog.y");
  } else {
    periods_counter_ = nullptr;
    alarm_periods_counter_ = nullptr;
    alarms_raised_counter_ = nullptr;
    k_gauge_ = nullptr;
    y_gauge_ = nullptr;
  }
}

PeriodReport SynDog::observe_period(std::int64_t syn_count,
                                    std::int64_t syn_ack_count) {
  if (syn_count < 0 || syn_ack_count < 0) {
    throw std::invalid_argument("SynDog: negative packet count");
  }
  PeriodReport report;
  report.period_index = periods_++;
  report.syn_count = syn_count;
  report.syn_ack_count = syn_ack_count;
  report.delta =
      static_cast<double>(syn_count) - static_cast<double>(syn_ack_count);

  // Normalize by the estimate formed *before* this period, so an attack
  // surge in the current counts cannot deflate its own normalization; on
  // the very first period, fall back to the current SYN/ACK count.
  const double k_prev = k_.primed()
                            ? k_.value()
                            : static_cast<double>(syn_ack_count);
  report.x = report.delta / std::max(k_prev, params_.k_floor);
  if (params_.x_clamp_negative > 0.0 &&
      report.x < -params_.x_clamp_negative) {
    report.x = -params_.x_clamp_negative;
    report.x_clamped = true;
  }

  // Eq. (1): update the level estimate. The SYN/ACK side is driven by
  // legitimate traffic only (a spoofed flood draws no SYN/ACKs), so the
  // estimate stays honest during an attack.
  k_.add(static_cast<double>(syn_ack_count));
  report.k_estimate = k_.value();

  const detect::Decision decision = cusum_.update(report.x);
  report.y = decision.statistic;
  report.alarm = decision.alarm;
  const bool was_alarmed = last_alarm_;
  last_alarm_ = decision.alarm;

  if (tracer_ != nullptr) {
    const util::SimTime at =
        trace_epoch_ +
        (report.period_index + 1) * params_.observation_period;
    tracer_->record(at,
                    obs::CusumUpdate{report.period_index, report.delta,
                                     report.k_estimate, report.x, report.y});
    if (report.alarm && !was_alarmed) {
      tracer_->record(at, obs::AlarmRaised{report.period_index, report.y,
                                           params_.threshold});
    } else if (!report.alarm && was_alarmed) {
      tracer_->record(at, obs::AlarmCleared{report.period_index, report.y});
    }
  }
  if (periods_counter_ != nullptr) {
    periods_counter_->add();
    if (report.alarm) {
      alarm_periods_counter_->add();
      if (!was_alarmed) alarms_raised_counter_->add();
    }
    if (report.x_clamped) {
      registry_->counter("syndog.x_clamped_periods").add();
    }
    k_gauge_->set(report.k_estimate);
    y_gauge_->set(report.y);
  }
  return report;
}

void SynDog::reset() {
  cusum_.reset();
  k_.reset();
  periods_ = 0;
  gap_periods_ = 0;
  last_alarm_ = false;
}

void SynDog::rearm() {
  cusum_.reset();
  last_alarm_ = false;
}

void SynDog::note_gap_periods(std::int64_t n) {
  if (n < 0) {
    throw std::invalid_argument("SynDog: negative gap period count");
  }
  periods_ += n;
  gap_periods_ += n;
  if (n > 0 && registry_ != nullptr) {
    registry_->counter("syndog.gap_periods")
        .add(static_cast<std::uint64_t>(n));
  }
}

double SynDog::min_detectable_rate(double c) const {
  return min_detectable_rate(params_.a, c, k(), params_.observation_period);
}

double SynDog::min_detectable_rate(double a, double c, double k_bar,
                                   util::SimTime t0) {
  if (t0 <= util::SimTime::zero()) {
    throw std::invalid_argument("min_detectable_rate: t0 must be positive");
  }
  return (a - c) * k_bar / t0.to_seconds();
}

double SynDog::expected_detection_periods(double fi, double c) const {
  const double k_bar = k();
  if (k_bar <= 0.0) return std::numeric_limits<double>::infinity();
  // During an attack the mean of Xn increases by fi*t0/K; Eq. (7) with
  // that drift, the normal mean c, and offset a.
  const double drift =
      fi * params_.observation_period.to_seconds() / k_bar + c - params_.a;
  if (drift <= 0.0) return std::numeric_limits<double>::infinity();
  return params_.threshold / drift;
}

std::vector<PeriodReport> run_over_series(
    const SynDogParams& params, const std::vector<std::int64_t>& syns,
    const std::vector<std::int64_t>& syn_acks, obs::EventTracer* tracer,
    obs::Registry* registry) {
  if (syns.size() != syn_acks.size()) {
    throw std::invalid_argument("run_over_series: series size mismatch");
  }
  SynDog dog(params);
  dog.attach_observer(tracer, registry);
  std::vector<PeriodReport> reports;
  reports.reserve(syns.size());
  for (std::size_t n = 0; n < syns.size(); ++n) {
    reports.push_back(dog.observe_period(syns[n], syn_acks[n]));
  }
  return reports;
}

}  // namespace syndog::core
