// Cross-agent alarm aggregation.
//
// The paper stresses SYN-dog "is incrementally deployable and works
// without requiring a wide installation" — every agent is useful alone.
// When several *are* deployed, their alarms compose: each alarming stub
// can estimate its local flood share from its own period report
// (fi ~ Delta/t0 above the normal level), and the sum estimates the
// campaign's aggregate rate V at the victim. This class performs that
// bookkeeping for an operator dashboard; it holds no packet state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "syndog/core/agent.hpp"

namespace syndog::core {

class AlarmAggregator {
 public:
  /// One alarming stub's latest evidence.
  struct StubAlarm {
    std::string stub_name;
    util::SimTime at;
    /// Local flood-rate estimate in SYN/s: max(0, Delta - c*K)/t0.
    double estimated_rate = 0.0;
    std::vector<Suspect> suspects;
  };

  explicit AlarmAggregator(util::SimTime observation_period,
                           double assumed_c = 0.05);

  /// Registers/updates stub `name` with an alarm event (typically called
  /// from that stub's SynDogAgent alarm callback).
  void report(const std::string& name, const AlarmEvent& event);
  /// Clears a stub that has returned to normal.
  void clear(const std::string& name);

  [[nodiscard]] std::size_t alarming_stubs() const { return stubs_.size(); }
  /// Sum of the per-stub rate estimates: the campaign's aggregate V.
  [[nodiscard]] double estimated_aggregate_rate() const;
  /// Snapshot ordered by estimated rate, largest first.
  [[nodiscard]] std::vector<StubAlarm> snapshot() const;

 private:
  util::SimTime observation_period_;
  double assumed_c_;
  std::map<std::string, StubAlarm> stubs_;
};

}  // namespace syndog::core
