// Flooding-source localization (paper §4.2.3).
//
// Once SYN-dog alarms, the leaf router knows the sources are inside its
// own stub network. The locator keeps, per source MAC address, how many
// SYNs that station emitted and how many of those carried a *spoofed*
// source IP (one not inside the stub prefix) — the evidence ingress
// filtering checks. IP source addresses are useless during an attack;
// MAC addresses on the local segment are not.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/util/time.hpp"

namespace syndog::core {

struct Suspect {
  net::MacAddress mac;
  std::uint64_t spoofed_syns = 0;  ///< SYNs with out-of-prefix source IP
  std::uint64_t total_syns = 0;
  util::SimTime first_seen;
  util::SimTime last_seen;
};

class SourceLocator {
 public:
  explicit SourceLocator(net::Ipv4Prefix stub_prefix)
      : stub_prefix_(stub_prefix) {}

  /// Feed every packet crossing the outbound interface.
  void on_packet(util::SimTime at, const net::Packet& packet);

  /// Stations ranked by spoofed-SYN count (descending); stations that
  /// never spoofed are omitted.
  [[nodiscard]] std::vector<Suspect> suspects() const;
  /// All stations that sent any SYN, ranked by total SYNs.
  [[nodiscard]] std::vector<Suspect> stations() const;

  [[nodiscard]] std::uint64_t spoofed_total() const { return spoofed_total_; }
  /// Clears the evidence window (e.g. after an alarm has been handled).
  void reset();

 private:
  net::Ipv4Prefix stub_prefix_;
  std::map<net::MacAddress, Suspect> by_mac_;
  std::uint64_t spoofed_total_ = 0;
};

}  // namespace syndog::core
