// Interface sniffers (paper Fig. 2).
//
// A Sniffer watches one router interface and counts the one segment kind
// its role requires: the outbound sniffer counts pure SYNs leaving the
// stub, the inbound sniffer counts SYN/ACKs entering. Counting is the only
// state — a fixed number of integers regardless of traffic, so the agent
// cannot be exhausted by the very attack it watches for.
#pragma once

#include <cstdint>

#include "syndog/classify/segment.hpp"
#include "syndog/net/packet.hpp"

namespace syndog::core {

enum class SnifferRole : std::uint8_t {
  kOutbound,  ///< counts outgoing SYNs
  kInbound,   ///< counts incoming SYN/ACKs
};

class Sniffer {
 public:
  explicit Sniffer(SnifferRole role) : role_(role) {}

  [[nodiscard]] SnifferRole role() const { return role_; }

  /// Simulator path: classify a logical packet. Returns the classification
  /// so callers (e.g. the agent's telemetry) need not classify twice.
  classify::SegmentKind on_packet(const net::Packet& packet) {
    const classify::SegmentKind kind = classify::classify_packet(packet);
    note(kind);
    return kind;
  }
  /// Capture path: classify a raw frame without decoding it fully.
  classify::SegmentKind on_frame(net::ByteSpan frame) {
    const classify::SegmentKind kind = classify::classify_frame_fast(frame);
    note(kind);
    return kind;
  }

  /// Count accumulated in the current observation period.
  [[nodiscard]] std::uint64_t period_count() const { return period_count_; }
  /// Ends the period: returns the period's count and starts a new one.
  std::uint64_t harvest() {
    const std::uint64_t n = period_count_;
    period_count_ = 0;
    return n;
  }

  [[nodiscard]] std::uint64_t lifetime_count() const {
    return lifetime_count_;
  }
  /// All packets shown to this sniffer, counted or not.
  [[nodiscard]] std::uint64_t packets_seen() const { return packets_seen_; }

 private:
  void note(classify::SegmentKind kind) {
    ++packets_seen_;
    const bool counted =
        role_ == SnifferRole::kOutbound
            ? kind == classify::SegmentKind::kSyn
            : kind == classify::SegmentKind::kSynAck;
    if (counted) {
      ++period_count_;
      ++lifetime_count_;
    }
  }

  SnifferRole role_;
  std::uint64_t period_count_ = 0;
  std::uint64_t lifetime_count_ = 0;
  std::uint64_t packets_seen_ = 0;
};

}  // namespace syndog::core
