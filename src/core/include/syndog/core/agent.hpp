// The deployable SYN-dog agent.
//
// Installs the two sniffers on a simulated leaf router's interface taps,
// wakes up every observation period to exchange their counts (the paper's
// "coordinate via shared memory / IPC" step), feeds the CUSUM core, and
// invokes the alarm callback — with localization evidence — when the
// statistic crosses the flooding threshold.
//
// The agent also owns the *graceful-degradation* layer the paper's
// idealized deployment does not need: a health state machine (healthy ->
// degraded -> blind) that keeps the detector honest when the first mile
// itself misbehaves — sniffer/tap outages, stalled period timers, and
// SYN/ACK collapse (dead downlink). Faulted periods are gap-accounted
// (SynDog::note_gap_periods), never fed as fake zeros, and recovery from
// a blind interval passes through a quarantined self-reset with
// exponential backoff before alarms are trusted again.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "syndog/classify/instrument.hpp"
#include "syndog/core/locator.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"

namespace syndog::core {

struct AlarmEvent {
  util::SimTime at;
  PeriodReport report;
  /// MAC-level evidence gathered since the last reset (paper §4.2.3).
  /// Empty in last-mile mode: the sources are not on this router's LAN.
  std::vector<Suspect> suspects;
};

/// Which SYN–SYN/ACK pair the agent watches (paper Fig. 6 deploys both).
enum class AgentMode : std::uint8_t {
  /// At the *sources'* leaf router: outgoing SYNs vs incoming SYN/ACKs.
  /// Detects floods leaving the stub and can localize the stations.
  kFirstMile,
  /// At the *victim's* leaf router: incoming SYNs vs outgoing SYN/ACKs.
  /// Detects an arriving flood — but only once the victim stops answering
  /// (backlog exhausted), and it cannot see past the router toward the
  /// sources. The first-mile/last-mile bench quantifies that asymmetry.
  kLastMile,
};

/// Agent operational health (exported in obs::HealthTransition events).
enum class AgentHealth : std::uint8_t {
  kHealthy = 0,   ///< counters trusted, alarms live
  kDegraded = 1,  ///< partial evidence (gaps, collapse, quarantine)
  kBlind = 2,     ///< sniffers known dead; periods are discarded
};

/// Why the agent last changed health state.
enum class HealthReason : std::uint8_t {
  kNone = 0,
  kSnifferOutage = 1,   ///< notify_sniffer_outage(true)
  kPeriodGap = 2,       ///< period timer fired late; rollovers missed
  kSynAckCollapse = 3,  ///< SYN/ACKs vanished relative to K (dead downlink)
  kQuarantine = 4,      ///< post-blind self-reset; alarms suppressed
  kRecovered = 5,       ///< clean streak completed; back to healthy
};

/// Tunables for the degradation layer. Periods are observation periods.
struct AgentHealthPolicy {
  /// A rollover arriving later than gap_tolerance * t0 after the previous
  /// one is treated as a stall: the missed periods are gap-accounted and
  /// the harvested counts are rescaled to per-period rates.
  double gap_tolerance = 1.5;
  /// SYN/ACK collapse test (first-mile only): SYNACK(n) <=
  /// collapse_fraction * K while K >= collapse_min_k and SYN(n) >=
  /// collapse_min_syn. A spoofed flood does not suppress SYN/ACKs (the
  /// legitimate background still draws them), so a collapse indicates a
  /// dead return path, not an attack.
  double collapse_fraction = 0.05;
  double collapse_min_k = 20.0;
  std::int64_t collapse_min_syn = 20;
  /// Collapsed periods absorbed as gaps before the agent gives up on the
  /// heuristic and feeds raw counts again (so a sustained dead link still
  /// eventually alarms rather than being masked forever).
  std::int64_t outage_patience = 4;
  /// Quarantine length after a blind interval, in periods; doubles on each
  /// successive blind interval (exponential backoff) up to quarantine_max.
  std::int64_t quarantine_initial = 2;
  std::int64_t quarantine_max = 16;
  /// Consecutive clean (fed, fault-free) periods before kDegraded heals
  /// back to kHealthy.
  std::int64_t heal_after = 2;
  /// Consecutive clean periods before the quarantine backoff halves back
  /// toward quarantine_initial.
  std::int64_t backoff_decay_after = 8;

  void validate() const;
};

class SynDogAgent {
 public:
  using AlarmCallback = std::function<void(const AlarmEvent&)>;

  /// Attaches taps to `router` and starts the periodic timer on
  /// `scheduler`. Both must outlive the agent.
  SynDogAgent(sim::LeafRouter& router, sim::Scheduler& scheduler,
              SynDogParams params, AlarmCallback on_alarm = {},
              AgentMode mode = AgentMode::kFirstMile);

  SynDogAgent(const SynDogAgent&) = delete;
  SynDogAgent& operator=(const SynDogAgent&) = delete;

  /// Attaches telemetry sinks (must outlive the agent; nullptr detaches
  /// the tracer). Period rollovers, the CUSUM derivation, and alarm edges
  /// are recorded into `tracer` timestamped with the scheduler clock;
  /// per-segment-kind classifier counters ("sniffer.out.*" /
  /// "sniffer.in.*") and the "syndog.*" instruments land in `registry`.
  /// Degradation instruments ("agent.*") and obs::HealthTransition events
  /// are created lazily, only once a fault actually occurs.
  void attach_observer(obs::EventTracer* tracer, obs::Registry& registry);

  /// Replaces the degradation tunables (validated). Call before faults
  /// start; does not retroactively reinterpret past periods.
  void set_health_policy(AgentHealthPolicy policy);

  /// Invoked once per *fed* observation period, after the CUSUM update and
  /// any alarm callback, with the period's report, the agent's health as
  /// of the period end, and the scheduler clock. Discarded periods (blind
  /// or collapse-absorbed rollovers) do not fire it — they produce no
  /// report. This is the streaming seam the fleet telemetry wiring
  /// (core::FleetRecorder) and the mitigation controller
  /// (mitigate::MitigationController) hook.
  using PeriodCallback =
      std::function<void(const PeriodReport&, AgentHealth, util::SimTime)>;
  /// Replaces every registered period callback; an empty one detaches all.
  void set_period_callback(PeriodCallback cb);
  /// Appends a period callback; callbacks fire in registration order, so
  /// several consumers (telemetry + mitigation) can share one agent.
  void add_period_callback(PeriodCallback cb);

  /// Egress-policer correction. A mitigation policer sits *downstream*
  /// of the outbound tap (the sniffer must keep seeing the wire so a
  /// throttled flood still banks alarm evidence), which means a SYN the
  /// policer drops was counted but can never draw a SYN/ACK. For spoofed
  /// SYNs that is exactly right — the station emitted them and the alarm
  /// should persist. For *in-prefix* collateral drops it is false
  /// feedback: the detector would read its own throttle as attack
  /// evidence and hold the statistic up forever (a quarantined station's
  /// legitimate SYNs + retransmissions can exceed the decay drift at a
  /// small site). The controller reports those here; the next rollover
  /// deducts them from the period's SYN count.
  void discount_outbound_syns(std::int64_t n = 1) {
    policed_discount_ += n;
  }

  /// Tells the agent its sniffers are (not) seeing traffic — the DES
  /// analogue of a tap daemon heartbeat. While an outage is active every
  /// rollover is discarded as a gap (counters may hold partial garbage);
  /// when it clears, the agent re-arms through quarantine.
  void notify_sniffer_outage(bool active);

  /// Fault hook: delays the pending period rollover until `at` (no-op if
  /// `at` is not later), simulating a stalled/suspended agent process.
  /// The late rollover then triggers the gap-accounting path.
  void stall_until(util::SimTime at);

  [[nodiscard]] AgentMode mode() const { return mode_; }
  [[nodiscard]] const SynDog& detector() const { return syndog_; }
  /// The sniffer counting the watched SYNs (on the outbound interface in
  /// first-mile mode, the inbound interface in last-mile mode).
  [[nodiscard]] const Sniffer& outbound_sniffer() const { return outbound_; }
  /// The sniffer counting the watched SYN/ACKs.
  [[nodiscard]] const Sniffer& inbound_sniffer() const { return inbound_; }
  [[nodiscard]] const SourceLocator& locator() const { return locator_; }
  /// Every period report produced so far (the {yn} trajectory).
  [[nodiscard]] const std::vector<PeriodReport>& history() const {
    return history_;
  }
  [[nodiscard]] bool ever_alarmed() const { return ever_alarmed_; }
  /// First period whose report alarmed, or -1.
  [[nodiscard]] std::int64_t first_alarm_period() const {
    return first_alarm_period_;
  }

  [[nodiscard]] AgentHealth health() const { return health_; }
  [[nodiscard]] const AgentHealthPolicy& health_policy() const {
    return policy_;
  }
  /// Rollovers discarded because the sniffers were known-dead.
  [[nodiscard]] std::int64_t blind_periods() const { return blind_periods_; }
  /// Alarming periods whose alarm was withheld during quarantine.
  [[nodiscard]] std::int64_t suppressed_alarm_periods() const {
    return suppressed_alarm_periods_;
  }
  /// Blind intervals survived (quarantined re-arms performed).
  [[nodiscard]] std::int64_t recoveries() const { return recoveries_; }
  /// Periods of quarantine still pending (0 when alarms are live).
  [[nodiscard]] std::int64_t quarantine_remaining() const {
    return quarantine_remaining_;
  }

 private:
  void on_period_end();
  void schedule_next_period();
  void transition(AgentHealth to, HealthReason reason);
  void begin_quarantine();
  void note_clean_period();
  [[nodiscard]] bool synack_collapsed(std::int64_t syns,
                                      std::int64_t syn_acks) const;

  sim::Scheduler& scheduler_;
  SynDogParams params_;
  AgentMode mode_;
  SynDog syndog_;
  Sniffer outbound_{SnifferRole::kOutbound};
  Sniffer inbound_{SnifferRole::kInbound};
  SourceLocator locator_;
  AlarmCallback on_alarm_;
  std::vector<PeriodCallback> on_period_;
  std::vector<PeriodReport> history_;
  bool ever_alarmed_ = false;
  std::int64_t first_alarm_period_ = -1;

  // Degradation layer.
  AgentHealthPolicy policy_;
  AgentHealth health_ = AgentHealth::kHealthy;
  sim::EventId period_timer_ = 0;
  util::SimTime last_rollover_;  ///< when the previous rollover ran
  bool outage_active_ = false;
  bool outage_touched_ = false;  ///< outage overlapped the current period
  std::int64_t consecutive_collapsed_ = 0;
  std::int64_t quarantine_remaining_ = 0;
  std::int64_t backoff_periods_ = 0;  ///< next quarantine length
  std::int64_t clean_streak_ = 0;
  std::int64_t blind_periods_ = 0;
  std::int64_t suppressed_alarm_periods_ = 0;
  std::int64_t policed_discount_ = 0;  ///< see discount_outbound_syns
  std::int64_t recoveries_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::optional<classify::SegmentMetrics> outbound_metrics_;
  std::optional<classify::SegmentMetrics> inbound_metrics_;
};

}  // namespace syndog::core
