// The deployable SYN-dog agent.
//
// Installs the two sniffers on a simulated leaf router's interface taps,
// wakes up every observation period to exchange their counts (the paper's
// "coordinate via shared memory / IPC" step), feeds the CUSUM core, and
// invokes the alarm callback — with localization evidence — when the
// statistic crosses the flooding threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "syndog/classify/instrument.hpp"
#include "syndog/core/locator.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"

namespace syndog::core {

struct AlarmEvent {
  util::SimTime at;
  PeriodReport report;
  /// MAC-level evidence gathered since the last reset (paper §4.2.3).
  /// Empty in last-mile mode: the sources are not on this router's LAN.
  std::vector<Suspect> suspects;
};

/// Which SYN–SYN/ACK pair the agent watches (paper Fig. 6 deploys both).
enum class AgentMode : std::uint8_t {
  /// At the *sources'* leaf router: outgoing SYNs vs incoming SYN/ACKs.
  /// Detects floods leaving the stub and can localize the stations.
  kFirstMile,
  /// At the *victim's* leaf router: incoming SYNs vs outgoing SYN/ACKs.
  /// Detects an arriving flood — but only once the victim stops answering
  /// (backlog exhausted), and it cannot see past the router toward the
  /// sources. The first-mile/last-mile bench quantifies that asymmetry.
  kLastMile,
};

class SynDogAgent {
 public:
  using AlarmCallback = std::function<void(const AlarmEvent&)>;

  /// Attaches taps to `router` and starts the periodic timer on
  /// `scheduler`. Both must outlive the agent.
  SynDogAgent(sim::LeafRouter& router, sim::Scheduler& scheduler,
              SynDogParams params, AlarmCallback on_alarm = {},
              AgentMode mode = AgentMode::kFirstMile);

  SynDogAgent(const SynDogAgent&) = delete;
  SynDogAgent& operator=(const SynDogAgent&) = delete;

  /// Attaches telemetry sinks (must outlive the agent; nullptr detaches
  /// the tracer). Period rollovers, the CUSUM derivation, and alarm edges
  /// are recorded into `tracer` timestamped with the scheduler clock;
  /// per-segment-kind classifier counters ("sniffer.out.*" /
  /// "sniffer.in.*") and the "syndog.*" instruments land in `registry`.
  void attach_observer(obs::EventTracer* tracer, obs::Registry& registry);

  [[nodiscard]] AgentMode mode() const { return mode_; }
  [[nodiscard]] const SynDog& detector() const { return syndog_; }
  /// The sniffer counting the watched SYNs (on the outbound interface in
  /// first-mile mode, the inbound interface in last-mile mode).
  [[nodiscard]] const Sniffer& outbound_sniffer() const { return outbound_; }
  /// The sniffer counting the watched SYN/ACKs.
  [[nodiscard]] const Sniffer& inbound_sniffer() const { return inbound_; }
  [[nodiscard]] const SourceLocator& locator() const { return locator_; }
  /// Every period report produced so far (the {yn} trajectory).
  [[nodiscard]] const std::vector<PeriodReport>& history() const {
    return history_;
  }
  [[nodiscard]] bool ever_alarmed() const { return ever_alarmed_; }
  /// First period whose report alarmed, or -1.
  [[nodiscard]] std::int64_t first_alarm_period() const {
    return first_alarm_period_;
  }

 private:
  void on_period_end();

  sim::Scheduler& scheduler_;
  SynDogParams params_;
  AgentMode mode_;
  SynDog syndog_;
  Sniffer outbound_{SnifferRole::kOutbound};
  Sniffer inbound_{SnifferRole::kInbound};
  SourceLocator locator_;
  AlarmCallback on_alarm_;
  std::vector<PeriodReport> history_;
  bool ever_alarmed_ = false;
  std::int64_t first_alarm_period_ = -1;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  std::optional<classify::SegmentMetrics> outbound_metrics_;
  std::optional<classify::SegmentMetrics> inbound_metrics_;
};

}  // namespace syndog::core
