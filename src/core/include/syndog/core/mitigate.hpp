// Victim-side defenses (the stateful prior art of paper §1).
//
// SYN cookies and SYN caches mitigate the *effect* of a flood at the
// victim but keep per-connection state or computation there, cannot name
// the flooding sources, and leave tracing to expensive IP traceback.
// They are implemented here as comparators: the ddos_campaign example and
// the ablation benches contrast their per-victim cost against SYN-dog's
// two counters at the leaf router.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "syndog/net/address.hpp"
#include "syndog/util/time.hpp"

namespace syndog::core {

/// Connection 4-tuple key for the victim-side structures.
struct ConnKey {
  net::Ipv4Address client_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;

  bool operator==(const ConnKey&) const = default;
  [[nodiscard]] std::uint64_t packed() const {
    return (std::uint64_t{client_ip.value()} << 32) |
           (std::uint64_t{client_port} << 16) | server_port;
  }
};

/// Stateless SYN-cookie codec (Bernstein-style): the server's ISN encodes
/// a keyed hash of the connection tuple plus a coarse time counter, so the
/// final ACK can be validated with zero stored state. The cost moves from
/// memory to per-SYN computation — which is why cookie-protected servers
/// still fall to high-rate floods (the 14,000 SYN/s figure of [8]).
class SynCookieCodec {
 public:
  explicit SynCookieCodec(std::uint64_t secret) : secret_(secret) {}

  /// Cookie issued as the server ISN. `time_counter` should advance every
  /// ~64 s; the low 3 bits of the cookie carry it.
  [[nodiscard]] std::uint32_t make(const ConnKey& key,
                                   std::uint32_t client_isn,
                                   std::uint64_t time_counter) const;

  /// Validates the ISN echoed in a final ACK (ack-1). Accepts the current
  /// and previous counter value.
  [[nodiscard]] bool verify(const ConnKey& key, std::uint32_t client_isn,
                            std::uint32_t cookie,
                            std::uint64_t now_counter) const;

 private:
  [[nodiscard]] std::uint32_t mac(const ConnKey& key,
                                  std::uint32_t client_isn,
                                  std::uint64_t counter) const;
  std::uint64_t secret_;
};

/// Bounded half-open store with oldest-first eviction (a SYN cache).
/// Under flood it thrashes: legitimate entries are evicted before their
/// handshakes complete — measurable via the stats.
class SynCache {
 public:
  explicit SynCache(std::size_t capacity);

  enum class AdmitResult : std::uint8_t {
    kAdmitted,
    kDuplicate,
    kAdmittedWithEviction
  };

  AdmitResult admit(const ConnKey& key, util::SimTime now);
  /// Final ACK arrived: true if the entry was present (handshake
  /// completes), false if it had been evicted or never admitted.
  bool complete(const ConnKey& key);
  /// Drops entries older than `age` relative to `now`.
  std::size_t expire(util::SimTime now, util::SimTime age);

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t evictions = 0;
    std::uint64_t completions = 0;
    std::uint64_t completion_misses = 0;  ///< ACK for an evicted entry
    std::uint64_t expirations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    ConnKey key;
    util::SimTime admitted_at;
  };
  using Order = std::list<Entry>;

  std::size_t capacity_;
  Order order_;  ///< oldest at front
  std::unordered_map<std::uint64_t, Order::iterator> index_;
  Stats stats_;
};

}  // namespace syndog::core
