// Fleet telemetry wiring: SYN-dog stubs → telemetry::TelemetrySink.
//
// One FleetRecorder fans a whole fleet of detectors into a single
// syndog-tsf/1 stream under the standard fleet schema (the kFleetMetric*
// names below — syndog_fleetctl's rollups query the same names). Two ways
// to feed it:
//
//   * fast-forward: add_agent() owns a bare core::SynDog per slot and
//     observe() feeds per-period counters directly — no DES, which is how
//     bench_fleet_telemetry reaches hundreds of agents × days of sim time
//     inside a minute of wall clock;
//   * live DES: attach() hooks a SynDogAgent's period callback, so a
//     scheduler-driven run streams the identical schema.
//
// Sampling cadence is configurable: alarm and health samples are always
// pushed on state *changes* (so edges are exact), while the per-period
// {syn, syn_ack, k, y} samples can be decimated to every Nth period to
// keep multi-day campaign files compact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/core/agent.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/util/time.hpp"

namespace syndog::core {

/// The standard fleet telemetry schema (metric names in the tsf
/// dictionary). docs/OBSERVABILITY.md §Fleet telemetry documents each.
inline constexpr std::string_view kFleetMetricSyn = "syn";
inline constexpr std::string_view kFleetMetricSynAck = "syn_ack";
inline constexpr std::string_view kFleetMetricK = "k";
inline constexpr std::string_view kFleetMetricY = "y";
inline constexpr std::string_view kFleetMetricAlarm = "alarm";
inline constexpr std::string_view kFleetMetricHealth = "health";
/// Aggregate mitigation stage of a stub (mitigate::Stage as 0/1/2;
/// pushed on change by mitigate::MitigationRecorder::attach_sink).
inline constexpr std::string_view kFleetMetricMitigation = "mitigation";

class FleetRecorder {
 public:
  struct Cadence {
    /// Push {syn, syn_ack, k, y} every Nth fed period (1 = every period).
    /// Alarm/health changes are always pushed regardless.
    std::int64_t heartbeat_periods = 1;
  };

  /// The sink must outlive the recorder; the recorder must outlive any
  /// agent attached via attach() (the period callback points back here).
  explicit FleetRecorder(telemetry::TelemetrySink& sink);
  FleetRecorder(telemetry::TelemetrySink& sink, Cadence cadence);

  /// Fast-forward slot: owns a SynDog configured with `params`.
  std::size_t add_agent(std::string_view name, std::uint32_t as_number,
                        const SynDogParams& params);

  /// Feeds one period's counters to slot `slot` and records the derived
  /// samples timestamped `at`. Only valid for add_agent() slots.
  PeriodReport observe(std::size_t slot, std::int64_t syn,
                       std::int64_t syn_ack, util::SimTime at);

  /// Live-DES slot: registers the agent and appends to its period
  /// callbacks (other consumers, e.g. a mitigation controller, keep
  /// theirs).
  std::size_t attach(SynDogAgent& agent, std::string_view name,
                     std::uint32_t as_number);

  [[nodiscard]] std::size_t agent_count() const { return slots_.size(); }
  /// The fast-forward detector behind slot `slot` (throws for attach()
  /// slots, which keep their state inside the SynDogAgent).
  [[nodiscard]] const SynDog& detector(std::size_t slot) const;
  [[nodiscard]] telemetry::TelemetrySink& sink() { return sink_; }

 private:
  struct Slot {
    std::unique_ptr<SynDog> dog;  ///< null for attach() slots
    std::uint32_t s_syn = 0;
    std::uint32_t s_syn_ack = 0;
    std::uint32_t s_k = 0;
    std::uint32_t s_y = 0;
    std::uint32_t s_alarm = 0;
    std::uint32_t s_health = 0;
    bool alarm_state = false;
    double health_state = 0.0;
    std::int64_t fed_periods = 0;
  };

  std::size_t new_slot(std::string_view name, std::uint32_t as_number,
                       std::unique_ptr<SynDog> dog);
  void record(Slot& slot, const PeriodReport& report, double health,
              util::SimTime at);

  telemetry::TelemetrySink& sink_;
  Cadence cadence_;
  std::vector<Slot> slots_;
};

}  // namespace syndog::core
