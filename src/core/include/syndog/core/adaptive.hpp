// Site-adaptive parameter tuning (paper §4.2.3, "the network
// administrator ... can incorporate site-specific information so that the
// algorithm can achieve higher detection performance").
//
// The paper tunes UNC by hand (a: 0.35 -> 0.2, N: 1.05 -> 0.6). This
// class automates that: during a training window it estimates the site's
// normal-mode mean c and standard deviation sigma of Xn, then sets
//
//   a = clamp(c + sigma_margin * sigma, a_min, a_max)
//   h = 2a                                (the paper's design rule)
//   N = target_delay_periods * (h - a)    (inverting Eq. 7 with c ~= 0)
//
// and runs the standard detector with those parameters from then on.
// During training the universal parameters stay active, so the agent is
// never blind.
#pragma once

#include <cstdint>
#include <optional>

#include "syndog/core/syndog.hpp"
#include "syndog/stats/online.hpp"

namespace syndog::core {

struct AdaptiveParams {
  /// Periods of normal traffic to learn from before switching.
  std::int64_t training_periods = 60;
  /// Safety margin above the observed mean, in observed-sigma units.
  double sigma_margin = 6.0;
  /// Clamp range for the learned offset a.
  double a_min = 0.05;
  double a_max = 0.35;
  /// Design detection delay in periods (paper: 3).
  double target_delay_periods = 3.0;
  /// Universal parameters used while training (and as the clamp source).
  SynDogParams universal = SynDogParams::paper_defaults();

  void validate() const;
};

class AdaptiveSynDog {
 public:
  explicit AdaptiveSynDog(AdaptiveParams params);

  /// Same contract as SynDog::observe_period. Training samples feed the
  /// estimator only while the universal detector is quiet, so a flood
  /// during training cannot teach the detector to ignore floods.
  PeriodReport observe_period(std::int64_t syn_count,
                              std::int64_t syn_ack_count);

  [[nodiscard]] bool trained() const { return tuned_.has_value(); }
  /// The learned parameters (universal parameters until trained).
  [[nodiscard]] const SynDogParams& active_params() const;
  [[nodiscard]] double learned_c() const { return x_stats_.mean(); }
  [[nodiscard]] double learned_sigma() const { return x_stats_.stddev(); }
  /// Detection floor under the active parameters at the current K.
  [[nodiscard]] double min_detectable_rate() const;

 private:
  void maybe_finish_training();

  AdaptiveParams params_;
  SynDog detector_;
  stats::OnlineStats x_stats_;
  std::optional<SynDogParams> tuned_;
};

}  // namespace syndog::core
