// The SYN-dog detection core (paper §3).
//
// Per observation period t0, the router reports the number of outgoing
// SYNs and incoming SYN/ACKs. SYN-dog then computes
//
//   K(n)  = alpha*K(n-1) + (1-alpha)*SYNACK(n)      (Eq. 1, EWMA level)
//   Delta = SYN(n) - SYNACK(n)
//   Xn    = Delta / K(n-1)                           (normalization)
//   yn    = max(0, y(n-1) + Xn - a)                  (Eq. 2, CUSUM)
//   alarm iff yn > N                                 (Eq. 4)
//
// Only two counters and three scalars of state: the statelessness that
// makes the agent itself immune to flooding. Normalizing by K removes
// dependence on site size and time-of-day, so a = 0.35, N = 1.05 work
// universally (h = 2a = 0.7 is the designed attack drift; N is chosen for
// a 3-period target detection time via Eq. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/detect/cusum.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/util/time.hpp"

namespace syndog::core {

struct SynDogParams {
  double a = 0.35;           ///< upper bound on E[Xn] under normal operation
  double h = 0.70;           ///< assumed attack drift lower bound (= 2a)
  double threshold = 1.05;   ///< flooding threshold N
  double ewma_alpha = 0.9;   ///< memory of the K estimator (Eq. 1)
  util::SimTime observation_period = util::SimTime::seconds(20);  ///< t0
  /// Floor applied to K before dividing, so an idle link (K -> 0) degrades
  /// into "count raw SYNs" instead of dividing by zero.
  double k_floor = 1.0;
  /// Bounded-CUSUM cap on yn (0 = unbounded, the paper's exact form).
  /// Capping at a few multiples of N bounds how long the alarm outlives a
  /// long flood without changing when it fires.
  double statistic_cap = 0.0;
  /// Floor applied to Xn: Xn := max(Xn, -x_clamp_negative). The paper's
  /// normal model assumes E[Xn] <= a with small variance; a fault (SYN/ACK
  /// burst released after an outage, duplicated SYN/ACKs, replayed
  /// retransmissions) can produce SYNACK >> SYN in one period and an
  /// arbitrarily negative Xn. Since yn = max(0, y+Xn-a) already absorbs
  /// any single negative step, the clamp only limits how much *credit* a
  /// fault can bank against the alarm — it cannot delay detection of a
  /// genuine flood by more than one period's worth of drift. 0 disables
  /// (paper-exact behaviour).
  double x_clamp_negative = 0.7;

  void validate() const;

  /// The paper's universal parameterization (§3.2).
  [[nodiscard]] static SynDogParams paper_defaults() { return {}; }
  /// The site-tuned variant of §4.2.3 / Fig. 9: a=0.2, N=0.6 (UNC), which
  /// lowers f_min from 37 to ~15 SYN/s without added false alarms.
  [[nodiscard]] static SynDogParams site_tuned_unc();
};

/// Everything SYN-dog derives in one observation period.
struct PeriodReport {
  std::int64_t period_index = 0;
  std::int64_t syn_count = 0;      ///< outgoing SYNs this period
  std::int64_t syn_ack_count = 0;  ///< incoming SYN/ACKs this period
  double k_estimate = 0.0;         ///< K(n) after the update
  double delta = 0.0;              ///< SYN - SYNACK
  double x = 0.0;                  ///< normalized difference Xn
  double y = 0.0;                  ///< CUSUM statistic yn
  bool alarm = false;              ///< yn > N
  bool x_clamped = false;          ///< Xn hit the negative clamp

  /// Exact (bitwise on the doubles) comparison; the campaign
  /// oracle-equivalence tests compare whole period tables with this.
  [[nodiscard]] bool operator==(const PeriodReport&) const = default;
};

class SynDog {
 public:
  explicit SynDog(SynDogParams params);

  /// Feeds one period's counters; returns the full derivation.
  PeriodReport observe_period(std::int64_t syn_count,
                              std::int64_t syn_ack_count);

  /// Attaches telemetry sinks; both optional (nullptr detaches) and must
  /// outlive the detector. Each observe_period() then records an
  /// obs::CusumUpdate — and obs::AlarmRaised / obs::AlarmCleared on alarm
  /// edges — timestamped at `epoch + (n+1)·t0` (the end of period n on the
  /// DES clock; an agent passes its attach time as the epoch), and updates
  /// the "syndog.*" instruments in `registry`. Purely observational:
  /// detection behaviour is identical with or without sinks.
  void attach_observer(obs::EventTracer* tracer, obs::Registry* registry,
                       util::SimTime epoch = util::SimTime::zero());

  [[nodiscard]] const SynDogParams& params() const { return params_; }
  [[nodiscard]] double y() const { return cusum_.statistic(); }
  [[nodiscard]] double k() const;
  [[nodiscard]] std::int64_t periods_observed() const { return periods_; }
  /// Periods the detector knows it missed (note_gap_periods).
  [[nodiscard]] std::int64_t gap_periods() const { return gap_periods_; }
  /// True if the most recent period alarmed.
  [[nodiscard]] bool alarmed() const { return last_alarm_; }
  void reset();

  /// Quarantined self-reset: zeroes the CUSUM statistic and the alarm
  /// latch but *keeps* the K estimate and the period counter. Used after a
  /// blind interval (sniffer outage, link death): the accumulated yn is
  /// contaminated by the fault, but K reflects slow site-level state that
  /// an outage does not invalidate.
  void rearm();

  /// Accounts `n` observation periods the sniffers missed entirely (tap
  /// outage, stalled timer). The period index advances so the tracer
  /// timeline stays aligned with the DES clock, and the miss is counted —
  /// K and yn are left untouched, because "no data" is not "zero SYNs":
  /// feeding zeros would both crash K and bank spurious negative drift.
  void note_gap_periods(std::int64_t n);

  /// Eq. (8): the minimum attack SYN rate this instance can eventually
  /// detect, f_min = (a - c) * K / t0, evaluated at the current K estimate
  /// and an assumed normal mean c (default 0, the paper's conservative
  /// choice).
  [[nodiscard]] double min_detectable_rate(double c = 0.0) const;
  [[nodiscard]] static double min_detectable_rate(double a, double c,
                                                  double k_bar,
                                                  util::SimTime t0);

  /// Eq. (7): conservative detection delay (in periods) for an attack of
  /// rate `fi` SYN/s, given the current K estimate:
  /// N / (fi*t0/K + c - a). +inf below the detectable floor.
  [[nodiscard]] double expected_detection_periods(double fi,
                                                  double c = 0.0) const;

 private:
  SynDogParams params_;
  detect::NonParametricCusum cusum_;
  stats::Ewma k_;
  std::int64_t periods_ = 0;
  std::int64_t gap_periods_ = 0;
  bool last_alarm_ = false;

  // Telemetry sinks (optional; see attach_observer). The registry pointer
  // is kept so fault-only instruments ("syndog.gap_periods",
  // "syndog.x_clamped_periods") can be created lazily: they appear in a
  // snapshot only once the condition has occurred, keeping fault-free runs
  // byte-identical to builds that predate them.
  obs::EventTracer* tracer_ = nullptr;
  util::SimTime trace_epoch_;
  obs::Registry* registry_ = nullptr;
  obs::Counter* periods_counter_ = nullptr;
  obs::Counter* alarm_periods_counter_ = nullptr;
  obs::Counter* alarms_raised_counter_ = nullptr;
  obs::Gauge* k_gauge_ = nullptr;
  obs::Gauge* y_gauge_ = nullptr;
};

/// Batch helper: runs SYN-dog over parallel per-period count series and
/// returns the reports (used by the trace-driven benches and tests). When
/// telemetry sinks are given they are attached for the run (epoch 0), so
/// the traced {Δn, K, Xn, yn} stream mirrors the returned reports.
[[nodiscard]] std::vector<PeriodReport> run_over_series(
    const SynDogParams& params, const std::vector<std::int64_t>& syns,
    const std::vector<std::int64_t>& syn_acks,
    obs::EventTracer* tracer = nullptr, obs::Registry* registry = nullptr);

}  // namespace syndog::core
