#include "syndog/core/mitigate.hpp"

#include <stdexcept>

#include "syndog/util/rng.hpp"

namespace syndog::core {

std::uint32_t SynCookieCodec::mac(const ConnKey& key,
                                  std::uint32_t client_isn,
                                  std::uint64_t counter) const {
  // Two SplitMix64 rounds keyed by the secret; cheap and adequate for a
  // simulation-grade keyed hash.
  std::uint64_t x = secret_;
  x = util::splitmix64(x ^ key.packed());
  x = util::splitmix64(x ^ client_isn);
  x = util::splitmix64(x ^ counter);
  return static_cast<std::uint32_t>(x >> 32);
}

std::uint32_t SynCookieCodec::make(const ConnKey& key,
                                   std::uint32_t client_isn,
                                   std::uint64_t time_counter) const {
  // Top 29 bits: truncated MAC; bottom 3 bits: time counter mod 8.
  const std::uint32_t tag = mac(key, client_isn, time_counter) & ~0x7u;
  return tag | static_cast<std::uint32_t>(time_counter & 0x7);
}

bool SynCookieCodec::verify(const ConnKey& key, std::uint32_t client_isn,
                            std::uint32_t cookie,
                            std::uint64_t now_counter) const {
  const std::uint32_t encoded = cookie & 0x7;
  // Accept the current and previous counter window whose low bits match.
  for (std::uint64_t back = 0; back <= 1; ++back) {
    if (now_counter < back) break;
    const std::uint64_t counter = now_counter - back;
    if ((counter & 0x7) != encoded) continue;
    if (make(key, client_isn, counter) == cookie) return true;
  }
  return false;
}

SynCache::SynCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("SynCache: capacity must be at least 1");
  }
}

SynCache::AdmitResult SynCache::admit(const ConnKey& key, util::SimTime now) {
  const std::uint64_t packed = key.packed();
  if (index_.contains(packed)) {
    ++stats_.duplicates;
    return AdmitResult::kDuplicate;
  }
  bool evicted = false;
  if (order_.size() >= capacity_) {
    // Oldest-first eviction: the flood's spoofed entries are usually the
    // oldest (no ACK ever completes them), but under sustained overload
    // legitimate half-opens get evicted too — the failure the stats show.
    index_.erase(order_.front().key.packed());
    order_.pop_front();
    ++stats_.evictions;
    evicted = true;
  }
  order_.push_back(Entry{key, now});
  index_[packed] = std::prev(order_.end());
  ++stats_.admitted;
  return evicted ? AdmitResult::kAdmittedWithEviction
                 : AdmitResult::kAdmitted;
}

bool SynCache::complete(const ConnKey& key) {
  const auto it = index_.find(key.packed());
  if (it == index_.end()) {
    ++stats_.completion_misses;
    return false;
  }
  order_.erase(it->second);
  index_.erase(it);
  ++stats_.completions;
  return true;
}

std::size_t SynCache::expire(util::SimTime now, util::SimTime age) {
  std::size_t dropped = 0;
  while (!order_.empty() && order_.front().admitted_at + age <= now) {
    index_.erase(order_.front().key.packed());
    order_.pop_front();
    ++dropped;
    ++stats_.expirations;
  }
  return dropped;
}

}  // namespace syndog::core
