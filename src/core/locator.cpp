#include "syndog/core/locator.hpp"

#include <algorithm>

#include "syndog/classify/segment.hpp"

namespace syndog::core {

void SourceLocator::on_packet(util::SimTime at, const net::Packet& packet) {
  if (classify::classify_packet(packet) != classify::SegmentKind::kSyn) {
    return;
  }
  Suspect& entry = by_mac_[packet.eth.src];
  if (entry.total_syns == 0) {
    entry.mac = packet.eth.src;
    entry.first_seen = at;
  }
  entry.last_seen = at;
  ++entry.total_syns;
  if (!stub_prefix_.contains(packet.ip.src)) {
    ++entry.spoofed_syns;
    ++spoofed_total_;
  }
}

std::vector<Suspect> SourceLocator::suspects() const {
  std::vector<Suspect> out;
  for (const auto& [mac, entry] : by_mac_) {
    if (entry.spoofed_syns > 0) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const Suspect& a, const Suspect& b) {
    return a.spoofed_syns > b.spoofed_syns;
  });
  return out;
}

std::vector<Suspect> SourceLocator::stations() const {
  std::vector<Suspect> out;
  out.reserve(by_mac_.size());
  for (const auto& [mac, entry] : by_mac_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Suspect& a, const Suspect& b) {
    return a.total_syns > b.total_syns;
  });
  return out;
}

void SourceLocator::reset() {
  by_mac_.clear();
  spoofed_total_ = 0;
}

}  // namespace syndog::core
