#include "syndog/core/aggregator.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndog::core {

AlarmAggregator::AlarmAggregator(util::SimTime observation_period,
                                 double assumed_c)
    : observation_period_(observation_period), assumed_c_(assumed_c) {
  if (observation_period_ <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "AlarmAggregator: observation period must be positive");
  }
  if (assumed_c_ < 0.0) {
    throw std::invalid_argument("AlarmAggregator: assumed_c must be >= 0");
  }
}

void AlarmAggregator::report(const std::string& name,
                             const AlarmEvent& event) {
  StubAlarm& entry = stubs_[name];
  entry.stub_name = name;
  entry.at = event.at;
  // Delta contains the flood plus the normal shortfall c*K; subtract the
  // latter to estimate the flood's own contribution. The CUSUM statistic
  // keeps alarming for a while after a flood stops (its decay is
  // gradual), during which delta is back to normal — so the episode's
  // *peak* per-period estimate is the meaningful rate, not the latest.
  const double excess =
      event.report.delta - assumed_c_ * event.report.k_estimate;
  entry.estimated_rate =
      std::max(entry.estimated_rate,
               std::max(0.0, excess) / observation_period_.to_seconds());
  entry.suspects = event.suspects;
}

void AlarmAggregator::clear(const std::string& name) { stubs_.erase(name); }

double AlarmAggregator::estimated_aggregate_rate() const {
  double total = 0.0;
  for (const auto& [name, alarm] : stubs_) {
    total += alarm.estimated_rate;
  }
  return total;
}

std::vector<AlarmAggregator::StubAlarm> AlarmAggregator::snapshot() const {
  std::vector<StubAlarm> out;
  out.reserve(stubs_.size());
  for (const auto& [name, alarm] : stubs_) out.push_back(alarm);
  std::sort(out.begin(), out.end(),
            [](const StubAlarm& a, const StubAlarm& b) {
              return a.estimated_rate > b.estimated_rate;
            });
  return out;
}

}  // namespace syndog::core
