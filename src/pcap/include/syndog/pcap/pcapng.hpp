// pcapng (pcap next generation) capture-file I/O, implemented from
// scratch per the IETF draft-tuexen-opsawg-pcapng block format.
//
// Supported blocks: Section Header (SHB), Interface Description (IDB),
// and Enhanced Packet (EPB); unknown block types are skipped, as the
// format requires. The writer emits one section with one Ethernet
// interface at nanosecond resolution (if_tsresol = 9); the reader
// handles either endianness (byte-order magic 0x1A2B3C4D), multiple
// sections, multiple interfaces, and per-interface timestamp
// resolutions.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "syndog/pcap/pcap.hpp"

namespace syndog::pcap {

/// Writes a single-section, single-interface pcapng stream. Every write
/// checks the ostream state and throws std::runtime_error on failure
/// instead of silently producing a short file.
class PcapngWriter {
 public:
  explicit PcapngWriter(std::ostream& out,
                        LinkType link_type = LinkType::kEthernet,
                        std::uint32_t snaplen = 65535);

  /// Appends one Enhanced Packet Block; timestamps are nanoseconds.
  void write(util::SimTime timestamp, net::ByteSpan frame);

  /// Flushes the underlying stream and throws if any buffered byte failed
  /// to reach it (ofstream destructors swallow that error otherwise).
  void flush();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
  std::uint64_t records_ = 0;
};

/// Reads pcapng streams; yields the same Record type as the classic
/// reader so downstream analysis is format-agnostic. A stream that ends
/// mid-block terminates with end_state() == ReadEnd::kTruncated.
class PcapngReader {
 public:
  explicit PcapngReader(std::istream& in);

  /// Next packet record, or nullopt at end of stream. Non-packet blocks
  /// are consumed transparently.
  [[nodiscard]] std::optional<Record> next();
  /// Incremental form: overwrites `out`, reusing its buffer capacity so
  /// steady-state streaming performs no allocation. Returns false at end
  /// of stream (consult end_state() for why).
  [[nodiscard]] bool next_into(Record& out);
  [[nodiscard]] std::vector<Record> read_all();

  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  /// kStreaming until next()/next_into() returns empty, then kEof or
  /// kTruncated.
  [[nodiscard]] ReadEnd end_state() const { return end_; }
  [[nodiscard]] bool truncated() const {
    return end_ == ReadEnd::kTruncated;
  }
  /// Link type of the interface the last record arrived on.
  [[nodiscard]] LinkType last_link_type() const { return last_link_; }

 private:
  struct Interface {
    LinkType link_type = LinkType::kEthernet;
    /// Ticks per second of this interface's timestamps.
    std::uint64_t ticks_per_second = 1'000'000;
  };

  [[nodiscard]] bool read_block(Record& out, bool& have_record);
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;
  [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const;
  void parse_section_header(const std::vector<std::uint8_t>& body);
  void parse_interface_block(const std::vector<std::uint8_t>& body);
  [[nodiscard]] bool parse_packet_block(const std::vector<std::uint8_t>& body,
                                        Record& out) const;

  std::istream& in_;
  bool swapped_ = false;
  bool in_section_ = false;
  std::vector<Interface> interfaces_;
  std::vector<std::uint8_t> block_scratch_;  ///< reused block-body buffer
  std::uint64_t records_ = 0;
  ReadEnd end_ = ReadEnd::kStreaming;
  LinkType last_link_ = LinkType::kEthernet;
};

/// Sniffs the first bytes of a stream and constructs the right reader;
/// returns records from either format. Throws on unrecognizable input.
[[nodiscard]] std::vector<Record> read_any_capture(std::istream& in);

}  // namespace syndog::pcap
