// Classic libpcap capture-file I/O, implemented from scratch.
//
// Synthetic traces round-trip through real `.pcap` files so the example
// tools behave like ordinary libpcap utilities (and outputs can be opened
// in tcpdump/wireshark). Supports the standard magic 0xa1b2c3d4
// (microsecond) and 0xa1b23c4d (nanosecond) in either byte order.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "syndog/net/wire.hpp"
#include "syndog/util/time.hpp"

namespace syndog::pcap {

/// Link types we write/accept; Ethernet is what leaf-router captures use.
enum class LinkType : std::uint32_t {
  kEthernet = 1,
  kRawIp = 101,
};

struct FileHeader {
  static constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
  static constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;

  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::int32_t thiszone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 65535;
  LinkType link_type = LinkType::kEthernet;
  bool nanosecond = false;   ///< timestamp resolution of the file
  bool swapped = false;      ///< file byte order differs from host (read side)
};

struct Record {
  util::SimTime timestamp;
  std::uint32_t orig_len = 0;  ///< length on the wire (>= data.size())
  net::ByteBuffer data;        ///< captured bytes (possibly snapped)
};

/// Streams records into a pcap file. The stream must outlive the writer.
/// Errors (I/O failure, oversized record) throw std::runtime_error.
class Writer {
 public:
  /// Writes the file header immediately.
  Writer(std::ostream& out, LinkType link_type = LinkType::kEthernet,
         bool nanosecond = false, std::uint32_t snaplen = 65535);

  /// Appends one record; data beyond snaplen is truncated (orig_len keeps
  /// the full size, like a real capture with -s).
  void write(util::SimTime timestamp, net::ByteSpan frame);

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  FileHeader header_;
  std::uint64_t records_ = 0;
};

/// Reads records from a pcap file, tolerating either byte order and either
/// timestamp resolution. A malformed header throws std::runtime_error;
/// a truncated final record is reported via truncated().
class Reader {
 public:
  explicit Reader(std::istream& in);

  [[nodiscard]] const FileHeader& header() const { return header_; }
  /// Next record, or nullopt at end of file.
  [[nodiscard]] std::optional<Record> next();
  /// Remaining records in one vector.
  [[nodiscard]] std::vector<Record> read_all();
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  /// True if the file ended mid-record (damaged capture).
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;
  [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const;

  std::istream& in_;
  FileHeader header_;
  std::uint64_t records_ = 0;
  bool truncated_ = false;
};

/// Convenience wrappers over file paths.
void write_file(const std::string& path, const std::vector<Record>& records,
                LinkType link_type = LinkType::kEthernet,
                bool nanosecond = false);
[[nodiscard]] std::vector<Record> read_file(const std::string& path);

}  // namespace syndog::pcap
