// Classic libpcap capture-file I/O, implemented from scratch.
//
// Synthetic traces round-trip through real `.pcap` files so the example
// tools behave like ordinary libpcap utilities (and outputs can be opened
// in tcpdump/wireshark). Supports the standard magic 0xa1b2c3d4
// (microsecond) and 0xa1b23c4d (nanosecond) in either byte order.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "syndog/net/wire.hpp"
#include "syndog/util/time.hpp"

namespace syndog::pcap {

/// Link types we write/accept; Ethernet is what leaf-router captures use.
enum class LinkType : std::uint32_t {
  kEthernet = 1,
  kRawIp = 101,
};

struct FileHeader {
  static constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
  static constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;

  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::int32_t thiszone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 65535;
  LinkType link_type = LinkType::kEthernet;
  bool nanosecond = false;   ///< timestamp resolution of the file
  bool swapped = false;      ///< file byte order differs from host (read side)
};

struct Record {
  util::SimTime timestamp;
  std::uint32_t orig_len = 0;  ///< length on the wire (>= data.size())
  net::ByteBuffer data;        ///< captured bytes (possibly snapped)
};

/// Why a reader stopped yielding records. `kTruncated` is a *distinct*
/// terminal state: the stream ended (or turned to garbage) mid-record, so
/// the capture is damaged and counts derived from it are a lower bound.
/// Callers that previously treated "no more records" as clean EOF can now
/// tell the two ends apart; the ingest pipeline surfaces kTruncated as an
/// obs counter.
enum class ReadEnd : std::uint8_t {
  kStreaming = 0,  ///< not terminal: more records may follow
  kEof = 1,        ///< clean end of stream after a whole record
  kTruncated = 2,  ///< stream ended mid-record / corrupt record framing
};

/// Streams records into a pcap file. The stream must outlive the writer.
/// Every write checks the ostream state and throws std::runtime_error on
/// failure (disk full, closed pipe) instead of silently producing a short
/// file; call flush() before relying on the bytes being on disk.
class Writer {
 public:
  /// Writes the file header immediately.
  Writer(std::ostream& out, LinkType link_type = LinkType::kEthernet,
         bool nanosecond = false, std::uint32_t snaplen = 65535);

  /// Appends one record; data beyond snaplen is truncated (orig_len keeps
  /// the full size, like a real capture with -s).
  void write(util::SimTime timestamp, net::ByteSpan frame);

  /// Flushes the underlying stream and throws if any buffered byte failed
  /// to reach it (ofstream destructors swallow that error otherwise).
  void flush();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  FileHeader header_;
  std::uint64_t records_ = 0;
};

/// Reads records from a pcap file, tolerating either byte order and either
/// timestamp resolution. A malformed header throws std::runtime_error; a
/// stream that ends mid-record terminates with end_state() == kTruncated
/// (never silently mistaken for clean EOF, even when the cut lands inside
/// the first header field).
class Reader {
 public:
  explicit Reader(std::istream& in);

  [[nodiscard]] const FileHeader& header() const { return header_; }
  /// Next record, or nullopt at end of file.
  [[nodiscard]] std::optional<Record> next();
  /// Incremental form: overwrites `out`, reusing its buffer capacity so
  /// steady-state streaming performs no allocation. Returns false at end
  /// of stream (consult end_state() for why).
  [[nodiscard]] bool next_into(Record& out);
  /// Remaining records in one vector.
  [[nodiscard]] std::vector<Record> read_all();
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  /// kStreaming until next()/next_into() returns empty, then kEof or
  /// kTruncated.
  [[nodiscard]] ReadEnd end_state() const { return end_; }
  /// True if the file ended mid-record (damaged capture).
  [[nodiscard]] bool truncated() const {
    return end_ == ReadEnd::kTruncated;
  }

 private:
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;
  [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const;

  std::istream& in_;
  FileHeader header_;
  std::uint64_t records_ = 0;
  ReadEnd end_ = ReadEnd::kStreaming;
};

/// Convenience wrappers over file paths.
void write_file(const std::string& path, const std::vector<Record>& records,
                LinkType link_type = LinkType::kEthernet,
                bool nanosecond = false);
[[nodiscard]] std::vector<Record> read_file(const std::string& path);

}  // namespace syndog::pcap
