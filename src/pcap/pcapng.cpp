#include "syndog/pcap/pcapng.hpp"

#include <cstring>
#include <stdexcept>

#include "syndog/net/wire.hpp"

namespace syndog::pcap {

namespace {

using net::byteswap16;
using net::byteswap32;

constexpr std::uint32_t kSectionHeaderBlock = 0x0a0d0d0a;
constexpr std::uint32_t kInterfaceBlock = 0x00000001;
constexpr std::uint32_t kEnhancedPacketBlock = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1a2b3c4d;
constexpr std::uint32_t kByteOrderMagicSwapped = 0x4d3c2b1a;
constexpr std::uint16_t kOptionEnd = 0;
constexpr std::uint16_t kOptionTsResol = 9;

void put_le16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v));
  out.push_back(static_cast<char>(v >> 8));
}
void put_le32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void pad4(std::string& out) {
  while (out.size() % 4 != 0) out.push_back('\0');
}

/// Wraps a body in the (type, length, body, length) frame and emits it.
void emit_block(std::ostream& out, std::uint32_t type, std::string body) {
  pad4(body);
  const auto total = static_cast<std::uint32_t>(body.size() + 12);
  std::string block;
  put_le32(block, type);
  put_le32(block, total);
  block += body;
  put_le32(block, total);
  out.write(block.data(), static_cast<std::streamsize>(block.size()));
  if (!out) throw std::runtime_error("pcapng: write failed");
}

std::uint16_t read_u16_at(const std::vector<std::uint8_t>& b, std::size_t i) {
  return net::load_le16(b.data() + i);
}
std::uint32_t read_u32_at(const std::vector<std::uint8_t>& b, std::size_t i) {
  return net::load_le32(b.data() + i);
}

}  // namespace

PcapngWriter::PcapngWriter(std::ostream& out, LinkType link_type,
                           std::uint32_t snaplen)
    : out_(out), snaplen_(snaplen) {
  // Section Header Block.
  std::string shb;
  put_le32(shb, kByteOrderMagic);
  put_le16(shb, 1);  // major
  put_le16(shb, 0);  // minor
  put_le64(shb, UINT64_MAX);  // section length unknown
  emit_block(out_, kSectionHeaderBlock, std::move(shb));

  // Interface Description Block with if_tsresol = 9 (nanoseconds).
  std::string idb;
  put_le16(idb, static_cast<std::uint16_t>(link_type));
  put_le16(idb, 0);  // reserved
  put_le32(idb, snaplen_);
  put_le16(idb, kOptionTsResol);
  put_le16(idb, 1);
  idb.push_back(9);
  pad4(idb);
  put_le16(idb, kOptionEnd);
  put_le16(idb, 0);
  emit_block(out_, kInterfaceBlock, std::move(idb));
}

void PcapngWriter::write(util::SimTime timestamp, net::ByteSpan frame) {
  if (timestamp < util::SimTime::zero()) {
    throw std::runtime_error("pcapng: negative timestamp");
  }
  const auto ticks = static_cast<std::uint64_t>(timestamp.ns());
  const auto incl = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), snaplen_));

  std::string epb;
  put_le32(epb, 0);  // interface id
  put_le32(epb, static_cast<std::uint32_t>(ticks >> 32));
  put_le32(epb, static_cast<std::uint32_t>(ticks));
  put_le32(epb, incl);
  put_le32(epb, static_cast<std::uint32_t>(frame.size()));
  epb.append(reinterpret_cast<const char*>(frame.data()), incl);
  emit_block(out_, kEnhancedPacketBlock, std::move(epb));
  ++records_;
}

void PcapngWriter::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("pcapng: flush failed");
}

PcapngReader::PcapngReader(std::istream& in) : in_(in) {}

std::uint32_t PcapngReader::fix32(std::uint32_t v) const {
  return swapped_ ? byteswap32(v) : v;
}
std::uint16_t PcapngReader::fix16(std::uint16_t v) const {
  return swapped_ ? byteswap16(v) : v;
}

void PcapngReader::parse_section_header(
    const std::vector<std::uint8_t>& body) {
  if (body.size() < 12) throw std::runtime_error("pcapng: short SHB");
  // Endianness was already fixed by the caller via the byte-order magic.
  interfaces_.clear();
  in_section_ = true;
}

void PcapngReader::parse_interface_block(
    const std::vector<std::uint8_t>& body) {
  if (body.size() < 8) throw std::runtime_error("pcapng: short IDB");
  Interface iface;
  iface.link_type = static_cast<LinkType>(fix16(read_u16_at(body, 0)));
  // Walk options for if_tsresol.
  std::size_t at = 8;
  while (at + 4 <= body.size()) {
    const std::uint16_t code = fix16(read_u16_at(body, at));
    const std::uint16_t len = fix16(read_u16_at(body, at + 2));
    at += 4;
    if (code == kOptionEnd) break;
    if (code == kOptionTsResol && len >= 1 && at < body.size()) {
      const std::uint8_t resol = body[at];
      if ((resol & 0x80) != 0) {
        iface.ticks_per_second = std::uint64_t{1} << (resol & 0x7f);
      } else {
        iface.ticks_per_second = 1;
        for (int i = 0; i < (resol & 0x7f); ++i) {
          iface.ticks_per_second *= 10;
        }
      }
    }
    at += (len + 3u) & ~3u;
  }
  interfaces_.push_back(iface);
}

bool PcapngReader::parse_packet_block(const std::vector<std::uint8_t>& body,
                                      Record& out) const {
  if (body.size() < 20) return false;
  const std::uint32_t iface_id = fix32(read_u32_at(body, 0));
  const std::uint64_t ticks =
      (std::uint64_t{fix32(read_u32_at(body, 4))} << 32) |
      fix32(read_u32_at(body, 8));
  const std::uint32_t incl = fix32(read_u32_at(body, 12));
  const std::uint32_t orig = fix32(read_u32_at(body, 16));
  if (body.size() < 20 + incl) return false;
  if (iface_id >= interfaces_.size()) return false;

  const Interface& iface = interfaces_[iface_id];
  out.orig_len = orig;
  out.data.assign(body.begin() + 20, body.begin() + 20 + incl);
  // Convert interface ticks to nanoseconds.
  const std::uint64_t tps = iface.ticks_per_second;
  const std::uint64_t seconds = ticks / tps;
  const std::uint64_t frac = ticks % tps;
  out.timestamp = util::SimTime::nanoseconds(
      static_cast<std::int64_t>(seconds * 1'000'000'000ULL +
                                frac * 1'000'000'000ULL / tps));
  return true;
}

bool PcapngReader::read_block(Record& out, bool& have_record) {
  std::uint8_t header[8];
  in_.read(reinterpret_cast<char*>(header), 8);
  if (in_.gcount() == 0) {
    end_ = ReadEnd::kEof;
    return false;
  }
  if (in_.gcount() != 8) {
    end_ = ReadEnd::kTruncated;
    return false;
  }
  std::vector<std::uint8_t> raw(header, header + 8);
  std::uint32_t type = read_u32_at(raw, 0);
  std::uint32_t total = read_u32_at(raw, 4);

  if (type == kSectionHeaderBlock) {
    // Peek the byte-order magic to establish endianness for this section
    // (the total length itself is endian-dependent).
    std::uint8_t magic_bytes[4];
    in_.read(reinterpret_cast<char*>(magic_bytes), 4);
    if (in_.gcount() != 4) {
      end_ = ReadEnd::kTruncated;
      return false;
    }
    const std::uint32_t magic = net::load_le32(magic_bytes);
    if (magic == kByteOrderMagic) {
      swapped_ = false;
    } else if (magic == kByteOrderMagicSwapped) {
      swapped_ = true;
    } else {
      throw std::runtime_error("pcapng: bad byte-order magic");
    }
    total = fix32(total);
    // Bound the SHB body like any other block: a corrupt length field must
    // not translate into a multi-gigabyte allocation.
    if (total < 28 || total % 4 != 0 || total > (1u << 26)) {
      throw std::runtime_error("pcapng: bad SHB length");
    }
    block_scratch_.resize(total - 12);
    std::memcpy(block_scratch_.data(), magic_bytes, 4);
    in_.read(reinterpret_cast<char*>(block_scratch_.data() + 4),
             static_cast<std::streamsize>(block_scratch_.size() - 4));
    if (static_cast<std::size_t>(in_.gcount()) != block_scratch_.size() - 4) {
      end_ = ReadEnd::kTruncated;
      return false;
    }
    // Trailing length (ignored beyond consumption).
    char trailer[4];
    in_.read(trailer, 4);
    if (in_.gcount() != 4) {
      end_ = ReadEnd::kTruncated;
      return false;
    }
    parse_section_header(block_scratch_);
    return true;
  }

  if (!in_section_) {
    throw std::runtime_error("pcapng: data before section header");
  }
  // The SHB type is a palindrome; every other block's type needs the
  // section's byte order applied.
  type = fix32(type);
  total = fix32(total);
  if (total < 12 || total % 4 != 0 || total > (1u << 26)) {
    end_ = ReadEnd::kTruncated;
    return false;
  }
  block_scratch_.resize(total - 12);
  in_.read(reinterpret_cast<char*>(block_scratch_.data()),
           static_cast<std::streamsize>(block_scratch_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != block_scratch_.size()) {
    end_ = ReadEnd::kTruncated;
    return false;
  }
  char trailer[4];
  in_.read(trailer, 4);
  if (in_.gcount() != 4) {
    end_ = ReadEnd::kTruncated;
    return false;
  }

  switch (type) {
    case kInterfaceBlock:
      parse_interface_block(block_scratch_);
      break;
    case kEnhancedPacketBlock: {
      if (parse_packet_block(block_scratch_, out)) {
        const std::uint32_t iface_id = fix32(read_u32_at(block_scratch_, 0));
        last_link_ = interfaces_[iface_id].link_type;
        have_record = true;
      }
      break;
    }
    default:
      // Unknown block types are skipped, per the specification.
      break;
  }
  return true;
}

bool PcapngReader::next_into(Record& out) {
  if (end_ != ReadEnd::kStreaming) return false;
  bool have_record = false;
  while (!have_record) {
    if (!read_block(out, have_record)) return false;
  }
  ++records_;
  return true;
}

std::optional<Record> PcapngReader::next() {
  Record rec;
  if (!next_into(rec)) return std::nullopt;
  return rec;
}

std::vector<Record> PcapngReader::read_all() {
  std::vector<Record> out;
  while (auto rec = next()) {
    out.push_back(std::move(*rec));
  }
  return out;
}

std::vector<Record> read_any_capture(std::istream& in) {
  // Sniff the first 4 bytes.
  char magic_bytes[4];
  in.read(magic_bytes, 4);
  if (in.gcount() != 4) {
    throw std::runtime_error("capture: file too short");
  }
  for (int i = 3; i >= 0; --i) in.putback(magic_bytes[i]);

  std::uint32_t magic = 0;
  std::memcpy(&magic, magic_bytes, 4);
  std::uint32_t le_magic = 0;
  for (int i = 3; i >= 0; --i) {
    le_magic = (le_magic << 8) |
               static_cast<std::uint8_t>(magic_bytes[i]);
  }
  if (le_magic == kSectionHeaderBlock) {
    PcapngReader reader(in);
    return reader.read_all();
  }
  Reader reader(in);  // classic pcap (throws on bad magic)
  return reader.read_all();
}

}  // namespace syndog::pcap
