#include "syndog/pcap/pcap.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "syndog/net/wire.hpp"

namespace syndog::pcap {

namespace {

using net::byteswap16;
using net::byteswap32;
using net::load_le16;
using net::load_le32;

// pcap files are written in the *host* byte order of the capturing machine;
// we always emit little-endian (the dominant convention) and byte-swap on
// read when the magic indicates the other order.

void put_le16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void put_le32(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
  out.write(bytes, 4);
}

bool get_le32(std::istream& in, std::uint32_t& v) {
  std::uint8_t bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (in.gcount() != 4) return false;
  v = load_le32(bytes);
  return true;
}

bool get_le16(std::istream& in, std::uint16_t& v) {
  std::uint8_t bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  if (in.gcount() != 2) return false;
  v = load_le16(bytes);
  return true;
}

}  // namespace

Writer::Writer(std::ostream& out, LinkType link_type, bool nanosecond,
               std::uint32_t snaplen)
    : out_(out) {
  header_.link_type = link_type;
  header_.nanosecond = nanosecond;
  header_.snaplen = snaplen;
  put_le32(out_, nanosecond ? FileHeader::kMagicNanos
                            : FileHeader::kMagicMicros);
  put_le16(out_, header_.version_major);
  put_le16(out_, header_.version_minor);
  put_le32(out_, static_cast<std::uint32_t>(header_.thiszone));
  put_le32(out_, header_.sigfigs);
  put_le32(out_, header_.snaplen);
  put_le32(out_, static_cast<std::uint32_t>(header_.link_type));
  if (!out_) throw std::runtime_error("pcap::Writer: header write failed");
}

void Writer::write(util::SimTime timestamp, net::ByteSpan frame) {
  if (timestamp < util::SimTime::zero()) {
    throw std::runtime_error("pcap::Writer: negative timestamp");
  }
  const std::int64_t ns = timestamp.ns();
  const auto sec = static_cast<std::uint32_t>(ns / 1'000'000'000);
  const std::int64_t frac_ns = ns % 1'000'000'000;
  const auto frac = static_cast<std::uint32_t>(
      header_.nanosecond ? frac_ns : frac_ns / 1'000);

  const auto incl =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(),
                                                       header_.snaplen));
  put_le32(out_, sec);
  put_le32(out_, frac);
  put_le32(out_, incl);
  put_le32(out_, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()), incl);
  if (!out_) throw std::runtime_error("pcap::Writer: record write failed");
  ++records_;
}

Reader::Reader(std::istream& in) : in_(in) {
  std::uint32_t magic = 0;
  if (!get_le32(in_, magic)) {
    throw std::runtime_error("pcap::Reader: empty file");
  }
  switch (magic) {
    case FileHeader::kMagicMicros:
      break;
    case FileHeader::kMagicNanos:
      header_.nanosecond = true;
      break;
    case byteswap32(FileHeader::kMagicMicros):
      header_.swapped = true;
      break;
    case byteswap32(FileHeader::kMagicNanos):
      header_.swapped = true;
      header_.nanosecond = true;
      break;
    default:
      throw std::runtime_error("pcap::Reader: bad magic number");
  }
  std::uint16_t vmaj = 0;
  std::uint16_t vmin = 0;
  std::uint32_t thiszone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t link = 0;
  if (!get_le16(in_, vmaj) || !get_le16(in_, vmin) ||
      !get_le32(in_, thiszone) || !get_le32(in_, sigfigs) ||
      !get_le32(in_, snaplen) || !get_le32(in_, link)) {
    throw std::runtime_error("pcap::Reader: truncated file header");
  }
  header_.version_major = fix16(vmaj);
  header_.version_minor = fix16(vmin);
  header_.thiszone = static_cast<std::int32_t>(fix32(thiszone));
  header_.sigfigs = fix32(sigfigs);
  header_.snaplen = fix32(snaplen);
  header_.link_type = static_cast<LinkType>(fix32(link));
  if (header_.version_major != 2) {
    throw std::runtime_error("pcap::Reader: unsupported pcap version " +
                             std::to_string(header_.version_major));
  }
}

std::uint32_t Reader::fix32(std::uint32_t v) const {
  return header_.swapped ? byteswap32(v) : v;
}

std::uint16_t Reader::fix16(std::uint16_t v) const {
  return header_.swapped ? byteswap16(v) : v;
}

std::optional<Record> Reader::next() {
  std::uint32_t sec = 0;
  if (!get_le32(in_, sec)) return std::nullopt;  // clean EOF
  std::uint32_t frac = 0;
  std::uint32_t incl = 0;
  std::uint32_t orig = 0;
  if (!get_le32(in_, frac) || !get_le32(in_, incl) || !get_le32(in_, orig)) {
    truncated_ = true;
    return std::nullopt;
  }
  sec = fix32(sec);
  frac = fix32(frac);
  incl = fix32(incl);
  orig = fix32(orig);
  if (incl > header_.snaplen + 65536) {
    // Sanity bound: a wildly large length means a corrupt record header.
    truncated_ = true;
    return std::nullopt;
  }

  Record rec;
  rec.orig_len = orig;
  rec.data.resize(incl);
  in_.read(reinterpret_cast<char*>(rec.data.data()), incl);
  if (static_cast<std::uint32_t>(in_.gcount()) != incl) {
    truncated_ = true;
    return std::nullopt;
  }
  const std::int64_t frac_ns =
      header_.nanosecond ? frac : std::int64_t{frac} * 1'000;
  rec.timestamp =
      util::SimTime::nanoseconds(std::int64_t{sec} * 1'000'000'000 + frac_ns);
  ++records_;
  return rec;
}

std::vector<Record> Reader::read_all() {
  std::vector<Record> out;
  while (auto rec = next()) {
    out.push_back(std::move(*rec));
  }
  return out;
}

void write_file(const std::string& path, const std::vector<Record>& records,
                LinkType link_type, bool nanosecond) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open for write: " + path);
  Writer writer(out, link_type, nanosecond);
  for (const Record& rec : records) {
    writer.write(rec.timestamp, rec.data);
  }
}

std::vector<Record> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  Reader reader(in);
  return reader.read_all();
}

}  // namespace syndog::pcap
