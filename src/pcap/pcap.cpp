#include "syndog/pcap/pcap.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "syndog/net/wire.hpp"

namespace syndog::pcap {

namespace {

using net::byteswap16;
using net::byteswap32;
using net::load_le16;
using net::load_le32;

// pcap files are written in the *host* byte order of the capturing machine;
// we always emit little-endian (the dominant convention) and byte-swap on
// read when the magic indicates the other order.

void put_le16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void put_le32(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
  out.write(bytes, 4);
}

bool get_le32(std::istream& in, std::uint32_t& v) {
  std::uint8_t bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (in.gcount() != 4) return false;
  v = load_le32(bytes);
  return true;
}

bool get_le16(std::istream& in, std::uint16_t& v) {
  std::uint8_t bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  if (in.gcount() != 2) return false;
  v = load_le16(bytes);
  return true;
}

}  // namespace

Writer::Writer(std::ostream& out, LinkType link_type, bool nanosecond,
               std::uint32_t snaplen)
    : out_(out) {
  header_.link_type = link_type;
  header_.nanosecond = nanosecond;
  header_.snaplen = snaplen;
  put_le32(out_, nanosecond ? FileHeader::kMagicNanos
                            : FileHeader::kMagicMicros);
  put_le16(out_, header_.version_major);
  put_le16(out_, header_.version_minor);
  put_le32(out_, static_cast<std::uint32_t>(header_.thiszone));
  put_le32(out_, header_.sigfigs);
  put_le32(out_, header_.snaplen);
  put_le32(out_, static_cast<std::uint32_t>(header_.link_type));
  if (!out_) throw std::runtime_error("pcap::Writer: header write failed");
}

void Writer::write(util::SimTime timestamp, net::ByteSpan frame) {
  if (timestamp < util::SimTime::zero()) {
    throw std::runtime_error("pcap::Writer: negative timestamp");
  }
  if (!out_) {
    throw std::runtime_error("pcap::Writer: stream already in error state");
  }
  const std::int64_t ns = timestamp.ns();
  const auto sec = static_cast<std::uint32_t>(ns / 1'000'000'000);
  const std::int64_t frac_ns = ns % 1'000'000'000;
  const auto frac = static_cast<std::uint32_t>(
      header_.nanosecond ? frac_ns : frac_ns / 1'000);

  const auto incl =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(),
                                                       header_.snaplen));
  put_le32(out_, sec);
  put_le32(out_, frac);
  put_le32(out_, incl);
  put_le32(out_, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()), incl);
  if (!out_) throw std::runtime_error("pcap::Writer: record write failed");
  ++records_;
}

void Writer::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("pcap::Writer: flush failed");
}

Reader::Reader(std::istream& in) : in_(in) {
  std::uint32_t magic = 0;
  if (!get_le32(in_, magic)) {
    throw std::runtime_error("pcap::Reader: empty file");
  }
  switch (magic) {
    case FileHeader::kMagicMicros:
      break;
    case FileHeader::kMagicNanos:
      header_.nanosecond = true;
      break;
    case byteswap32(FileHeader::kMagicMicros):
      header_.swapped = true;
      break;
    case byteswap32(FileHeader::kMagicNanos):
      header_.swapped = true;
      header_.nanosecond = true;
      break;
    default:
      throw std::runtime_error("pcap::Reader: bad magic number");
  }
  std::uint16_t vmaj = 0;
  std::uint16_t vmin = 0;
  std::uint32_t thiszone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t link = 0;
  if (!get_le16(in_, vmaj) || !get_le16(in_, vmin) ||
      !get_le32(in_, thiszone) || !get_le32(in_, sigfigs) ||
      !get_le32(in_, snaplen) || !get_le32(in_, link)) {
    throw std::runtime_error("pcap::Reader: truncated file header");
  }
  header_.version_major = fix16(vmaj);
  header_.version_minor = fix16(vmin);
  header_.thiszone = static_cast<std::int32_t>(fix32(thiszone));
  header_.sigfigs = fix32(sigfigs);
  header_.snaplen = fix32(snaplen);
  header_.link_type = static_cast<LinkType>(fix32(link));
  if (header_.version_major != 2) {
    throw std::runtime_error("pcap::Reader: unsupported pcap version " +
                             std::to_string(header_.version_major));
  }
}

std::uint32_t Reader::fix32(std::uint32_t v) const {
  return header_.swapped ? byteswap32(v) : v;
}

std::uint16_t Reader::fix16(std::uint16_t v) const {
  return header_.swapped ? byteswap16(v) : v;
}

bool Reader::next_into(Record& out) {
  if (end_ != ReadEnd::kStreaming) return false;
  // Read the 16-byte record header as one block so a partial header —
  // even a cut inside the first field, which the old field-by-field reads
  // mistook for clean EOF — is reported as truncation.
  std::uint8_t header[16];
  in_.read(reinterpret_cast<char*>(header), sizeof header);
  const auto got = static_cast<std::size_t>(in_.gcount());
  if (got == 0) {
    end_ = ReadEnd::kEof;
    return false;
  }
  if (got != sizeof header) {
    end_ = ReadEnd::kTruncated;
    return false;
  }
  const std::uint32_t sec = fix32(load_le32(header));
  const std::uint32_t frac = fix32(load_le32(header + 4));
  const std::uint32_t incl = fix32(load_le32(header + 8));
  const std::uint32_t orig = fix32(load_le32(header + 12));
  if (incl > header_.snaplen + 65536) {
    // Sanity bound: a wildly large length means a corrupt record header.
    end_ = ReadEnd::kTruncated;
    return false;
  }

  out.orig_len = orig;
  out.data.resize(incl);  // reuses the buffer's capacity once warmed up
  in_.read(reinterpret_cast<char*>(out.data.data()), incl);
  if (static_cast<std::uint32_t>(in_.gcount()) != incl) {
    end_ = ReadEnd::kTruncated;
    return false;
  }
  const std::int64_t frac_ns =
      header_.nanosecond ? frac : std::int64_t{frac} * 1'000;
  out.timestamp =
      util::SimTime::nanoseconds(std::int64_t{sec} * 1'000'000'000 + frac_ns);
  ++records_;
  return true;
}

std::optional<Record> Reader::next() {
  Record rec;
  if (!next_into(rec)) return std::nullopt;
  return rec;
}

std::vector<Record> Reader::read_all() {
  std::vector<Record> out;
  while (auto rec = next()) {
    out.push_back(std::move(*rec));
  }
  return out;
}

void write_file(const std::string& path, const std::vector<Record>& records,
                LinkType link_type, bool nanosecond) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("pcap: cannot open for write: " + path);
  Writer writer(out, link_type, nanosecond);
  for (const Record& rec : records) {
    writer.write(rec.timestamp, rec.data);
  }
  // The ofstream destructor swallows flush errors; surface them here so a
  // full disk cannot silently leave a short capture behind.
  writer.flush();
}

std::vector<Record> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open for read: " + path);
  Reader reader(in);
  return reader.read_all();
}

}  // namespace syndog::pcap
