#include "syndog/util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "syndog/util/config.hpp"
#include "syndog/util/strings.hpp"

namespace syndog::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_level_initialized{false};

/// Applies SYNDOG_LOG on the first threshold read, unless set_log_level()
/// already pinned a level. An unparsable value keeps the default but says
/// so on stderr — a typo'd SYNDOG_LOG=vebrose silently logging nothing
/// would be worse.
void ensure_level_initialized() {
  if (g_level_initialized.exchange(true)) return;
  const std::optional<std::string> env = env_var("SYNDOG_LOG");
  if (!env) return;
  if (const std::optional<LogLevel> level = parse_log_level(*env)) {
    g_level.store(*level);
  } else {
    std::fprintf(stderr,
                 "[WARN] log: SYNDOG_LOG='%s' is not a log level "
                 "(off/error/warn/info/debug); keeping default\n",
                 env->c_str());
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (iequals(name, "off")) return LogLevel::kOff;
  if (iequals(name, "error")) return LogLevel::kError;
  if (iequals(name, "warn") || iequals(name, "warning")) {
    return LogLevel::kWarn;
  }
  if (iequals(name, "info")) return LogLevel::kInfo;
  if (iequals(name, "debug")) return LogLevel::kDebug;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  g_level_initialized.store(true);
  g_level.store(level);
}

LogLevel log_level() {
  ensure_level_initialized();
  return g_level.load();
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace syndog::util
