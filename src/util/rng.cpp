#include "syndog/util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::util {

double Rng::pareto(double alpha, double xm) {
  if (alpha <= 0.0 || xm <= 0.0) {
    throw std::invalid_argument("pareto: alpha and xm must be positive");
  }
  // Inverse-CDF: F(x) = 1 - (xm/x)^alpha.
  double u = uniform();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  if (alpha <= 0.0 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("bounded_pareto: require alpha>0, 0<lo<hi");
  }
  // Inverse-CDF of the truncated Pareto.
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace syndog::util
