#include "syndog/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace syndog::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") return "0";  // gcc 12 -Wrestrict trips on `s = "0"` here
  return s;
}

std::string format_count(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace syndog::util
