#include "syndog/util/time.hpp"

#include <cmath>
#include <cstdio>

namespace syndog::util {

SimTime SimTime::from_seconds(double s) {
  return SimTime{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

std::string SimTime::to_string() const {
  const bool neg = ns_ < 0;
  std::int64_t abs_ns = neg ? -ns_ : ns_;
  const std::int64_t total_ms = abs_ns / 1'000'000;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace syndog::util
