// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit `Rng&`; nothing reads global
// entropy. Trials derive independent child streams from a master seed via
// SplitMix64 so experiments are reproducible and trials are decorrelated.
#pragma once

#include <cstdint>
#include <random>

namespace syndog::util {

/// Stateless SplitMix64 step, used for seed derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Wrapper around mt19937_64 with the distribution helpers the trace and
/// attack models need. Distribution parameters are validated by the standard
/// library; helpers that add parameters of our own document their domain.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Derives the `index`-th independent child stream of this generator's
  /// seed lineage. Children of distinct indices do not overlap in practice.
  [[nodiscard]] static Rng child(std::uint64_t seed, std::uint64_t index) {
    return Rng{splitmix64(seed ^ splitmix64(index + 1))};
  }

  std::mt19937_64& engine() { return engine_; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }
  /// Exponential with the given mean (not rate); mean must be > 0.
  [[nodiscard]] double exponential_mean(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  [[nodiscard]] std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>{mean}(engine_);
  }
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }
  /// Weibull with shape k > 0 and scale lambda > 0.
  [[nodiscard]] double weibull(double shape, double scale) {
    return std::weibull_distribution<double>{shape, scale}(engine_);
  }
  /// Pareto (type I): support [xm, inf), shape alpha > 0. Heavy-tailed for
  /// alpha <= 2; the self-similar arrival model uses alpha in (1, 2).
  [[nodiscard]] double pareto(double alpha, double xm);
  /// Bounded Pareto on [lo, hi]; used where an unbounded heavy tail would
  /// make a single sample dominate an entire trace.
  [[nodiscard]] double bounded_pareto(double alpha, double lo, double hi);
  /// Random 32-bit value (e.g. spoofed IPv4 addresses).
  [[nodiscard]] std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(engine_());
  }
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace syndog::util
