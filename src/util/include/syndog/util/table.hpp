// Presentation helpers for the experiment harness.
//
// Every bench binary reproduces a paper table or figure as text: tables are
// rendered with TextTable, figure series with AsciiChart (a terminal line
// chart), and everything can also be dumped as CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace syndog::util {

/// Accumulates rows of strings and renders a boxed, column-aligned table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats arithmetic cells with format_double.
  void add_row_values(const std::vector<double>& cells, int digits = 4);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Options controlling AsciiChart rendering.
struct AsciiChartOptions {
  int width = 100;    ///< plot columns (series is resampled to fit)
  int height = 16;    ///< plot rows
  double y_min = 0.0; ///< lower bound of the y axis
  /// Upper bound of the y axis; <= y_min means auto-scale to the data.
  double y_max = 0.0;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series as a terminal line chart. Multiple series are
/// drawn with distinct glyphs ('*', '+', 'o', ...) and listed in a legend.
class AsciiChart {
 public:
  explicit AsciiChart(AsciiChartOptions options) : options_(options) {}

  void add_series(std::string name, std::vector<double> values);
  /// Marks a horizontal reference line (e.g. the flooding threshold N).
  void add_threshold(std::string name, double value);

  [[nodiscard]] std::string to_string() const;

 private:
  AsciiChartOptions options_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
  std::vector<std::pair<std::string, double>> thresholds_;
};

/// Writes rows of (label, values...) as CSV text.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& cells);
  [[nodiscard]] std::string to_string() const;

 private:
  static std::string escape(const std::string& cell);
  std::string text_;
  std::size_t columns_;
};

}  // namespace syndog::util
