// Simulation time types.
//
// All simulator and detector code measures time as a signed 64-bit count of
// nanoseconds (`SimTime`). Integer time keeps event ordering exact and
// reproducible across platforms; doubles are only used at the presentation
// boundary (seconds for humans, per Eq. (8) of the paper).
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace syndog::util {

/// A point in simulated time, in nanoseconds since the start of the run.
/// Also used for durations; the arithmetic is the same and the simulator
/// never mixes simulated time with wall-clock time.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{INT64_MAX};
  }
  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t v) {
    return SimTime{v * 1'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  [[nodiscard]] static constexpr SimTime minutes(std::int64_t v) {
    return seconds(v * 60);
  }
  [[nodiscard]] static constexpr SimTime hours(std::int64_t v) {
    return minutes(v * 60);
  }
  /// Converts a floating-point second count; fractional nanoseconds are
  /// rounded to nearest.
  [[nodiscard]] static SimTime from_seconds(double s);

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double to_minutes() const {
    return to_seconds() / 60.0;
  }

  /// "h:mm:ss.mmm" rendering for logs and bench output.
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return a * k;
  }
  /// Integer division: how many whole `b` intervals fit in `a`.
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }
  friend SimTime operator*(SimTime a, double k) {
    return SimTime::from_seconds(a.to_seconds() * k);
  }

 private:
  std::int64_t ns_ = 0;
};

}  // namespace syndog::util
