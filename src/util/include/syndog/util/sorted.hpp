// Deterministic views over unordered associative containers.
//
// std::unordered_{map,set} iteration order is a function of the standard
// library, the insertion history, and the hash seed — never of the keys.
// Any loop over one that feeds ordered output (obs exporters, bench
// sidecars, CSV writers) therefore breaks the repo's byte-identical
// sidecar contract; `syndog_lint --explain determinism.unordered_iteration`
// has the full story. These adapters give a key-ordered view at snapshot
// cost, paid only where snapshots are taken: the hot path keeps O(1)
// hashed lookups, the export path iterates deterministically.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

namespace syndog::util {

/// Key-ordered view of a map: pointers to the map's entries, sorted by
/// key. Pointers (not copies) keep mapped values reachable — and, via the
/// mutable overload, modifiable — without copying them; the view is
/// invalidated by any rehash of the underlying container.
template <typename Map, typename Compare = std::less<typename Map::key_type>>
[[nodiscard]] std::vector<const typename Map::value_type*> sorted_items(
    const Map& map, Compare cmp = Compare{}) {
  std::vector<const typename Map::value_type*> view;
  view.reserve(map.size());
  for (const auto& item : map) view.push_back(&item);
  std::sort(view.begin(), view.end(),
            [&cmp](const auto* a, const auto* b) {
              return cmp(a->first, b->first);
            });
  return view;
}

template <typename Map, typename Compare = std::less<typename Map::key_type>>
[[nodiscard]] std::vector<typename Map::value_type*> sorted_items(
    Map& map, Compare cmp = Compare{}) {
  std::vector<typename Map::value_type*> view;
  view.reserve(map.size());
  for (auto& item : map) view.push_back(&item);
  std::sort(view.begin(), view.end(),
            [&cmp](const auto* a, const auto* b) {
              return cmp(a->first, b->first);
            });
  return view;
}

/// Sorted copy of a set's keys (keys are value types small enough to copy
/// wherever this matters: addresses, ports, ids).
template <typename Set, typename Compare = std::less<typename Set::key_type>>
[[nodiscard]] std::vector<typename Set::key_type> sorted_keys(
    const Set& set, Compare cmp = Compare{}) {
  std::vector<typename Set::key_type> keys(set.begin(), set.end());
  std::sort(keys.begin(), keys.end(), cmp);
  return keys;
}

}  // namespace syndog::util
