// Fixed-capacity, non-allocating, move-only callable.
//
// InlineCallback<N> stores any callable whose capture state fits in N
// bytes directly inside the object — no heap allocation, ever. Oversized
// or over-aligned callables are rejected at compile time (static_assert),
// which is the point: the discrete-event scheduler's hot path must stay
// allocation-free, so a capture that silently grew past the budget should
// fail the build, not fall back to operator new the way std::function and
// std::move_only_function are allowed to.
//
// Unlike std::function it is move-only, so callables holding move-only
// resources (e.g. sim::PacketPool::Handle) are accepted. The stored
// callable must be nothrow-move-constructible: moves relocate it between
// buffers and must not be able to fail halfway.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace syndog::util {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  InlineCallback(InlineCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  /// Implicit from any void() callable that fits the inline budget.
  template <typename Fn>
    requires(!std::is_same_v<std::remove_cvref_t<Fn>, InlineCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<Fn>&>)
  InlineCallback(Fn&& fn) noexcept {  // NOLINT(google-explicit-constructor)
    using Decayed = std::remove_cvref_t<Fn>;
    static_assert(sizeof(Decayed) <= Capacity,
                  "InlineCallback: capture state exceeds inline capacity; "
                  "shrink the capture (e.g. pool the payload) or raise N");
    static_assert(alignof(Decayed) <= alignof(std::max_align_t),
                  "InlineCallback: over-aligned callables not supported");
    static_assert(std::is_nothrow_move_constructible_v<Decayed>,
                  "InlineCallback: callable must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Decayed(std::forward<Fn>(fn));
    vt_ = &Ops<Decayed>::vtable;
  }

  ~InlineCallback() { reset(); }

  /// Destroys the stored callable (if any); *this becomes empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// Invokes the stored callable. Precondition: non-empty.
  void operator()() { vt_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(std::byte* self);
    void (*relocate)(std::byte* dst, std::byte* src) noexcept;
    void (*destroy)(std::byte* self) noexcept;
  };

  template <typename Fn>
  struct Ops {
    static Fn& as(std::byte* p) noexcept {
      return *std::launder(reinterpret_cast<Fn*>(p));
    }
    static void invoke(std::byte* self) { as(self)(); }
    static void relocate(std::byte* dst, std::byte* src) noexcept {
      ::new (static_cast<void*>(dst)) Fn(std::move(as(src)));
      as(src).~Fn();
    }
    static void destroy(std::byte* self) noexcept { as(self).~Fn(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace syndog::util
