// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace syndog::util {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Formats a double with `digits` significant fraction digits, trimming
/// trailing zeros ("1.050" -> "1.05", "2.000" -> "2").
[[nodiscard]] std::string format_double(double value, int digits = 4);

/// Formats a count with thousands separators ("14000" -> "14,000").
[[nodiscard]] std::string format_count(std::int64_t value);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace syndog::util
