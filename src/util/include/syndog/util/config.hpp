// Key-value configuration.
//
// Experiment binaries accept "key=value" overrides (from argv or a file with
// one entry per line, '#' comments). Typed getters validate on read so a
// typo'd value fails loudly at startup instead of producing a silent default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace syndog::util {

/// Reads an environment variable; nullopt when unset. The process
/// environment is the one sanctioned out-of-band input channel (e.g.
/// SYNDOG_LOG for the log level): it can tune presentation, never the
/// experiment itself — results must stay a function of seeds and config.
[[nodiscard]] std::optional<std::string> env_var(std::string_view name);

class Config {
 public:
  Config() = default;

  /// Parses "key=value" lines; '#' starts a comment, blank lines ignored.
  /// Throws std::invalid_argument on a malformed line.
  [[nodiscard]] static Config from_text(std::string_view text);
  /// Parses each argv element as one "key=value" entry.
  [[nodiscard]] static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  /// Later entries win; used to layer CLI overrides on top of defaults.
  void merge(const Config& overrides);

  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace syndog::util
