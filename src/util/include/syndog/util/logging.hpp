// Minimal leveled logger.
//
// The library itself logs nothing above Debug in hot paths; examples and the
// bench harness use Info/Warn. The logger writes to stderr so experiment
// output on stdout stays machine-parsable.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace syndog::util {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4
};

/// Parses a level name ("off", "error", "warn"/"warning", "info",
/// "debug"), case-insensitively; nullopt when unrecognized.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// Process-wide log threshold; messages below it are discarded.
/// The initial threshold is read from the SYNDOG_LOG environment variable
/// (via util::env_var) on first use — kWarn when unset or unparsable — so
/// a bench or example can be made chatty without recompiling:
///   SYNDOG_LOG=debug build/examples/leaf_router_sim
/// set_log_level() always wins over the environment.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Stream-style log statement:
///   SYNDOG_LOG(Info, "sim") << "scheduled " << n << " events";
/// The stream body is only evaluated when the level is enabled.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() { log_line(level_, component_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace syndog::util

#define SYNDOG_LOG(level_name, component)                                  \
  if (::syndog::util::LogLevel::k##level_name >=                           \
      ::syndog::util::log_level())                                         \
  ::syndog::util::LogStatement(::syndog::util::LogLevel::k##level_name,    \
                               (component))
