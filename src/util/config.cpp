#include "syndog/util/config.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::util {

std::optional<std::string> env_var(std::string_view name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read before any thread starts
  const char* value = std::getenv(std::string(name).c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

namespace {
[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            const char* kind) {
  throw std::invalid_argument("config key '" + std::string(key) +
                              "': cannot parse '" + std::string(value) +
                              "' as " + kind);
}
}  // namespace

Config Config::from_text(std::string_view text) {
  Config cfg;
  for (const std::string& raw : split(text, '\n')) {
    std::string_view line = trim(raw);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("config: malformed line '" +
                                  std::string(line) + "'");
    }
    cfg.set(std::string(trim(line.substr(0, eq))),
            std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("config: expected key=value, got '" +
                                  std::string(arg) + "'");
    }
    cfg.set(std::string(trim(arg.substr(0, eq))),
            std::string(trim(arg.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

void Config::merge(const Config& overrides) {
  for (const auto& [key, value] : overrides.entries_) {
    entries_[key] = value;
  }
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key,
                               std::string fallback) const {
  if (auto v = get(key)) return *v;
  return fallback;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    bad_value(key, *v, "integer");
  }
  return out;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*v, &consumed);
    if (consumed != v->size()) bad_value(key, *v, "double");
    return out;
  } catch (const std::logic_error&) {
    bad_value(key, *v, "double");
  }
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (iequals(*v, "true") || *v == "1" || iequals(*v, "yes")) return true;
  if (iequals(*v, "false") || *v == "0" || iequals(*v, "no")) return false;
  bad_value(key, *v, "bool");
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, value] : entries_) out.push_back(key);
  return out;
}

}  // namespace syndog::util
