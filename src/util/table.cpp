#include "syndog/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must not be empty");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row has " +
                                std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::vector<double>& cells, int digits) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(format_double(v, digits));
  add_row(std::move(out));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

std::string TextTable::to_csv() const {
  CsvWriter csv{header_};
  for (const auto& row : rows_) csv.add_row(row);
  return csv.to_string();
}

void AsciiChart::add_series(std::string name, std::vector<double> values) {
  series_.emplace_back(std::move(name), std::move(values));
}

void AsciiChart::add_threshold(std::string name, double value) {
  thresholds_.emplace_back(std::move(name), value);
}

std::string AsciiChart::to_string() const {
  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};
  const int width = std::max(options_.width, 8);
  const int height = std::max(options_.height, 4);

  double y_min = options_.y_min;
  double y_max = options_.y_max;
  if (y_max <= y_min) {
    y_max = y_min;
    for (const auto& [name, values] : series_) {
      for (double v : values) y_max = std::max(y_max, v);
    }
    for (const auto& [name, value] : thresholds_) {
      y_max = std::max(y_max, value);
    }
    if (y_max <= y_min) y_max = y_min + 1.0;
    y_max *= 1.05;  // headroom so the peak is not clipped into the top row
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  const auto row_of = [&](double v) {
    const double t = (v - y_min) / (y_max - y_min);
    const int r =
        height - 1 - static_cast<int>(std::lround(t * (height - 1)));
    return std::clamp(r, 0, height - 1);
  };

  for (const auto& [name, value] : thresholds_) {
    if (value < y_min || value > y_max) continue;
    std::string& row = grid[static_cast<std::size_t>(row_of(value))];
    for (int c = 0; c < width; ++c) {
      if (row[static_cast<std::size_t>(c)] == ' ') {
        row[static_cast<std::size_t>(c)] = '-';
      }
    }
  }

  std::size_t longest = 1;
  for (const auto& [name, values] : series_) {
    longest = std::max(longest, values.size());
  }
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const auto& values = series_[s].second;
    if (values.empty()) continue;
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (int c = 0; c < width; ++c) {
      // Resample by nearest index so short and long series share the x axis.
      const std::size_t i = std::min(
          values.size() - 1,
          static_cast<std::size_t>(
              std::llround(static_cast<double>(c) /
                           std::max(1, width - 1) *
                           static_cast<double>(values.size() - 1))));
      const double v = std::clamp(values[i], y_min, y_max);
      grid[static_cast<std::size_t>(row_of(v))]
          [static_cast<std::size_t>(c)] = glyph;
    }
  }

  std::ostringstream out;
  if (!options_.y_label.empty()) out << options_.y_label << '\n';
  for (int r = 0; r < height; ++r) {
    const double v =
        y_max - (y_max - y_min) * static_cast<double>(r) / (height - 1);
    out << strprintf("%10s |", format_double(v, 3).c_str())
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(
      static_cast<std::size_t>(width), '-') << '\n';
  if (!options_.x_label.empty()) {
    out << std::string(12, ' ') << options_.x_label << '\n';
  }
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out << "  " << kGlyphs[s % sizeof(kGlyphs)] << " = " << series_[s].first
        << " (" << series_[s].second.size() << " samples)\n";
  }
  for (const auto& [name, value] : thresholds_) {
    out << "  - = " << name << " (" << format_double(value, 3) << ")\n";
  }
  return out.str();
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  if (header.empty()) {
    throw std::invalid_argument("CsvWriter: header must not be empty");
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) text_ += ',';
    text_ += escape(header[i]);
  }
  text_ += '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: wrong cell count");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) text_ += ',';
    text_ += escape(cells[i]);
  }
  text_ += '\n';
}

std::string CsvWriter::to_string() const { return text_; }

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace syndog::util
