#include "syndog/campaign/campaign_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace syndog::campaign {

namespace {

// Stub s owns the /20 based at 10.0.0.0 + (s << 12): 4094 addressable
// hosts per stub, 16k stubs before the space walks past 14/8 — well
// clear of the victim (198.51.100.10), the generic-server space
// [0x80000000, 0xA0000000) the background dials, and the 240/8 spoof
// pool. MultiStubSim's 10.(s+1).0.0/16 scheme caps out at ~200 stubs.
constexpr std::uint32_t kStubBase = 0x0A000000u;
constexpr int kPrefixLength = 20;
constexpr std::uint32_t kMaxHostsPerStub = (1u << (32 - kPrefixLength)) - 2;

// MAC index planes. MultiStubSim's host plane (s * 0x10000 + i) collides
// with its router plane (0xf00000 + s) at stub 240, which never bites at
// <= 200 stubs; at 16k stubs the planes must be disjoint by construction.
constexpr std::uint32_t kRouterMacPlane = 0xC0000000u;
constexpr std::uint32_t kHostMacPlane = 0x40000000u;
constexpr std::uint32_t kVictimMacIndex = 0xE00000u;
constexpr std::uint32_t kGatewayMacIndex = 0xFFFFFEu;

net::Ipv4Prefix prefix_for(int stub) {
  return net::Ipv4Prefix(
      net::Ipv4Address(kStubBase +
                       (static_cast<std::uint32_t>(stub) << 12)),
      kPrefixLength);
}

}  // namespace

void CampaignParams::validate() const {
  if (stub_count < 1 || stub_count > kMaxStubs) {
    throw std::invalid_argument("CampaignSim: stub_count in [1, 16384]");
  }
  if (hosts_per_stub == 0 || hosts_per_stub > kMaxHostsPerStub) {
    throw std::invalid_argument("CampaignSim: hosts_per_stub in [1, 4094]");
  }
  if (cells < 0) {
    throw std::invalid_argument("CampaignSim: cells must be >= 0");
  }
  if (lan_delay < util::SimTime::zero()) {
    throw std::invalid_argument("CampaignSim: lan_delay must be >= 0");
  }
  if (uplink_delay <= util::SimTime::zero() ||
      downlink_delay <= util::SimTime::zero()) {
    // A zero cross-shard latency means zero lookahead: no conservative
    // window can make concurrent cells causally safe.
    throw std::invalid_argument(
        "CampaignSim: uplink/downlink delays must be > 0 (they are the "
        "lookahead)");
  }
  const util::SimTime lookahead = std::min(uplink_delay, downlink_delay);
  if (window < util::SimTime::zero() || window > lookahead) {
    throw std::invalid_argument(
        "CampaignSim: window must lie in (0, min(uplink, downlink)] "
        "(0 = auto)");
  }
  if (!(no_answer_probability >= 0.0 && no_answer_probability < 1.0)) {
    throw std::invalid_argument(
        "CampaignSim: no_answer_probability in [0,1)");
  }
  if (!(rtt_median_s > 0.0) || rtt_sigma < 0.0) {
    throw std::invalid_argument(
        "CampaignSim: rtt_median_s > 0 and rtt_sigma >= 0 required");
  }
  const std::uint32_t v = victim_ip.value();
  const std::uint32_t stub_space_end =
      kStubBase + (static_cast<std::uint32_t>(stub_count) << 12);
  if (v >= kStubBase && v < stub_space_end) {
    throw std::invalid_argument("CampaignSim: victim inside a stub prefix");
  }
  if (unreachable_pool.contains(victim_ip)) {
    throw std::invalid_argument(
        "CampaignSim: victim inside the unreachable pool");
  }
  agent_params.validate();
}

CampaignSim::StubNet::StubNet(std::uint64_t seed, int stub)
    : workload_rng(util::Rng::child(seed ^ 0xBA22u,
                                    static_cast<std::uint64_t>(stub))),
      flood_rng(util::Rng::child(seed ^ 0xF100Du,
                                 static_cast<std::uint64_t>(stub))),
      responder_rng(util::Rng::child(seed ^ 0xC10ADu,
                                     static_cast<std::uint64_t>(stub))) {}

CampaignSim::CampaignSim(CampaignParams params) : params_(params) {
  params_.validate();
  const util::SimTime lookahead =
      std::min(params_.uplink_delay, params_.downlink_delay);
  window_ = params_.window == util::SimTime::zero() ? lookahead
                                                    : params_.window;

  const int cell_total =
      params_.cells == 0 ? std::min(params_.stub_count, 64)
                         : std::min(params_.cells, params_.stub_count);
  cells_.reserve(static_cast<std::size_t>(cell_total));
  for (int c = 0; c < cell_total; ++c) {
    cells_.push_back(std::make_unique<Cell>());
  }

  stubs_.reserve(static_cast<std::size_t>(params_.stub_count));
  for (int s = 0; s < params_.stub_count; ++s) {
    stubs_.push_back(std::make_unique<StubNet>(params_.seed, s));
    StubNet& sn = *stubs_.back();
    sn.prefix = prefix_for(s);
    sn.router = std::make_unique<sim::LeafRouter>(sn.prefix, router_mac(s));
    sn.router->set_uplink(
        [this, s](const net::Packet& pkt) { on_uplink(s, pkt); });
    sn.agent = std::make_unique<core::SynDogAgent>(
        *sn.router, cells_[static_cast<std::size_t>(cell_of(s))]->sched,
        params_.agent_params,
        [this, s](const core::AlarmEvent& event) {
          stubs_[static_cast<std::size_t>(s)]->alarms.push_back({s, event});
        },
        core::AgentMode::kFirstMile);
  }

  victim_cell_ = std::make_unique<Cell>();
  victim_ = std::make_unique<sim::TcpHost>(
      "victim", params_.victim_ip, net::MacAddress::for_host(kVictimMacIndex),
      net::MacAddress::for_host(kGatewayMacIndex), victim_cell_->sched,
      [this](const net::Packet& pkt) { on_victim_send(pkt); },
      params_.victim_params, util::splitmix64(params_.seed ^ 0xE000u));
  victim_->listen(params_.victim_port);
}

int CampaignSim::cell_of(int stub) const {
  return stub % static_cast<int>(cells_.size());
}

sim::Scheduler& CampaignSim::sched_of(int stub) {
  return cells_[static_cast<std::size_t>(cell_of(stub))]->sched;
}

CampaignSim::StubNet& CampaignSim::stub_at(int stub) {
  if (stub < 0 || stub >= params_.stub_count) {
    throw std::out_of_range("CampaignSim: stub index " +
                            std::to_string(stub) + " outside [0, " +
                            std::to_string(params_.stub_count - 1) + "]");
  }
  return *stubs_[static_cast<std::size_t>(stub)];
}

const CampaignSim::StubNet& CampaignSim::stub_at(int stub) const {
  return const_cast<CampaignSim*>(this)->stub_at(stub);
}

net::MacAddress CampaignSim::router_mac(int stub) const {
  return net::MacAddress::for_host(kRouterMacPlane +
                                   static_cast<std::uint32_t>(stub));
}

net::MacAddress CampaignSim::host_mac(int stub, std::uint32_t index) const {
  return net::MacAddress::for_host(
      kHostMacPlane + (static_cast<std::uint32_t>(stub) << 12) + index);
}

int CampaignSim::stub_of(net::Ipv4Address ip) const {
  const std::uint32_t v = ip.value();
  if (v < kStubBase) return -1;
  const std::uint32_t offset = (v - kStubBase) >> 12;
  if (offset >= static_cast<std::uint32_t>(params_.stub_count)) return -1;
  return static_cast<int>(offset);
}

net::Ipv4Prefix CampaignSim::stub_prefix(int stub) const {
  return stub_at(stub).prefix;
}

sim::LeafRouter& CampaignSim::router(int stub) {
  return *stub_at(stub).router;
}

core::SynDogAgent& CampaignSim::agent(int stub) {
  return *stub_at(stub).agent;
}

const core::SynDogAgent& CampaignSim::agent(int stub) const {
  return *stub_at(stub).agent;
}

void CampaignSim::check_host_index(std::uint32_t index) const {
  if (index == 0 || index > params_.hosts_per_stub) {
    throw std::out_of_range(
        "CampaignSim: host index " + std::to_string(index) +
        " outside [1, " + std::to_string(params_.hosts_per_stub) +
        "] (host indices are 1-based)");
  }
}

sim::TcpHost& CampaignSim::host(int stub, std::uint32_t index) {
  return ensure_host(stub, index);
}

sim::TcpHost& CampaignSim::ensure_host(int stub, std::uint32_t index) {
  StubNet& sn = stub_at(stub);
  check_host_index(index);
  if (sn.hosts.empty()) {
    sn.hosts.resize(params_.hosts_per_stub);
  }
  auto& slot = sn.hosts[index - 1];
  if (!slot) {
    sim::Scheduler* sched = &sched_of(stub);
    sim::LeafRouter* router = sn.router.get();
    const net::Ipv4Address ip = sn.prefix.host(index);
    const util::SimTime lan = params_.lan_delay;
    slot = std::make_unique<sim::TcpHost>(
        "stub" + std::to_string(stub) + "-" + std::to_string(index), ip,
        host_mac(stub, index), router_mac(stub), *sched,
        [sched, router, lan](const net::Packet& pkt) {
          sched->schedule_after(
              lan, [sched, router, h = sched->packets().acquire(pkt)] {
                router->forward_from_intranet(sched->now(), *h);
              });
        },
        params_.host_params,
        util::splitmix64(params_.seed ^
                         (0x70000ull +
                          static_cast<std::uint64_t>(stub) * 0x10000ull +
                          index)));
    sim::TcpHost* raw = slot.get();
    router->attach_host(ip, [sched, raw, lan](const net::Packet& pkt) {
      sched->schedule_after(lan,
                            [raw, h = sched->packets().acquire(pkt)] {
                              raw->receive(*h);
                            });
    });
  }
  return *slot;
}

// ---- Cross-shard classification -------------------------------------

void CampaignSim::on_uplink(int stub, const net::Packet& packet) {
  StubNet& sn = *stubs_[static_cast<std::size_t>(stub)];
  const net::Ipv4Address dst = packet.ip.dst;
  if (dst == params_.victim_ip) {
    Cell& cell = *cells_[static_cast<std::size_t>(cell_of(stub))];
    cell.outbox.push_back({cell.sched.now() + params_.uplink_delay,
                           static_cast<std::uint32_t>(stub),
                           sn.mailbox_seq++, packet});
    return;
  }
  if (params_.unreachable_pool.contains(dst)) {
    ++sn.responder.dropped_unreachable;
    return;
  }
  if (stub_of(dst) >= 0) {
    // Stub-to-stub host traffic is outside the campaign model (the only
    // shared Internet-side endpoint is the victim); absorb it rather
    // than grow an all-pairs mailbox mesh.
    ++sn.responder.absorbed_elsewhere;
    return;
  }
  respond(stub, packet);
}

void CampaignSim::respond(int stub, const net::Packet& packet) {
  // The stub-local stand-in for sim::InternetCloud's generic server
  // space: same segment semantics, same bernoulli/ISN/RTT draw order per
  // arriving segment — but from this stub's own child Rng.
  StubNet& sn = *stubs_[static_cast<std::size_t>(stub)];
  if (!packet.tcp) {
    ++sn.responder.absorbed_elsewhere;
    return;
  }
  const net::TcpFlags flags = packet.tcp->flags;
  if (flags.syn() && !flags.ack()) {
    ++sn.responder.syns_seen;
    if (sn.responder_rng.bernoulli(params_.no_answer_probability)) {
      ++sn.responder.unanswered;
      return;
    }
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(kGatewayMacIndex);
    spec.dst_mac = packet.eth.src;
    spec.src_ip = packet.ip.dst;
    spec.dst_ip = packet.ip.src;
    spec.src_port = packet.tcp->dst_port;
    spec.dst_port = packet.tcp->src_port;
    spec.seq = sn.responder_rng.next_u32();
    spec.ack = packet.tcp->seq + 1;
    ++sn.responder.syn_acks_generated;
    schedule_reply(stub, net::make_syn_ack(spec));
    return;
  }
  if (flags.syn() && flags.ack()) {
    // A stub server accepted a remote client's connection; complete the
    // handshake with the final ACK so half-open slots drain.
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(kGatewayMacIndex);
    spec.dst_mac = packet.eth.src;
    spec.src_ip = packet.ip.dst;
    spec.dst_ip = packet.ip.src;
    spec.src_port = packet.tcp->dst_port;
    spec.dst_port = packet.tcp->src_port;
    spec.flags = net::TcpFlags::ack_only();
    spec.seq = packet.tcp->ack;
    spec.ack = packet.tcp->seq + 1;
    schedule_reply(stub, net::make_tcp_packet(spec));
    return;
  }
  if (flags.fin()) {
    // Passive close: the far side reciprocates with FIN|ACK.
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(kGatewayMacIndex);
    spec.dst_mac = packet.eth.src;
    spec.src_ip = packet.ip.dst;
    spec.dst_ip = packet.ip.src;
    spec.src_port = packet.tcp->dst_port;
    spec.dst_port = packet.tcp->src_port;
    spec.flags = net::TcpFlags::fin_ack();
    spec.seq = packet.tcp->ack;
    spec.ack = packet.tcp->seq + 1;
    schedule_reply(stub, net::make_tcp_packet(spec));
    return;
  }
  // Final ACKs, data, RSTs terminate silently at the generic space.
  ++sn.responder.absorbed_elsewhere;
}

void CampaignSim::schedule_reply(int stub, net::Packet reply) {
  StubNet& sn = *stubs_[static_cast<std::size_t>(stub)];
  // rtt_sigma == 0: deterministic median, no draw — lognormal(mu, 0) is
  // undefined, and skipping the draw keeps the responder stream aligned
  // with the oracle cloud's under the deterministic profile.
  const double rtt =
      params_.rtt_sigma > 0.0
          ? sn.responder_rng.lognormal(std::log(params_.rtt_median_s),
                                       params_.rtt_sigma)
          : params_.rtt_median_s;
  Cell& cell = *cells_[static_cast<std::size_t>(cell_of(stub))];
  sim::Scheduler* sched = &cell.sched;
  sim::LeafRouter* router = sn.router.get();
  cell.sched.schedule_after(
      params_.uplink_delay + util::SimTime::from_seconds(rtt) +
          params_.downlink_delay,
      [sched, router, h = sched->packets().acquire(std::move(reply))] {
        router->forward_from_internet(sched->now(), *h);
      });
}

void CampaignSim::on_victim_send(const net::Packet& packet) {
  const net::Ipv4Address dst = packet.ip.dst;
  const int stub = stub_of(dst);
  if (stub >= 0) {
    victim_cell_->outbox.push_back(
        {victim_cell_->sched.now() + params_.downlink_delay,
         static_cast<std::uint32_t>(stub), victim_seq_++, packet});
    return;
  }
  if (params_.unreachable_pool.contains(dst)) {
    // Replies to spoofed sources die in the core, exactly like the
    // oracle cloud's unreachable pool — never transiting any stub's
    // monitored inbound interface.
    ++cross_.dropped_unreachable;
    return;
  }
  ++cross_.absorbed_elsewhere;
}

// ---- Workload --------------------------------------------------------

void CampaignSim::connect_background(int stub, std::uint32_t host_index,
                                     util::SimTime at, net::Ipv4Address dst,
                                     std::uint16_t port) {
  sim::TcpHost* h = &ensure_host(stub, host_index);
  sched_of(stub).schedule_at(at, [h, dst, port] { h->connect(dst, port); });
}

void CampaignSim::schedule_host_background(
    int stub, const std::vector<util::SimTime>& starts) {
  StubNet& sn = stub_at(stub);
  for (const util::SimTime at : starts) {
    const auto host_index = static_cast<std::uint32_t>(
        sn.workload_rng.uniform_int(1, params_.hosts_per_stub));
    const net::Ipv4Address dst{static_cast<std::uint32_t>(
        0x80000000u + sn.workload_rng.next_u32() % 0x20000000u)};
    connect_background(stub, host_index, at, dst, 80);
  }
}

void CampaignSim::start_wire_background(int stub, double rate_per_sec,
                                        util::SimTime start,
                                        util::SimTime end) {
  StubNet& sn = stub_at(stub);
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument(
        "CampaignSim: wire background rate must be > 0");
  }
  const double gap = sn.workload_rng.exponential_mean(1.0 / rate_per_sec);
  const util::SimTime first = start + util::SimTime::from_seconds(gap);
  if (first >= end) return;
  sched_of(stub).schedule_at(first, [this, stub, rate_per_sec, end] {
    wire_background_step(stub, rate_per_sec, end);
  });
}

void CampaignSim::wire_background_step(int stub, double rate_per_sec,
                                       util::SimTime end) {
  StubNet& sn = *stubs_[static_cast<std::size_t>(stub)];
  Cell& cell = *cells_[static_cast<std::size_t>(cell_of(stub))];
  // Craft this connection's SYN directly onto the router's LAN side: the
  // sniffers see the same wire a TcpHost would produce, but no host
  // state is materialized (2 events per connection, so a million-host
  // address space costs nothing until a host is actually needed).
  const auto host_index = static_cast<std::uint32_t>(
      sn.workload_rng.uniform_int(1, params_.hosts_per_stub));
  const net::Ipv4Address dst{static_cast<std::uint32_t>(
      0x80000000u + sn.workload_rng.next_u32() % 0x20000000u)};
  net::TcpPacketSpec spec;
  spec.src_mac = host_mac(stub, host_index);
  spec.dst_mac = sn.router->mac();
  spec.src_ip = sn.prefix.host(host_index);
  spec.dst_ip = dst;
  spec.src_port = static_cast<std::uint16_t>(
      sn.workload_rng.uniform_int(1024, 65535));
  spec.dst_port = 80;
  spec.seq = sn.workload_rng.next_u32();
  sn.router->forward_from_intranet(cell.sched.now(), net::make_syn(spec));

  const double gap = sn.workload_rng.exponential_mean(1.0 / rate_per_sec);
  const util::SimTime next = cell.sched.now() + util::SimTime::from_seconds(gap);
  if (next < end) {
    cell.sched.schedule_at(next, [this, stub, rate_per_sec, end] {
      wire_background_step(stub, rate_per_sec, end);
    });
  }
}

void CampaignSim::launch_flood(int stub, std::uint32_t host_index,
                               const std::vector<util::SimTime>& syn_times,
                               net::Ipv4Prefix spoof_pool) {
  StubNet& sn = stub_at(stub);
  check_host_index(host_index);
  const std::int64_t pool_hosts = std::max<std::int64_t>(
      static_cast<std::int64_t>(spoof_pool.size()) - 2, 1);
  sim::Scheduler& sched = sched_of(stub);
  for (const util::SimTime at : syn_times) {
    // Draw order per SYN matches MultiStubSim::launch_flood (spoofed
    // source, sport, seq at schedule time) from this stub's flood rng.
    const net::Ipv4Address spoofed =
        spoof_pool.size() <= 2
            ? spoof_pool.base()
            : spoof_pool.host(static_cast<std::uint32_t>(
                  sn.flood_rng.uniform_int(1, pool_hosts)));
    const auto sport =
        static_cast<std::uint16_t>(sn.flood_rng.uniform_int(1024, 65535));
    const std::uint32_t seq = sn.flood_rng.next_u32();
    // The oracle injects at `at` and hops the LAN; emitting at the
    // router at `at + lan_delay` lands the identical wire timing in one
    // event.
    sched.schedule_at(at + params_.lan_delay,
                      [this, stub, host_index, spoofed, sport, seq] {
                        StubNet& s = *stubs_[static_cast<std::size_t>(stub)];
                        net::TcpPacketSpec spec;
                        spec.src_mac = host_mac(stub, host_index);
                        spec.dst_mac = s.router->mac();
                        spec.src_ip = spoofed;
                        spec.dst_ip = params_.victim_ip;
                        spec.src_port = sport;
                        spec.dst_port = params_.victim_port;
                        spec.seq = seq;
                        s.router->forward_from_intranet(
                            sched_of(stub).now(), net::make_syn(spec));
                      });
  }
}

// ---- Windows and barriers --------------------------------------------

int CampaignSim::cell_count() const {
  return static_cast<int>(cells_.size()) + 1;
}

std::size_t CampaignSim::run_cell_until(int cell, util::SimTime until) {
  if (cell < 0 || cell >= cell_count()) {
    throw std::out_of_range("CampaignSim: cell index");
  }
  sim::Scheduler& sched = cell == static_cast<int>(cells_.size())
                              ? victim_cell_->sched
                              : cells_[static_cast<std::size_t>(cell)]->sched;
  return sched.run_until(until);
}

void CampaignSim::note_injection(util::SimTime arrive_at,
                                 util::SimTime barrier) {
  const util::SimTime margin = arrive_at - barrier;
  if (margin < min_injection_margin_) min_injection_margin_ = margin;
  if (arrive_at < barrier) {
    throw std::logic_error(
        "CampaignSim: lookahead violation — mailbox record arriving at " +
        arrive_at.to_string() + " crossed a barrier at " +
        barrier.to_string());
  }
}

void CampaignSim::inject_into_victim(const MailboxRecord& record) {
  ++cross_.to_victim;
  sim::Scheduler& sched = victim_cell_->sched;
  sim::TcpHost* victim = victim_.get();
  sched.schedule_at(record.arrive_at,
                    [victim, h = sched.packets().acquire(record.packet)] {
                      victim->receive(*h);
                    });
}

void CampaignSim::inject_into_stub(const MailboxRecord& record) {
  ++cross_.to_stubs;
  const int stub = static_cast<int>(record.stub);
  Cell& cell = *cells_[static_cast<std::size_t>(cell_of(stub))];
  sim::Scheduler* sched = &cell.sched;
  sim::LeafRouter* router =
      stubs_[static_cast<std::size_t>(stub)]->router.get();
  cell.sched.schedule_at(
      record.arrive_at,
      [sched, router, h = sched->packets().acquire(record.packet)] {
        router->forward_from_internet(sched->now(), *h);
      });
}

void CampaignSim::exchange_and_advance(util::SimTime barrier) {
  ++cross_.barriers;
  // Stub -> victim: collect every cell's outbox (ascending cell order —
  // though the canonical sort makes the collection order irrelevant).
  merge_scratch_.clear();
  for (auto& cell : cells_) {
    for (auto& record : cell->outbox) {
      merge_scratch_.push_back(std::move(record));
    }
    cell->outbox.clear();
  }
  std::sort(merge_scratch_.begin(), merge_scratch_.end(), canonical_before);
  for (const auto& record : merge_scratch_) {
    note_injection(record.arrive_at, barrier);
    inject_into_victim(record);
  }
  // Victim -> stubs.
  merge_scratch_.clear();
  for (auto& record : victim_cell_->outbox) {
    merge_scratch_.push_back(std::move(record));
  }
  victim_cell_->outbox.clear();
  std::sort(merge_scratch_.begin(), merge_scratch_.end(), canonical_before);
  for (const auto& record : merge_scratch_) {
    note_injection(record.arrive_at, barrier);
    inject_into_stub(record);
  }
  merge_scratch_.clear();
  now_ = barrier;
}

void CampaignSim::run_until(util::SimTime end) {
  while (now_ < end) {
    const util::SimTime barrier = std::min(now_ + window_, end);
    const int cells = cell_count();
    for (int c = 0; c < cells; ++c) {
      run_cell_until(c, barrier);
    }
    exchange_and_advance(barrier);
  }
}

// ---- Results ---------------------------------------------------------

ResponderStats CampaignSim::responder_stats() const {
  ResponderStats total;
  for (const auto& sn : stubs_) {
    total.syns_seen += sn->responder.syns_seen;
    total.syn_acks_generated += sn->responder.syn_acks_generated;
    total.unanswered += sn->responder.unanswered;
    total.dropped_unreachable += sn->responder.dropped_unreachable;
    total.absorbed_elsewhere += sn->responder.absorbed_elsewhere;
  }
  return total;
}

sim::RouterStats CampaignSim::router_stats() const {
  sim::RouterStats total;
  for (const auto& sn : stubs_) {
    const sim::RouterStats& r = sn->router->stats();
    total.forwarded_outbound += r.forwarded_outbound;
    total.forwarded_inbound += r.forwarded_inbound;
    total.dropped_no_route += r.dropped_no_route;
    total.dropped_ingress_filter += r.dropped_ingress_filter;
    total.dropped_policer += r.dropped_policer;
    total.tap_suppressed += r.tap_suppressed;
    total.inbound_tap_bypassed += r.inbound_tap_bypassed;
  }
  return total;
}

std::vector<AlarmRecord> CampaignSim::merged_alarms() const {
  std::vector<AlarmRecord> merged;
  for (const auto& sn : stubs_) {
    merged.insert(merged.end(), sn->alarms.begin(), sn->alarms.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const AlarmRecord& a, const AlarmRecord& b) {
              if (a.event.at != b.event.at) return a.event.at < b.event.at;
              return a.stub < b.stub;
            });
  return merged;
}

int CampaignSim::stubs_alarmed() const {
  int count = 0;
  for (const auto& sn : stubs_) {
    if (sn->agent->ever_alarmed()) ++count;
  }
  return count;
}

std::uint64_t CampaignSim::events_executed() const {
  std::uint64_t total = victim_cell_->sched.executed();
  for (const auto& cell : cells_) {
    total += cell->sched.executed();
  }
  return total;
}

std::string CampaignSim::state_digest() const {
  std::string out;
  out.reserve(256 + static_cast<std::size_t>(params_.stub_count) * 512);
  char buf[512];
  auto emit = [&out, &buf](const char* fmt, auto... args) {
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    out.append(buf, static_cast<std::size_t>(std::max(n, 0)));
  };

  // Deliberately excludes the cell count and worker count: the digest
  // renders only decomposition-invariant state.
  emit("campaign stubs=%d hosts_per_stub=%u window_ns=%lld seed=%llu\n",
       params_.stub_count, params_.hosts_per_stub,
       static_cast<long long>(window_.ns()),
       static_cast<unsigned long long>(params_.seed));
  emit("run now_ns=%lld events=%llu barriers=%llu min_margin_ns=%lld\n",
       static_cast<long long>(now_.ns()),
       static_cast<unsigned long long>(events_executed()),
       static_cast<unsigned long long>(cross_.barriers),
       static_cast<long long>(min_injection_margin_.ns()));
  emit("cross to_victim=%llu to_stubs=%llu unreachable=%llu absorbed=%llu\n",
       static_cast<unsigned long long>(cross_.to_victim),
       static_cast<unsigned long long>(cross_.to_stubs),
       static_cast<unsigned long long>(cross_.dropped_unreachable),
       static_cast<unsigned long long>(cross_.absorbed_elsewhere));
  const ResponderStats resp = responder_stats();
  emit("responder syns=%llu syn_acks=%llu unanswered=%llu unreachable=%llu "
       "absorbed=%llu\n",
       static_cast<unsigned long long>(resp.syns_seen),
       static_cast<unsigned long long>(resp.syn_acks_generated),
       static_cast<unsigned long long>(resp.unanswered),
       static_cast<unsigned long long>(resp.dropped_unreachable),
       static_cast<unsigned long long>(resp.absorbed_elsewhere));
  const sim::RouterStats routers = router_stats();
  emit("routers out=%llu in=%llu no_route=%llu\n",
       static_cast<unsigned long long>(routers.forwarded_outbound),
       static_cast<unsigned long long>(routers.forwarded_inbound),
       static_cast<unsigned long long>(routers.dropped_no_route));
  const sim::TcpHostStats& v = victim_->stats();
  emit("victim syns=%llu syn_acks=%llu backlog_drops=%llu established=%llu "
       "half_open=%zu timeouts=%llu rsts=%llu\n",
       static_cast<unsigned long long>(v.syns_received),
       static_cast<unsigned long long>(v.syn_acks_sent),
       static_cast<unsigned long long>(v.backlog_drops),
       static_cast<unsigned long long>(v.established_as_server),
       victim_->half_open_count(),
       static_cast<unsigned long long>(v.half_open_timeouts),
       static_cast<unsigned long long>(v.rsts_sent));

  for (int s = 0; s < params_.stub_count; ++s) {
    const StubNet& sn = *stubs_[static_cast<std::size_t>(s)];
    emit("stub %d first_alarm=%lld alarms=%zu periods=%zu\n", s,
         static_cast<long long>(sn.agent->first_alarm_period()),
         sn.alarms.size(), sn.agent->history().size());
    for (const core::PeriodReport& r : sn.agent->history()) {
      emit("  p=%lld syn=%lld syn_ack=%lld k=%.17g d=%.17g x=%.17g y=%.17g "
           "alarm=%d clamp=%d\n",
           static_cast<long long>(r.period_index),
           static_cast<long long>(r.syn_count),
           static_cast<long long>(r.syn_ack_count), r.k_estimate, r.delta,
           r.x, r.y, r.alarm ? 1 : 0, r.x_clamped ? 1 : 0);
    }
    for (const AlarmRecord& a : sn.alarms) {
      emit("  alarm at_ns=%lld period=%lld suspects=%zu top=%s\n",
           static_cast<long long>(a.event.at.ns()),
           static_cast<long long>(a.event.report.period_index),
           a.event.suspects.size(),
           a.event.suspects.empty()
               ? "-"
               : a.event.suspects.front().mac.to_string().c_str());
    }
  }
  return out;
}

void CampaignSim::export_metrics(obs::Registry& registry) const {
  registry.counter("campaign.stubs")
      .add(static_cast<std::uint64_t>(params_.stub_count));
  registry.counter("campaign.events").add(events_executed());
  registry.counter("campaign.barriers").add(cross_.barriers);
  registry.counter("campaign.cross.to_victim").add(cross_.to_victim);
  registry.counter("campaign.cross.to_stubs").add(cross_.to_stubs);
  registry.counter("campaign.cross.dropped_unreachable")
      .add(cross_.dropped_unreachable);
  registry.counter("campaign.cross.absorbed").add(cross_.absorbed_elsewhere);
  const ResponderStats resp = responder_stats();
  registry.counter("campaign.responder.syns").add(resp.syns_seen);
  registry.counter("campaign.responder.syn_acks")
      .add(resp.syn_acks_generated);
  registry.counter("campaign.responder.unanswered").add(resp.unanswered);
  registry.counter("campaign.stubs_alarmed")
      .add(static_cast<std::uint64_t>(stubs_alarmed()));
}

void CampaignSim::record_fleet(core::FleetRecorder& recorder,
                               std::string_view name_prefix) const {
  for (int s = 0; s < params_.stub_count; ++s) {
    const StubNet& sn = *stubs_[static_cast<std::size_t>(s)];
    const std::size_t slot = recorder.add_agent(
        std::string(name_prefix) + std::to_string(s),
        static_cast<std::uint32_t>(s), params_.agent_params);
    for (const core::PeriodReport& r : sn.agent->history()) {
      recorder.observe(slot, r.syn_count, r.syn_ack_count,
                       params_.agent_params.observation_period *
                           (r.period_index + 1));
    }
  }
}

}  // namespace syndog::campaign
