// Cross-shard mailbox records for the sharded campaign DES.
//
// Stubs are causally independent except at the shared victim, so the
// only traffic that ever crosses a shard boundary is (a) a stub-emitted
// packet addressed to the victim and (b) a victim reply addressed back
// into some stub prefix. Both directions travel as MailboxRecords:
// the sender computes the receiver-side arrival time analytically
// (emission time + the fixed cross-shard link latency) and appends the
// record to its shard-local outbox. At each window barrier the engine
// merges all outboxes in the canonical order below and injects every
// record into the destination shard's scheduler.
//
// Determinism contract: the canonical order — (arrival time, global stub
// id, per-origin emission sequence) — is a strict total order that
// depends only on simulation content, never on worker count or cell
// decomposition. Two records can share an arrival time (ties then fall
// to stub id, then to the origin's own monotonic counter), so the
// injection order, and therefore the destination scheduler's tie-break
// sequence numbers, are reproducible bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/util/time.hpp"

namespace syndog::campaign {

struct MailboxRecord {
  /// Receiver-side arrival time. The conservative window protocol
  /// guarantees arrive_at > the exchanging barrier's time (lookahead).
  util::SimTime arrive_at;
  /// Global stub index: the origin for victim-bound records, the
  /// destination for stub-bound records. Part of the canonical order
  /// either way.
  std::uint32_t stub = 0;
  /// Per-origin monotonic emission counter (final tie-break).
  std::uint64_t seq = 0;
  net::Packet packet;
};

/// Canonical merge order: (arrive_at, stub, seq). Strict weak ordering;
/// total over any record set produced by one origin per (stub, seq).
[[nodiscard]] inline bool canonical_before(const MailboxRecord& a,
                                           const MailboxRecord& b) {
  if (a.arrive_at != b.arrive_at) return a.arrive_at < b.arrive_at;
  if (a.stub != b.stub) return a.stub < b.stub;
  return a.seq < b.seq;
}

/// Counters for everything that crosses (or dies at) the shard boundary
/// and the victim-side Internet edge. Mirrors the single-loop oracle's
/// sim::CloudStats split so the bench tables read the same.
struct CrossStats {
  std::uint64_t to_victim = 0;          ///< mailbox records stub -> victim
  std::uint64_t to_stubs = 0;           ///< mailbox records victim -> stub
  std::uint64_t dropped_unreachable = 0;  ///< victim replies to spoof pool
  std::uint64_t absorbed_elsewhere = 0;   ///< victim output off-path
  std::uint64_t barriers = 0;           ///< window barriers executed
};

}  // namespace syndog::campaign
