// Threaded window driver for CampaignSim (concurrency seam).
//
// CampaignRunner owns a persistent pool of worker threads and drives one
// CampaignSim through its window/barrier protocol: each window, workers
// claim cell indices off a shared atomic counter and call
// run_cell_until(cell, barrier) — safe for distinct cells because cells
// share no mutable state — then the coordinating thread performs the
// single-threaded exchange_and_advance(barrier). The worker count only
// changes which thread executes a cell, never the cell decomposition or
// any event ordering, so results are byte-identical to the inline
// CampaignSim::run_until(end) reference at any worker count.
//
// All cross-thread coordination lives in this header's .cpp: a
// generation-counted mutex/condvar start barrier and an atomic
// completion count. Workers never touch two cells at once and never run
// while the exchange is in progress.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "syndog/campaign/campaign_sim.hpp"
#include "syndog/util/time.hpp"

namespace syndog::campaign {

class CampaignRunner {
 public:
  /// Spawns `workers - 1` pool threads (the calling thread is worker 0).
  /// workers <= 1 spawns nothing and run() degenerates to the inline
  /// reference loop.
  CampaignRunner(CampaignSim& sim, int workers);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Advances the campaign to `end` window by window. May be called
  /// repeatedly (e.g. per flood wave) from the constructing thread.
  void run(util::SimTime end);

 private:
  void worker_loop();
  void run_window();
  /// Claims and executes cells until the shared index is exhausted.
  void drain_cells();

  CampaignSim& sim_;
  int workers_;

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  /// Incremented (under mutex_) to release the pool for one window.
  std::uint64_t generation_ = 0;
  /// Barrier the released generation must run its cells to.
  util::SimTime barrier_;
  bool shutdown_ = false;

  /// Next unclaimed cell index for the current window.
  std::atomic<int> next_cell_{0};
  /// Pool threads that have finished their share of the window.
  int idle_workers_ = 0;
};

}  // namespace syndog::campaign
