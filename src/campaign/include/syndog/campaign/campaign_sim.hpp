// Sharded campaign simulation: thousands of stub networks, one victim.
//
// `bench_multistub_campaign`'s MultiStubSim runs every stub in a single
// event loop — fine for 4 stubs, hopeless for the paper's §4.2.3 bound
// of A_s = 378–8000 stubs. CampaignSim exploits the structure of that
// setting: stubs are causally independent except at the shared victim,
// so the topology decomposes into `cells` (fixed groups of stubs, each
// with its own slot-arena sim::Scheduler, LeafRouters, SynDogAgents and
// per-stub child Rngs) plus one victim cell. Cells advance through
// conservative time windows no wider than the lookahead L = min(uplink
// delay, downlink delay); anything that crosses a cell boundary rides a
// MailboxRecord whose arrival time is computed analytically, and all
// mailboxes are merged in canonical order at each window barrier (see
// mailbox.hpp).
//
// Determinism: the cell count is fixed by the topology (never by the
// worker count), cells share no mutable state, and the barrier merge is
// canonically ordered — so every observable output (period tables,
// alarm timelines, stats, state_digest()) is byte-identical for
// workers=1 vs workers=8. The threaded driver lives in runner.cpp; this
// class plus `run_until(end)` is the single-threaded reference.
//
// Wide-area traffic model: there is no shared InternetCloud. Packets a
// stub sends to generic Internet space are answered by a *per-stub
// responder* (same semantics and timing as sim::InternetCloud — one
// bernoulli no-answer draw, a synthesized SYN/ACK after uplink + RTT +
// downlink — but drawing from the stub's own child Rng, which is what
// makes the shards independent). Packets addressed to the victim cross
// via mailbox; victim replies into a stub prefix cross back the same
// way; replies to the spoofed 240/8 pool die at the victim's edge
// exactly like the oracle's unreachable pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/campaign/mailbox.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/core/fleet.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/net/address.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/sim/tcp_host.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::campaign {

struct CampaignParams {
  /// Stub networks, in [1, kMaxStubs]. Stub `s` owns the /20 prefix
  /// based at 10.0.0.0 + (s << 12) — up to 4094 addressable hosts each.
  int stub_count = 4;
  /// Hosts addressable per stub, in [1, 4094]. Host indices are 1-based
  /// (offset 0 is the prefix base), matching MultiStubSim::host().
  std::uint32_t hosts_per_stub = 25;
  /// Scheduler cells the stubs are partitioned into; 0 = auto
  /// (min(stub_count, 64)). The victim always gets one extra cell.
  /// Results never depend on this — it only sets parallelism grain.
  int cells = 0;
  util::SimTime lan_delay = util::SimTime::microseconds(100);
  /// Cross-shard links are pure fixed latencies (the lossless, un-queued
  /// analogue of the oracle's LinkParams with loss=0, bandwidth=0): the
  /// mailbox protocol computes arrival times analytically, so any
  /// state-dependent link behaviour would break shard independence.
  util::SimTime uplink_delay = util::SimTime::milliseconds(5);
  util::SimTime downlink_delay = util::SimTime::milliseconds(5);
  /// Conservative window width; 0 = auto (the lookahead, min(uplink,
  /// downlink)). Must not exceed the lookahead.
  util::SimTime window = util::SimTime::zero();
  /// Per-stub responder model (mirrors sim::CloudParams).
  double no_answer_probability = 0.05;
  double rtt_median_s = 0.080;
  /// rtt_sigma == 0 selects the deterministic RTT (exactly rtt_median_s,
  /// no draw), the same seam sim::InternetCloud honours.
  double rtt_sigma = 0.35;
  net::Ipv4Address victim_ip{198, 51, 100, 10};
  std::uint16_t victim_port = 80;
  /// Victim replies into this pool die at the victim's edge (the oracle
  /// cloud's unreachable pool — where spoofed flood sources live).
  net::Ipv4Prefix unreachable_pool{net::Ipv4Address{240, 0, 0, 0}, 8};
  sim::TcpHostParams host_params;
  sim::TcpHostParams victim_params;
  core::SynDogParams agent_params;
  std::uint64_t seed = 1;

  static constexpr int kMaxStubs = 16384;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// Per-stub responder counters; the shard-local analogue of
/// sim::CloudStats (aggregated across stubs by responder_stats()).
struct ResponderStats {
  std::uint64_t syns_seen = 0;
  std::uint64_t syn_acks_generated = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t dropped_unreachable = 0;   ///< outbound into the spoof pool
  std::uint64_t absorbed_elsewhere = 0;    ///< non-SYN / off-model traffic
};

struct AlarmRecord {
  int stub = 0;
  core::AlarmEvent event;
};

class CampaignSim {
 public:
  explicit CampaignSim(CampaignParams params);

  CampaignSim(const CampaignSim&) = delete;
  CampaignSim& operator=(const CampaignSim&) = delete;

  [[nodiscard]] const CampaignParams& params() const { return params_; }
  [[nodiscard]] int stub_count() const { return params_.stub_count; }
  [[nodiscard]] net::Ipv4Prefix stub_prefix(int stub) const;
  [[nodiscard]] sim::LeafRouter& router(int stub);
  [[nodiscard]] core::SynDogAgent& agent(int stub);
  [[nodiscard]] const core::SynDogAgent& agent(int stub) const;
  /// Host `index` in [1, hosts_per_stub] of stub `stub` (1-based, like
  /// MultiStubSim::host()); materializes the TcpHost on first use.
  /// Throws std::out_of_range naming the valid range otherwise.
  [[nodiscard]] sim::TcpHost& host(int stub, std::uint32_t index);
  [[nodiscard]] sim::TcpHost& victim() { return *victim_; }
  [[nodiscard]] const sim::TcpHost& victim() const { return *victim_; }

  // ---- Workload -------------------------------------------------------
  // All of these must be called before run_until(); they draw only from
  // the named stub's child Rngs, so two stubs' workloads never share a
  // stream (the decomposition-independence invariant).

  /// One full TCP handshake from host `host_index` of `stub` to
  /// `dst:port` at time `at` (a real TcpHost::connect, retransmissions
  /// and all). Drives the oracle-equivalence tests.
  void connect_background(int stub, std::uint32_t host_index,
                          util::SimTime at, net::Ipv4Address dst,
                          std::uint16_t port = 80);
  /// Poisson host-stack background: like MultiStubSim::
  /// schedule_outbound_background, each start picks a random host of
  /// `stub` and a random generic-Internet server. Materializes hosts.
  void schedule_host_background(int stub,
                                const std::vector<util::SimTime>& starts);
  /// Wire-level Poisson background at `rate_per_sec` connections/s over
  /// [start, end): crafted SYNs from random hosts of `stub` to generic
  /// servers, answered by the stub responder. No TcpHost is
  /// materialized (2 events per connection), which is what makes ~1M
  /// simulated hosts affordable; the agent's sniffers see exactly the
  /// same SYN / SYN-ACK wire pairs as the host-stack path.
  void start_wire_background(int stub, double rate_per_sec,
                             util::SimTime start, util::SimTime end);
  /// Spoofed-source flood from host `host_index` of `stub` toward the
  /// victim; one SYN per entry of `syn_times`, sources drawn from
  /// `spoof_pool` (MultiStubSim::launch_flood's semantics).
  void launch_flood(int stub, std::uint32_t host_index,
                    const std::vector<util::SimTime>& syn_times,
                    net::Ipv4Prefix spoof_pool);

  // ---- Running --------------------------------------------------------

  /// Single-threaded reference run: windows + barriers inline, cells in
  /// ascending order.
  void run_until(util::SimTime end);
  /// Threaded run (runner.cpp): `workers` threads pull cells off a
  /// shared index each window. workers <= 1 is exactly run_until(end).
  void run_until(util::SimTime end, int workers);

  // ---- Runner protocol (see docs/CAMPAIGN.md) -------------------------
  // A window advances every cell to the barrier, then exchanges
  // mailboxes. run_cell_until may be called concurrently for *distinct*
  // cells; exchange_and_advance is single-threaded-only.

  /// Barrier clock: all cells have fully executed up to here.
  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] util::SimTime window() const { return window_; }
  /// Stub cells + 1 victim cell (the last index).
  [[nodiscard]] int cell_count() const;
  /// Runs cell `cell`'s scheduler to `until`; returns events executed.
  std::size_t run_cell_until(int cell, util::SimTime until);
  /// Merges all outboxes in canonical order, injects them into their
  /// destination cells, and advances now() to `barrier`. Throws
  /// std::logic_error if any record's arrival predates the barrier (the
  /// lookahead guarantee was violated).
  void exchange_and_advance(util::SimTime barrier);
  /// Smallest (arrival - barrier) slack seen across every injected
  /// record; SimTime::max() until something crosses. The randomized
  /// barrier property test asserts this never goes negative.
  [[nodiscard]] util::SimTime min_injection_margin() const {
    return min_injection_margin_;
  }

  // ---- Results --------------------------------------------------------

  [[nodiscard]] const CrossStats& cross_stats() const { return cross_; }
  /// Responder counters summed over stubs in ascending stub order.
  [[nodiscard]] ResponderStats responder_stats() const;
  /// Router stats summed over stubs in ascending stub order.
  [[nodiscard]] sim::RouterStats router_stats() const;
  /// Alarm events merged across stubs, ordered by (time, stub).
  [[nodiscard]] std::vector<AlarmRecord> merged_alarms() const;
  /// Stubs whose agent ever alarmed.
  [[nodiscard]] int stubs_alarmed() const;
  /// Events executed, summed over all cells (worker-count invariant).
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Canonical full-state rendering: per-stub period tables (%.17g),
  /// alarm timelines, router/responder/victim/cross stats. Two runs of
  /// the same campaign produce byte-identical digests regardless of
  /// worker count; the equivalence tests and the bench merge check
  /// compare these strings directly.
  [[nodiscard]] std::string state_digest() const;
  /// Mirrors campaign totals into "campaign.*" counters of `registry`
  /// (call after run_until; counters are created in a fixed order so
  /// metric exports stay byte-stable).
  void export_metrics(obs::Registry& registry) const;
  /// Replays every stub's period history into `recorder` in ascending
  /// stub order (core::FleetRecorder's fast-forward observe() path), so
  /// fleet telemetry of a sharded run is deterministic and merged.
  void record_fleet(core::FleetRecorder& recorder,
                    std::string_view name_prefix = "stub") const;

 private:
  struct StubNet {
    net::Ipv4Prefix prefix;
    std::unique_ptr<sim::LeafRouter> router;
    std::unique_ptr<core::SynDogAgent> agent;
    util::Rng workload_rng;   ///< wire/host background draws
    util::Rng flood_rng;      ///< spoofed source / sport / seq draws
    util::Rng responder_rng;  ///< no-answer, ISN, RTT draws
    std::vector<std::unique_ptr<sim::TcpHost>> hosts;  ///< lazy, [i-1]
    std::uint64_t mailbox_seq = 0;
    ResponderStats responder;
    std::vector<AlarmRecord> alarms;

    StubNet(std::uint64_t seed, int stub);
  };

  struct Cell {
    sim::Scheduler sched;
    std::vector<MailboxRecord> outbox;
  };

  [[nodiscard]] int cell_of(int stub) const;
  [[nodiscard]] sim::Scheduler& sched_of(int stub);
  [[nodiscard]] StubNet& stub_at(int stub);
  [[nodiscard]] const StubNet& stub_at(int stub) const;
  [[nodiscard]] net::MacAddress router_mac(int stub) const;
  [[nodiscard]] net::MacAddress host_mac(int stub,
                                         std::uint32_t index) const;
  /// Stub owning `ip`, or -1 if it is outside every stub prefix.
  [[nodiscard]] int stub_of(net::Ipv4Address ip) const;
  sim::TcpHost& ensure_host(int stub, std::uint32_t index);
  void check_host_index(std::uint32_t index) const;
  /// Router uplink sink for stub `stub`: victim-bound -> outbox,
  /// generic -> responder. Runs inside cell execution.
  void on_uplink(int stub, const net::Packet& packet);
  void respond(int stub, const net::Packet& packet);
  /// Schedules a responder reply to re-enter stub `stub` after uplink +
  /// RTT + downlink (the oracle cloud's round-trip timing).
  void schedule_reply(int stub, net::Packet reply);
  void note_injection(util::SimTime arrive_at, util::SimTime barrier);
  /// Victim TcpHost send sink: stub-bound -> victim outbox, spoof pool
  /// -> dropped. Runs inside victim-cell execution.
  void on_victim_send(const net::Packet& packet);
  void wire_background_step(int stub, double rate_per_sec,
                            util::SimTime end);
  void inject_into_victim(const MailboxRecord& record);
  void inject_into_stub(const MailboxRecord& record);

  CampaignParams params_;
  util::SimTime window_;
  std::vector<std::unique_ptr<Cell>> cells_;  ///< stub cells
  std::vector<std::unique_ptr<StubNet>> stubs_;
  std::unique_ptr<Cell> victim_cell_;
  std::unique_ptr<sim::TcpHost> victim_;
  std::uint64_t victim_seq_ = 0;
  util::SimTime now_;
  util::SimTime min_injection_margin_ = util::SimTime::max();
  CrossStats cross_;
  std::vector<MailboxRecord> merge_scratch_;
};

}  // namespace syndog::campaign
