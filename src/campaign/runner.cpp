#include "syndog/campaign/runner.hpp"

#include <algorithm>

namespace syndog::campaign {

CampaignRunner::CampaignRunner(CampaignSim& sim, int workers)
    : sim_(sim), workers_(std::max(workers, 1)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

CampaignRunner::~CampaignRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void CampaignRunner::drain_cells() {
  const int cells = sim_.cell_count();
  for (int cell = next_cell_.fetch_add(1, std::memory_order_relaxed);
       cell < cells;
       cell = next_cell_.fetch_add(1, std::memory_order_relaxed)) {
    sim_.run_cell_until(cell, barrier_);
  }
}

void CampaignRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen] { return generation_ != seen; });
      seen = generation_;
      if (shutdown_) return;
    }
    drain_cells();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++idle_workers_;
    }
    done_cv_.notify_one();
  }
}

void CampaignRunner::run_window() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_workers_ = 0;
    next_cell_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();
  drain_cells();  // the coordinator is worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return idle_workers_ == static_cast<int>(threads_.size());
    });
  }
}

void CampaignRunner::run(util::SimTime end) {
  if (threads_.empty()) {
    sim_.run_until(end);
    return;
  }
  while (sim_.now() < end) {
    barrier_ = std::min(sim_.now() + sim_.window(), end);
    run_window();
    // All cells are quiescent and the pool is parked: the exchange is
    // the only code touching any scheduler here.
    sim_.exchange_and_advance(barrier_);
  }
}

void CampaignSim::run_until(util::SimTime end, int workers) {
  if (workers <= 1) {
    run_until(end);
    return;
  }
  CampaignRunner runner(*this, workers);
  runner.run(end);
}

}  // namespace syndog::campaign
