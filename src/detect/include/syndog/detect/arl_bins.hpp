// Diurnal-aware false-alarm budget: the realized ARL0 of a site is not
// the ARL0 at its mean rate. Quiet hours have a small per-period
// SYN/ACK count lambda, hence a heavier-tailed scaled Poisson (arl.hpp)
// and a much shorter run length — and since false-alarm *rates* add,
// the quiet bins dominate the budget. This header bins the realized
// per-period counts into equal-occupancy quantile bins, evaluates the
// Brook & Evans ARL0 per bin, and combines the bins by harmonic mean
// (equivalently: averaging the per-period false-alarm rates).
//
// Shared by `syndog_tool sensitivity` and bench_adaptive_tuning; see
// docs/STATIC_ANALYSIS.md's sibling docs and EXPERIMENTS.md for the
// expected shapes.
#pragma once

#include <vector>

namespace syndog::detect {

struct LambdaBinArl {
  double lambda = 0.0;  ///< mean per-period SYN/ACK count in the bin
  double arl0 = 0.0;    ///< periods between false alarms at that rate
};

struct BinnedArlSpec {
  double c = 0.0;           ///< normal mean of Xn = delta / K-bar (> 0)
  double offset = 0.35;     ///< the CUSUM's drift offset a
  double threshold = 1.05;  ///< alarm threshold N
  int bins = 4;             ///< quantile bins (>= 1)
  int states = 400;         ///< ARL discretization resolution

  void validate() const;
};

struct BinnedArlResult {
  /// One entry per quantile bin, quietest first. Empty when fewer
  /// positive counts than bins were supplied.
  std::vector<LambdaBinArl> bins;
  /// Harmonic mean of the per-bin ARL0s — the realized site-wide mean
  /// time between false alarms under equal bin occupancy.
  double combined_arl0 = 0.0;
  /// The single-rate ARL0 at `mean_lambda`, the figure a diurnal-blind
  /// analysis would quote.
  double mean_rate_arl0 = 0.0;
};

/// Bins the positive entries of `counts` (per-period SYN/ACK counts;
/// non-positive entries are dropped — "no traffic" is not a rate) into
/// `spec.bins` quantile bins and evaluates the scaled-Poisson CUSUM
/// ARL0 for each, plus the combined and mean-rate figures.
/// `mean_lambda` is the caller's overall K-bar estimate (it may include
/// zero periods, so it is not derived from `counts`).
[[nodiscard]] BinnedArlResult binned_poisson_arl(
    std::vector<double> counts, double mean_lambda,
    const BinnedArlSpec& spec);

}  // namespace syndog::detect
