// Shiryaev-Roberts change detection.
//
// The classical Bayesian-flavored alternative to CUSUM: maintain
// R(n) = (1 + R(n-1)) * L(n), alarm when R(n) > A, where L(n) is the
// likelihood ratio of the n-th observation. SR is optimal for detecting a
// change occurring at a "distant" time; CUSUM for the worst-case change
// point. Both appear throughout the sequential-detection literature the
// paper builds on [1, 4]; we include SR in the comparator bench.
//
// Two scoring modes:
//  * Gaussian: L(n) from the N(mu0, sigma) vs N(mu1, sigma) model;
//  * non-parametric: L(n) = exp(g * (x - a)), the same drift score the
//    paper's CUSUM uses, exponentiated with gain g.
//
// The recursion runs in log space so long quiet stretches cannot
// underflow R to zero.
#pragma once

#include <stdexcept>

#include "syndog/detect/change_detector.hpp"

namespace syndog::detect {

struct ShiryaevRobertsParams {
  /// Alarm when R(n) > threshold (A). Mean time between false alarms is
  /// ~A for i.i.d. data, so A plays the role CUSUM's exp(N) does.
  double threshold = 1000.0;
  /// Score offset `a`: observations below it argue for "no change".
  double score_offset = 0.35;
  /// Score gain g of the non-parametric mode.
  double gain = 4.0;

  void validate() const {
    if (threshold <= 0.0) {
      throw std::invalid_argument("ShiryaevRoberts: threshold must be > 0");
    }
    if (gain <= 0.0) {
      throw std::invalid_argument("ShiryaevRoberts: gain must be > 0");
    }
  }
};

class ShiryaevRoberts final : public ChangeDetector {
 public:
  explicit ShiryaevRoberts(ShiryaevRobertsParams params);

  Decision update(double x) override;
  /// Returns R(n) (converted back from log space).
  [[nodiscard]] double statistic() const override;
  [[nodiscard]] double threshold() const override {
    return params_.threshold;
  }
  void reset() override;
  [[nodiscard]] std::string_view name() const override {
    return "shiryaev-roberts";
  }

 private:
  ShiryaevRobertsParams params_;
  double log_r_;  ///< log(R); R(0) = 0 is represented as -inf
};

}  // namespace syndog::detect
