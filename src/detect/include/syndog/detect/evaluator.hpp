// Detection-performance evaluation (paper §3.2's two fundamental measures).
//
// Given per-period observation series with a known attack onset, the
// evaluator computes the *detection time* (delay in periods from onset to
// first alarm) per trial, and aggregates *detection probability* and mean
// delay across an ensemble — the exact quantities of Tables 2 and 3. On
// attack-free series it measures false alarms and the time between them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "syndog/detect/change_detector.hpp"
#include "syndog/obs/trace.hpp"

namespace syndog::detect {

/// Outcome of running a detector over one trial series.
struct TrialResult {
  /// Delay in periods from attack onset to first alarm at or after onset
  /// (0 = alarm in the onset period); nullopt = never detected.
  std::optional<std::int64_t> detection_delay;
  /// Alarms strictly before onset (false alarms for attack trials; all
  /// alarms for attack-free trials with onset == series length).
  std::int64_t false_alarms = 0;
  /// Test statistic trajectory, one entry per observation.
  std::vector<double> statistic_path;
};

/// Optional telemetry for run_trial: when `tracer` is set, every detector
/// update is recorded as an obs::DetectorStep timestamped at
/// `period * index` on the DES clock (period zero leaves ordering to the
/// seq/index fields). This is how the GLR/Shiryaev/ARL comparators expose
/// their statistic paths to the exporters without a CUSUM-shaped API.
struct TraceOptions {
  obs::EventTracer* tracer = nullptr;
  util::SimTime period = util::SimTime::zero();
};

/// Feeds `series` to a fresh detector. `attack_onset` is the index of the
/// first attack-affected observation (pass series.size() for attack-free
/// runs). The detector keeps running after a pre-onset alarm (the statistic
/// resets itself in CUSUM-style detectors), which matches how a deployed
/// monitor behaves.
[[nodiscard]] TrialResult run_trial(ChangeDetector& detector,
                                    const std::vector<double>& series,
                                    std::size_t attack_onset,
                                    const TraceOptions& trace = {});

/// Ensemble aggregate over trials, mirroring the paper's table columns.
struct EnsembleResult {
  std::int64_t trials = 0;
  std::int64_t detected = 0;
  double detection_probability = 0.0;
  /// Mean delay over *detected* trials, in periods; 0 when none detected.
  double mean_detection_delay = 0.0;
  double max_detection_delay = 0.0;
  std::int64_t total_false_alarms = 0;
  /// Mean periods between false alarms; +inf when none occurred.
  double mean_false_alarm_spacing = 0.0;
};

/// Runs `trials` independent series (produced by `make_series`, which also
/// reports each trial's attack onset) through fresh detectors from
/// `make_detector`.
struct TrialSpec {
  std::vector<double> series;
  std::size_t attack_onset = 0;
};

[[nodiscard]] EnsembleResult evaluate_ensemble(
    const std::function<std::unique_ptr<ChangeDetector>()>& make_detector,
    const std::function<TrialSpec(std::uint64_t trial_index)>& make_series,
    std::int64_t trials);

}  // namespace syndog::detect
