// Sequential change detection interface.
//
// A detector consumes one observation per period and answers, on-line,
// whether the observed series is still statistically homogeneous (paper §3.2
// and Basseville & Nikiforov [1]). Implementations are O(1) state — the
// whole point of SYN-dog is that the router keeps no per-connection state.
#pragma once

#include <cstdint>
#include <string_view>

namespace syndog::detect {

struct Decision {
  bool alarm = false;      ///< change declared at this observation
  double statistic = 0.0;  ///< detector's test statistic after the update
};

class ChangeDetector {
 public:
  virtual ~ChangeDetector() = default;

  /// Feeds the next observation; returns the updated decision.
  virtual Decision update(double x) = 0;
  /// Current test statistic without feeding a sample.
  [[nodiscard]] virtual double statistic() const = 0;
  /// Alarm threshold the statistic is compared against.
  [[nodiscard]] virtual double threshold() const = 0;
  /// Restores the freshly constructed state.
  virtual void reset() = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Observations consumed since construction/reset.
  [[nodiscard]] std::int64_t samples_seen() const { return samples_; }

 protected:
  void count_sample() { ++samples_; }
  void reset_sample_count() { samples_ = 0; }

 private:
  std::int64_t samples_ = 0;
};

}  // namespace syndog::detect
