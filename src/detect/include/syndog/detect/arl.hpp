// Average run length (ARL) of the non-parametric CUSUM, computed
// numerically by the Brook & Evans (1972) Markov-chain method.
//
// The CUSUM statistic y is discretized into m states on [0, N]; the
// transition kernel follows from the increment distribution X - a. The
// expected number of steps until y > N starting from y = 0 solves
// (I - Q) t = 1 with Q the within-band transition matrix. With Gaussian
// observations this gives, in closed numerical form, both design
// quantities of paper §3.2:
//   * ARL0 (mean time between false alarms) when E[X] = c < a, and
//   * ARL1 (detection delay) when E[X] = c + drift during an attack —
// letting an operator pick N for a false-alarm budget instead of relying
// on the asymptotic Eq. (5).
#pragma once

#include <stdexcept>

namespace syndog::detect {

struct ArlSpec {
  double mean = 0.0;     ///< E[X] of the observations
  double stddev = 0.1;   ///< sigma of the observations (> 0)
  double offset = 0.35;  ///< the CUSUM's drift offset a
  double threshold = 1.05;  ///< alarm threshold N
  int states = 200;      ///< discretization resolution (>= 8)

  void validate() const {
    if (!(stddev > 0.0)) {
      throw std::invalid_argument("ArlSpec: stddev must be > 0");
    }
    if (!(threshold > 0.0)) {
      throw std::invalid_argument("ArlSpec: threshold must be > 0");
    }
    if (states < 8 || states > 2000) {
      throw std::invalid_argument("ArlSpec: states in [8, 2000]");
    }
  }
};

/// Expected observations until the CUSUM crosses the threshold, starting
/// from y = 0, for i.i.d. Gaussian observations. Returns +inf if the
/// linear system is (numerically) absorbing-free, which cannot happen
/// for stddev > 0 but guards degenerate inputs.
[[nodiscard]] double cusum_average_run_length(const ArlSpec& spec);

/// Same Markov-chain computation for the small-site regime, where the
/// Gaussian kernel fails: at a stub leaf router the per-period
/// unanswered-SYN count is a small Poisson, so Xn = count / K-bar is a
/// *scaled Poisson* — discrete and strongly right-skewed. Its upper tail
/// carries orders of magnitude more mass than a Gaussian with matched
/// moments, and since the ARL is driven by tail excursions, the Gaussian
/// Eq. (5) prediction can overestimate the time between false alarms by
/// ~100x (see bench_fleet_telemetry and EXPERIMENTS.md).
struct PoissonArlSpec {
  double rate = 1.0;     ///< lambda of the per-period count (> 0)
  double scale = 0.1;    ///< Xn = count * scale, i.e. 1 / K-bar (> 0)
  double offset = 0.35;  ///< the CUSUM's drift offset a
  double threshold = 1.05;  ///< alarm threshold N
  int states = 200;      ///< discretization resolution (>= 8)

  void validate() const {
    if (!(rate > 0.0)) {
      throw std::invalid_argument("PoissonArlSpec: rate must be > 0");
    }
    if (!(scale > 0.0)) {
      throw std::invalid_argument("PoissonArlSpec: scale must be > 0");
    }
    if (!(threshold > 0.0)) {
      throw std::invalid_argument("PoissonArlSpec: threshold must be > 0");
    }
    if (states < 8 || states > 2000) {
      throw std::invalid_argument("PoissonArlSpec: states in [8, 2000]");
    }
  }
};

/// Expected observations until the CUSUM crosses the threshold, starting
/// from y = 0, for i.i.d. scaled-Poisson observations.
[[nodiscard]] double cusum_average_run_length(const PoissonArlSpec& spec);

}  // namespace syndog::detect
