// Control-chart baselines.
//
// These are the standard anomaly-detection alternatives a practitioner
// would reach for instead of CUSUM. They are included as comparators for
// the ablation benches: EWMA charts react to sustained small shifts more
// slowly than CUSUM, and Shewhart/static thresholds either miss low-rate
// floods or fire on normal bursts.
#pragma once

#include <stdexcept>

#include "syndog/detect/change_detector.hpp"
#include "syndog/stats/online.hpp"

namespace syndog::detect {

struct EwmaChartParams {
  double lambda = 0.2;      ///< smoothing of the monitored statistic, (0,1)
  double control_limit = 3.0;  ///< L, in sigma units
  /// Memory of the baseline mean/variance estimator, (0,1); baseline
  /// adapts only while no alarm is active so an attack cannot poison it.
  double baseline_alpha = 0.98;
  std::int64_t warmup_samples = 8;  ///< no alarms while calibrating

  void validate() const {
    if (!(lambda > 0.0 && lambda < 1.0)) {
      throw std::invalid_argument("EwmaChart: lambda must be in (0,1)");
    }
    if (control_limit <= 0.0) {
      throw std::invalid_argument("EwmaChart: control_limit must be > 0");
    }
    if (!(baseline_alpha > 0.0 && baseline_alpha < 1.0)) {
      throw std::invalid_argument("EwmaChart: baseline_alpha in (0,1)");
    }
  }
};

/// One-sided (upper) EWMA control chart with a self-calibrating baseline.
class EwmaChart final : public ChangeDetector {
 public:
  explicit EwmaChart(EwmaChartParams params);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return z_; }
  /// Current upper control limit (moves with the baseline estimate).
  [[nodiscard]] double threshold() const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override {
    return "ewma-chart";
  }

 private:
  EwmaChartParams params_;
  stats::EwmaMeanVar baseline_;
  double z_ = 0.0;
  bool z_primed_ = false;
};

struct ShewhartParams {
  double sigma_limit = 3.0;        ///< k, in sigma units
  double baseline_alpha = 0.98;
  std::int64_t warmup_samples = 8;

  void validate() const {
    if (sigma_limit <= 0.0) {
      throw std::invalid_argument("Shewhart: sigma_limit must be > 0");
    }
    if (!(baseline_alpha > 0.0 && baseline_alpha < 1.0)) {
      throw std::invalid_argument("Shewhart: baseline_alpha in (0,1)");
    }
  }
};

/// Per-sample x > mu + k*sigma test (no memory across samples).
class ShewhartChart final : public ChangeDetector {
 public:
  explicit ShewhartChart(ShewhartParams params);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return last_; }
  [[nodiscard]] double threshold() const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "shewhart"; }

 private:
  ShewhartParams params_;
  stats::EwmaMeanVar baseline_;
  double last_ = 0.0;
};

/// Fixed threshold on the raw observation — the naive "alarm when the SYN
/// count exceeds T" detector that needs per-site tuning; the paper's
/// normalization exists precisely to avoid this.
class StaticThreshold final : public ChangeDetector {
 public:
  explicit StaticThreshold(double threshold);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return last_; }
  [[nodiscard]] double threshold() const override { return threshold_; }
  void reset() override;
  [[nodiscard]] std::string_view name() const override {
    return "static-threshold";
  }

 private:
  double threshold_;
  double last_ = 0.0;
};

}  // namespace syndog::detect
