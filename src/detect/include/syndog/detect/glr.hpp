// Windowed Generalized Likelihood Ratio (GLR) change detection.
//
// Where CUSUM assumes a known post-change drift bound (the paper's
// h = 2a), GLR estimates the change magnitude by maximizing the
// likelihood over all candidate change points k in a trailing window:
//
//   g(n) = max_{n-M < k <= n}  (S(n) - S(k))^2 / (2 * sigma^2 * (n - k))
//
// with S the running sum. It detects shifts of *unknown* size at the
// price of O(M) work per observation and a window of state — a useful
// contrast to SYN-dog's O(1): better parameter-freedom, worse router
// economics.
#pragma once

#include <deque>
#include <stdexcept>

#include "syndog/detect/change_detector.hpp"

namespace syndog::detect {

struct GlrParams {
  /// Assumed pre-change mean (SYN-dog's c; 0 is the conservative choice).
  double mean_normal = 0.0;
  /// Noise scale sigma of the observations; must be > 0.
  double stddev = 0.1;
  /// Trailing window of candidate change points, >= 2.
  int window = 60;
  /// Alarm threshold on g(n); for i.i.d. Gaussian data the false-alarm
  /// time grows roughly like exp(threshold).
  double threshold = 12.0;

  void validate() const {
    if (!(stddev > 0.0)) {
      throw std::invalid_argument("Glr: stddev must be > 0");
    }
    if (window < 2) {
      throw std::invalid_argument("Glr: window must be >= 2");
    }
    if (!(threshold > 0.0)) {
      throw std::invalid_argument("Glr: threshold must be > 0");
    }
  }
};

class GlrDetector final : public ChangeDetector {
 public:
  explicit GlrDetector(GlrParams params);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return g_; }
  [[nodiscard]] double threshold() const override {
    return params_.threshold;
  }
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "glr"; }

  /// The maximizing change-point age (observations ago) of the last
  /// update; 0 before any update.
  [[nodiscard]] int change_point_age() const { return best_age_; }

 private:
  GlrParams params_;
  std::deque<double> window_;  ///< centered increments x - mean_normal
  double g_ = 0.0;
  int best_age_ = 0;
};

}  // namespace syndog::detect
