// CUSUM change detectors.
//
// NonParametricCusum is the paper's Eq. (2)-(4): yn = (y(n-1) + Xn - a)^+,
// alarm when yn > N. It assumes only that the pre-change mean of Xn is
// below `a`; no distributional model (Brodsky & Darkhovsky [4]).
//
// ParametricCusum is the classical Page/Lorden log-likelihood-ratio CUSUM
// for a Gaussian mean shift, included as the model-based comparator: it is
// sharper when its model holds and brittle when it does not — exactly the
// trade-off that motivates the paper's non-parametric choice.
#pragma once

#include <stdexcept>

#include "syndog/detect/change_detector.hpp"

namespace syndog::detect {

struct NonParametricCusumParams {
  /// Upper bound `a` on the normal-operation mean of the observations
  /// (paper default 0.35). The update subtracts it so the drift is negative
  /// pre-change.
  double drift_offset = 0.35;
  /// Flooding threshold `N` (paper default 1.05).
  double threshold = 1.05;
  /// Bounded-CUSUM cap on the statistic (0 = unbounded, the paper's
  /// form). A long flood drives an unbounded statistic arbitrarily high,
  /// so the alarm outlives the attack by y/(a - c) periods; capping at a
  /// small multiple of the threshold bounds that inertia without
  /// affecting detection (the alarm fires at the threshold either way).
  double max_statistic = 0.0;

  void validate() const {
    if (threshold <= 0.0) {
      throw std::invalid_argument("CUSUM: threshold must be positive");
    }
    if (max_statistic != 0.0 && max_statistic < threshold) {
      throw std::invalid_argument(
          "CUSUM: max_statistic must be 0 or >= threshold");
    }
  }
};

class NonParametricCusum final : public ChangeDetector {
 public:
  explicit NonParametricCusum(NonParametricCusumParams params);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return y_; }
  [[nodiscard]] double threshold() const override {
    return params_.threshold;
  }
  void reset() override;
  [[nodiscard]] std::string_view name() const override {
    return "np-cusum";
  }

  [[nodiscard]] const NonParametricCusumParams& params() const {
    return params_;
  }

  /// Conservative normalized detection delay of Eq. (7):
  ///   rho_N ~= N / (h - |c - a|)   observation periods,
  /// where h is the post-change mean increase and c the pre-change mean.
  /// Returns +inf when the attack drift does not exceed the offset.
  [[nodiscard]] static double expected_delay_periods(double threshold,
                                                     double h, double c,
                                                     double a);

 private:
  NonParametricCusumParams params_;
  double y_ = 0.0;
};

struct ParametricCusumParams {
  double mean_normal = 0.0;   ///< mu0
  double mean_attack = 1.0;   ///< mu1 > mu0
  double stddev = 1.0;        ///< shared sigma > 0
  double threshold = 5.0;     ///< decision threshold on the LLR statistic

  void validate() const {
    if (stddev <= 0.0) {
      throw std::invalid_argument("ParametricCusum: stddev must be > 0");
    }
    if (mean_attack <= mean_normal) {
      throw std::invalid_argument(
          "ParametricCusum: mean_attack must exceed mean_normal");
    }
    if (threshold <= 0.0) {
      throw std::invalid_argument("ParametricCusum: threshold must be > 0");
    }
  }
};

class ParametricCusum final : public ChangeDetector {
 public:
  explicit ParametricCusum(ParametricCusumParams params);

  Decision update(double x) override;
  [[nodiscard]] double statistic() const override { return g_; }
  [[nodiscard]] double threshold() const override {
    return params_.threshold;
  }
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "cusum-llr"; }

 private:
  ParametricCusumParams params_;
  double g_ = 0.0;
};

}  // namespace syndog::detect
