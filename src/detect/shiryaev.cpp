#include "syndog/detect/shiryaev.hpp"

#include <cmath>
#include <limits>

namespace syndog::detect {

ShiryaevRoberts::ShiryaevRoberts(ShiryaevRobertsParams params)
    : params_(params),
      log_r_(-std::numeric_limits<double>::infinity()) {
  params_.validate();
}

Decision ShiryaevRoberts::update(double x) {
  count_sample();
  // log R(n) = log(1 + R(n-1)) + log L(n)
  //          = log1p(exp(log R(n-1))) + g * (x - a).
  const double log_one_plus_r =
      std::isinf(log_r_) ? 0.0
      : log_r_ > 30.0    ? log_r_  // 1 + R ~= R far above threshold
                         : std::log1p(std::exp(log_r_));
  log_r_ = log_one_plus_r + params_.gain * (x - params_.score_offset);
  const double r = std::exp(std::min(log_r_, 700.0));
  return Decision{r > params_.threshold, r};
}

double ShiryaevRoberts::statistic() const {
  return std::exp(std::min(log_r_, 700.0));
}

void ShiryaevRoberts::reset() {
  log_r_ = -std::numeric_limits<double>::infinity();
  reset_sample_count();
}

}  // namespace syndog::detect
