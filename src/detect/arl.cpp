#include "syndog/detect/arl.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace syndog::detect {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Band centers of the Brook & Evans discretization: state i represents
/// y in [i*w, (i+1)*w), approximated by its center; state 0's center is
/// pinned to 0 because the reset-at-zero atom carries most of the
/// stationary mass under normal operation.
std::vector<double> band_centers(int m, double width) {
  std::vector<double> centers(static_cast<std::size_t>(m));
  centers[0] = 0.0;
  for (int i = 1; i < m; ++i) {
    centers[static_cast<std::size_t>(i)] = (i + 0.5) * width;
  }
  return centers;
}

/// Expected steps until absorption starting from state 0, given the
/// within-band transition matrix Q (row-major m x m): solves
/// (I - Q) t = 1 by Gaussian elimination with partial pivoting. Returns
/// +inf if the system is (numerically) absorbing-free.
double expected_hitting_time(const std::vector<double>& q, int m) {
  std::vector<double> a(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(m));
  std::vector<double> t(static_cast<std::size_t>(m), 1.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const std::size_t at =
          static_cast<std::size_t>(i) * m + static_cast<std::size_t>(j);
      a[at] = (i == j ? 1.0 : 0.0) - q[at];
    }
  }
  for (int col = 0; col < m; ++col) {
    int pivot = col;
    for (int row = col + 1; row < m; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row) * m + col]) >
          std::abs(a[static_cast<std::size_t>(pivot) * m + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[static_cast<std::size_t>(pivot) * m + col]) < 1e-14) {
      return std::numeric_limits<double>::infinity();
    }
    if (pivot != col) {
      for (int j = 0; j < m; ++j) {
        std::swap(a[static_cast<std::size_t>(col) * m + j],
                  a[static_cast<std::size_t>(pivot) * m + j]);
      }
      std::swap(t[static_cast<std::size_t>(col)],
                t[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / a[static_cast<std::size_t>(col) * m + col];
    for (int row = col + 1; row < m; ++row) {
      const double factor =
          a[static_cast<std::size_t>(row) * m + col] * inv;
      if (factor == 0.0) continue;
      for (int j = col; j < m; ++j) {
        a[static_cast<std::size_t>(row) * m + j] -=
            factor * a[static_cast<std::size_t>(col) * m + j];
      }
      t[static_cast<std::size_t>(row)] -=
          factor * t[static_cast<std::size_t>(col)];
    }
  }
  for (int row = m - 1; row >= 0; --row) {
    double acc = t[static_cast<std::size_t>(row)];
    for (int j = row + 1; j < m; ++j) {
      acc -= a[static_cast<std::size_t>(row) * m + j] *
             t[static_cast<std::size_t>(j)];
    }
    t[static_cast<std::size_t>(row)] =
        acc / a[static_cast<std::size_t>(row) * m + row];
  }
  return t[0];  // expected run length starting from y = 0
}

}  // namespace

double cusum_average_run_length(const ArlSpec& spec) {
  spec.validate();
  const int m = spec.states;
  const double width = spec.threshold / static_cast<double>(m);
  const std::vector<double> centers = band_centers(m, width);

  // Transition probabilities: y' = max(0, y + X - a) with X ~ N(mu, sigma).
  // P(y' in state j) integrates the Gaussian over the band; the j = 0
  // band additionally absorbs all mass that clips at zero.
  const double shift = spec.mean - spec.offset;
  std::vector<double> q(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double y = centers[static_cast<std::size_t>(i)];
    for (int j = 0; j < m; ++j) {
      const double lo = j == 0 ? -std::numeric_limits<double>::infinity()
                               : j * width;
      const double hi = (j + 1) * width;
      const double z_lo =
          std::isinf(lo) ? -std::numeric_limits<double>::infinity()
                         : (lo - y - shift) / spec.stddev;
      const double z_hi = (hi - y - shift) / spec.stddev;
      const double p_lo = std::isinf(z_lo) ? 0.0 : phi(z_lo);
      q[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(j)] =
          phi(z_hi) - p_lo;
    }
  }
  return expected_hitting_time(q, m);
}

double cusum_average_run_length(const PoissonArlSpec& spec) {
  spec.validate();
  const int m = spec.states;
  const double width = spec.threshold / static_cast<double>(m);
  const std::vector<double> centers = band_centers(m, width);

  // The count support is effectively [0, rate + 12*sqrt(rate) + 24]:
  // the pmf beyond that is below ~1e-12 even for small rates, and any
  // truncated mass would only land in the absorbing tail anyway (large
  // counts push y past N), so dropping it biases the ARL upward by a
  // negligible amount.
  const int k_max = static_cast<int>(
      std::ceil(spec.rate + 12.0 * std::sqrt(spec.rate) + 24.0));
  std::vector<double> pmf(static_cast<std::size_t>(k_max) + 1);
  pmf[0] = std::exp(-spec.rate);
  for (int k = 1; k <= k_max; ++k) {
    pmf[static_cast<std::size_t>(k)] =
        pmf[static_cast<std::size_t>(k) - 1] * spec.rate /
        static_cast<double>(k);
  }

  // Transition probabilities: y' = max(0, y + k*scale - a), k ~ Poisson.
  // Each atom lands in exactly one band (or is absorbed when y' > N).
  std::vector<double> q(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double y = centers[static_cast<std::size_t>(i)];
    for (int k = 0; k <= k_max; ++k) {
      const double next = std::max(
          0.0, y + static_cast<double>(k) * spec.scale - spec.offset);
      if (next > spec.threshold) break;  // this and larger k: absorbed
      const int j =
          std::min(static_cast<int>(next / width), m - 1);
      q[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(j)] +=
          pmf[static_cast<std::size_t>(k)];
    }
  }
  return expected_hitting_time(q, m);
}

}  // namespace syndog::detect
