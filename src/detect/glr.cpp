#include "syndog/detect/glr.hpp"

namespace syndog::detect {

GlrDetector::GlrDetector(GlrParams params) : params_(params) {
  params_.validate();
}

Decision GlrDetector::update(double x) {
  count_sample();
  window_.push_back(x - params_.mean_normal);
  if (static_cast<int>(window_.size()) > params_.window) {
    window_.pop_front();
  }

  // g(n) = max over suffix lengths m of (suffix sum)^2 / (2 sigma^2 m).
  const double two_var = 2.0 * params_.stddev * params_.stddev;
  double suffix = 0.0;
  double best = 0.0;
  int best_age = 1;
  int m = 0;
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    suffix += *it;
    ++m;
    const double g = suffix * suffix / (two_var * m);
    if (g > best) {
      best = g;
      best_age = m;
    }
  }
  g_ = best;
  best_age_ = best_age;
  return Decision{g_ > params_.threshold, g_};
}

void GlrDetector::reset() {
  window_.clear();
  g_ = 0.0;
  best_age_ = 0;
  reset_sample_count();
}

}  // namespace syndog::detect
