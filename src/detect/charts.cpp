#include "syndog/detect/charts.hpp"

#include <cmath>
#include <limits>

namespace syndog::detect {

EwmaChart::EwmaChart(EwmaChartParams params)
    : params_(params), baseline_(params.baseline_alpha) {
  params_.validate();
}

double EwmaChart::threshold() const {
  if (!baseline_.primed()) return std::numeric_limits<double>::infinity();
  // Var(z) for an EWMA of i.i.d. samples: sigma^2 * lambda / (2 - lambda).
  const double sigma_z =
      baseline_.stddev() *
      std::sqrt(params_.lambda / (2.0 - params_.lambda));
  return baseline_.mean() + params_.control_limit * sigma_z;
}

Decision EwmaChart::update(double x) {
  count_sample();
  if (!z_primed_) {
    z_ = x;
    z_primed_ = true;
  } else {
    z_ = params_.lambda * x + (1.0 - params_.lambda) * z_;
  }
  const bool warm = samples_seen() > params_.warmup_samples;
  const bool alarm = warm && baseline_.primed() && z_ > threshold();
  // Freeze the baseline during an alarm so the attack cannot absorb itself
  // into the estimate of "normal".
  if (!alarm) baseline_.add(x);
  return Decision{alarm, z_};
}

void EwmaChart::reset() {
  baseline_ = stats::EwmaMeanVar(params_.baseline_alpha);
  z_ = 0.0;
  z_primed_ = false;
  reset_sample_count();
}

ShewhartChart::ShewhartChart(ShewhartParams params)
    : params_(params), baseline_(params.baseline_alpha) {
  params_.validate();
}

double ShewhartChart::threshold() const {
  if (!baseline_.primed()) return std::numeric_limits<double>::infinity();
  return baseline_.mean() + params_.sigma_limit * baseline_.stddev();
}

Decision ShewhartChart::update(double x) {
  count_sample();
  last_ = x;
  const bool warm = samples_seen() > params_.warmup_samples;
  const bool alarm = warm && baseline_.primed() && x > threshold();
  if (!alarm) baseline_.add(x);
  return Decision{alarm, last_};
}

void ShewhartChart::reset() {
  baseline_ = stats::EwmaMeanVar(params_.baseline_alpha);
  last_ = 0.0;
  reset_sample_count();
}

StaticThreshold::StaticThreshold(double threshold) : threshold_(threshold) {}

Decision StaticThreshold::update(double x) {
  count_sample();
  last_ = x;
  return Decision{x > threshold_, x};
}

void StaticThreshold::reset() {
  last_ = 0.0;
  reset_sample_count();
}

}  // namespace syndog::detect
