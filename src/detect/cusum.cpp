#include "syndog/detect/cusum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace syndog::detect {

NonParametricCusum::NonParametricCusum(NonParametricCusumParams params)
    : params_(params) {
  params_.validate();
}

Decision NonParametricCusum::update(double x) {
  count_sample();
  y_ = std::max(0.0, y_ + (x - params_.drift_offset));
  if (params_.max_statistic > 0.0) {
    y_ = std::min(y_, params_.max_statistic);
  }
  return Decision{y_ > params_.threshold, y_};
}

void NonParametricCusum::reset() {
  y_ = 0.0;
  reset_sample_count();
}

double NonParametricCusum::expected_delay_periods(double threshold, double h,
                                                  double c, double a) {
  const double drift = h - std::abs(c - a);
  if (drift <= 0.0) return std::numeric_limits<double>::infinity();
  return threshold / drift;
}

ParametricCusum::ParametricCusum(ParametricCusumParams params)
    : params_(params) {
  params_.validate();
}

Decision ParametricCusum::update(double x) {
  count_sample();
  // Log-likelihood ratio increment for N(mu0, sigma) vs N(mu1, sigma):
  //   s = (mu1 - mu0)/sigma^2 * (x - (mu0 + mu1)/2)
  const double mu0 = params_.mean_normal;
  const double mu1 = params_.mean_attack;
  const double var = params_.stddev * params_.stddev;
  const double s = (mu1 - mu0) / var * (x - 0.5 * (mu0 + mu1));
  g_ = std::max(0.0, g_ + s);
  return Decision{g_ > params_.threshold, g_};
}

void ParametricCusum::reset() {
  g_ = 0.0;
  reset_sample_count();
}

}  // namespace syndog::detect
