#include "syndog/detect/arl_bins.hpp"

#include <algorithm>
#include <stdexcept>

#include "syndog/detect/arl.hpp"

namespace syndog::detect {

void BinnedArlSpec::validate() const {
  if (!(c > 0.0)) {
    throw std::invalid_argument("BinnedArlSpec: c must be > 0");
  }
  if (bins < 1) {
    throw std::invalid_argument("BinnedArlSpec: bins must be >= 1");
  }
  // offset/threshold/states range checks are delegated to
  // PoissonArlSpec::validate() at evaluation time.
}

namespace {

double arl_at(double lambda, const BinnedArlSpec& spec) {
  PoissonArlSpec arl_spec;
  arl_spec.rate = spec.c * lambda;
  arl_spec.scale = 1.0 / lambda;
  arl_spec.offset = spec.offset;
  arl_spec.threshold = spec.threshold;
  arl_spec.states = spec.states;
  return cusum_average_run_length(arl_spec);
}

}  // namespace

BinnedArlResult binned_poisson_arl(std::vector<double> counts,
                                   double mean_lambda,
                                   const BinnedArlSpec& spec) {
  spec.validate();
  BinnedArlResult result;
  counts.erase(std::remove_if(counts.begin(), counts.end(),
                              [](double v) { return !(v > 0.0); }),
               counts.end());
  std::sort(counts.begin(), counts.end());
  if (counts.size() >= static_cast<std::size_t>(spec.bins)) {
    double fa_rate_sum = 0.0;  // per-period false-alarm rate, averaged
    for (int b = 0; b < spec.bins; ++b) {
      const std::size_t lo =
          counts.size() * static_cast<std::size_t>(b) /
          static_cast<std::size_t>(spec.bins);
      const std::size_t hi =
          counts.size() * static_cast<std::size_t>(b + 1) /
          static_cast<std::size_t>(spec.bins);
      double lambda = 0.0;
      for (std::size_t i = lo; i < hi; ++i) lambda += counts[i];
      lambda /= static_cast<double>(hi - lo);
      const double arl = arl_at(lambda, spec);
      fa_rate_sum += 1.0 / arl;
      result.bins.push_back({lambda, arl});
    }
    result.combined_arl0 = static_cast<double>(spec.bins) / fa_rate_sum;
  }
  if (mean_lambda > 0.0) {
    result.mean_rate_arl0 = arl_at(mean_lambda, spec);
  }
  return result;
}

}  // namespace syndog::detect
