#include "syndog/detect/evaluator.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

namespace syndog::detect {

TrialResult run_trial(ChangeDetector& detector,
                      const std::vector<double>& series,
                      std::size_t attack_onset, const TraceOptions& trace) {
  TrialResult result;
  result.statistic_path.reserve(series.size());
  bool was_alarmed = false;  // rising-edge detection for false-alarm count
  for (std::size_t n = 0; n < series.size(); ++n) {
    const Decision decision = detector.update(series[n]);
    result.statistic_path.push_back(decision.statistic);
    if (trace.tracer != nullptr) {
      trace.tracer->record(
          trace.period * static_cast<std::int64_t>(n),
          obs::DetectorStep{static_cast<std::int64_t>(n), series[n],
                            decision.statistic, decision.alarm});
    }
    if (n < attack_onset) {
      if (decision.alarm && !was_alarmed) {
        ++result.false_alarms;
      }
    } else if (decision.alarm && !result.detection_delay) {
      result.detection_delay = static_cast<std::int64_t>(n - attack_onset);
    }
    was_alarmed = decision.alarm;
  }
  return result;
}

EnsembleResult evaluate_ensemble(
    const std::function<std::unique_ptr<ChangeDetector>()>& make_detector,
    const std::function<TrialSpec(std::uint64_t trial_index)>& make_series,
    std::int64_t trials) {
  if (trials <= 0) {
    throw std::invalid_argument("evaluate_ensemble: trials must be > 0");
  }
  EnsembleResult out;
  out.trials = trials;
  double delay_sum = 0.0;
  std::int64_t normal_periods = 0;

  for (std::int64_t t = 0; t < trials; ++t) {
    const TrialSpec spec = make_series(static_cast<std::uint64_t>(t));
    if (spec.attack_onset > spec.series.size()) {
      throw std::invalid_argument(
          "evaluate_ensemble: attack_onset beyond series end");
    }
    const std::unique_ptr<ChangeDetector> detector = make_detector();
    const TrialResult trial =
        run_trial(*detector, spec.series, spec.attack_onset);
    if (trial.detection_delay) {
      ++out.detected;
      delay_sum += static_cast<double>(*trial.detection_delay);
      out.max_detection_delay =
          std::max(out.max_detection_delay,
                   static_cast<double>(*trial.detection_delay));
    }
    out.total_false_alarms += trial.false_alarms;
    normal_periods += static_cast<std::int64_t>(spec.attack_onset);
  }

  out.detection_probability =
      static_cast<double>(out.detected) / static_cast<double>(trials);
  out.mean_detection_delay =
      out.detected == 0 ? 0.0 : delay_sum / static_cast<double>(out.detected);
  out.mean_false_alarm_spacing =
      out.total_false_alarms == 0
          ? std::numeric_limits<double>::infinity()
          : static_cast<double>(normal_periods) /
                static_cast<double>(out.total_false_alarms);
  return out;
}

}  // namespace syndog::detect
