#include "syndog/net/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace syndog::net {

void put_u8(ByteBuffer& out, std::uint8_t v) { out.push_back(v); }

void put_u16(ByteBuffer& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(ByteBuffer& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t internet_checksum(ByteSpan data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += load_be16(data.data() + i);
  }
  if (i < data.size()) {
    sum += std::uint32_t{data[i]} << 8;  // odd trailing byte, zero-padded
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 IpProtocol protocol, ByteSpan segment) {
  ByteBuffer pseudo;
  pseudo.reserve(12 + segment.size());
  put_u32(pseudo, src.value());
  put_u32(pseudo, dst.value());
  put_u8(pseudo, 0);
  put_u8(pseudo, static_cast<std::uint8_t>(protocol));
  put_u16(pseudo, static_cast<std::uint16_t>(segment.size()));
  pseudo.insert(pseudo.end(), segment.begin(), segment.end());
  return internet_checksum(pseudo);
}

void write_ethernet(ByteBuffer& out, const EthernetHeader& eth) {
  out.insert(out.end(), eth.dst.bytes().begin(), eth.dst.bytes().end());
  out.insert(out.end(), eth.src.bytes().begin(), eth.src.bytes().end());
  put_u16(out, eth.ether_type);
}

void write_ipv4(ByteBuffer& out, const Ipv4Header& ip) {
  if (ip.ihl != 5) {
    throw std::invalid_argument("write_ipv4: IP options are unsupported");
  }
  const std::size_t start = out.size();
  put_u8(out, static_cast<std::uint8_t>((ip.version << 4) | ip.ihl));
  put_u8(out, ip.dscp_ecn);
  put_u16(out, ip.total_length);
  put_u16(out, ip.identification);
  put_u16(out, ip.frag_flags_offset);
  put_u8(out, ip.ttl);
  put_u8(out, ip.protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, ip.src.value());
  put_u32(out, ip.dst.value());
  const std::uint16_t sum = internet_checksum(
      ByteSpan{out.data() + start, Ipv4Header::kMinSize});
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum);
}

void write_tcp(ByteBuffer& out, const TcpHeader& tcp) {
  if (tcp.data_offset < 5) {
    throw std::invalid_argument("write_tcp: data_offset must be >= 5");
  }
  put_u16(out, tcp.src_port);
  put_u16(out, tcp.dst_port);
  put_u32(out, tcp.seq);
  put_u32(out, tcp.ack);
  put_u8(out, static_cast<std::uint8_t>(tcp.data_offset << 4));
  put_u8(out, tcp.flags.bits);
  put_u16(out, tcp.window);
  put_u16(out, tcp.checksum);
  put_u16(out, tcp.urgent_pointer);
  // Pad options area with zero bytes (end-of-option-list).
  for (std::size_t i = TcpHeader::kMinSize; i < tcp.header_bytes(); ++i) {
    put_u8(out, 0);
  }
}

void write_udp(ByteBuffer& out, const UdpHeader& udp) {
  put_u16(out, udp.src_port);
  put_u16(out, udp.dst_port);
  put_u16(out, udp.length);
  put_u16(out, udp.checksum);
}

void write_icmp(ByteBuffer& out, const IcmpHeader& icmp) {
  put_u8(out, icmp.type);
  put_u8(out, icmp.code);
  put_u16(out, icmp.checksum);
  put_u32(out, icmp.rest);
}

std::optional<EthernetHeader> parse_ethernet(ByteSpan frame) {
  if (frame.size() < EthernetHeader::kSize) return std::nullopt;
  EthernetHeader eth;
  std::array<std::uint8_t, 6> dst{};
  std::array<std::uint8_t, 6> src{};
  std::memcpy(dst.data(), frame.data(), 6);
  std::memcpy(src.data(), frame.data() + 6, 6);
  eth.dst = MacAddress{dst};
  eth.src = MacAddress{src};
  eth.ether_type = read_u16(frame, 12);
  return eth;
}

std::optional<Ipv4Header> parse_ipv4(ByteSpan packet) {
  if (packet.size() < Ipv4Header::kMinSize) return std::nullopt;
  Ipv4Header ip;
  ip.version = packet[0] >> 4;
  ip.ihl = packet[0] & 0x0f;
  if (ip.version != 4 || ip.ihl < 5) return std::nullopt;
  if (packet.size() < ip.header_bytes()) return std::nullopt;
  ip.dscp_ecn = packet[1];
  ip.total_length = read_u16(packet, 2);
  if (ip.total_length < ip.header_bytes()) return std::nullopt;
  ip.identification = read_u16(packet, 4);
  ip.frag_flags_offset = read_u16(packet, 6);
  ip.ttl = packet[8];
  ip.protocol = packet[9];
  ip.checksum = read_u16(packet, 10);
  ip.src = Ipv4Address{read_u32(packet, 12)};
  ip.dst = Ipv4Address{read_u32(packet, 16)};
  return ip;
}

std::optional<TcpHeader> parse_tcp(ByteSpan segment) {
  if (segment.size() < TcpHeader::kMinSize) return std::nullopt;
  TcpHeader tcp;
  tcp.src_port = read_u16(segment, 0);
  tcp.dst_port = read_u16(segment, 2);
  tcp.seq = read_u32(segment, 4);
  tcp.ack = read_u32(segment, 8);
  tcp.data_offset = segment[12] >> 4;
  if (tcp.data_offset < 5 || segment.size() < tcp.header_bytes()) {
    return std::nullopt;
  }
  tcp.flags = TcpFlags{static_cast<std::uint8_t>(segment[13] & 0x3f)};
  tcp.window = read_u16(segment, 14);
  tcp.checksum = read_u16(segment, 16);
  tcp.urgent_pointer = read_u16(segment, 18);
  return tcp;
}

std::optional<UdpHeader> parse_udp(ByteSpan datagram) {
  if (datagram.size() < UdpHeader::kSize) return std::nullopt;
  UdpHeader udp;
  udp.src_port = read_u16(datagram, 0);
  udp.dst_port = read_u16(datagram, 2);
  udp.length = read_u16(datagram, 4);
  udp.checksum = read_u16(datagram, 6);
  if (udp.length < UdpHeader::kSize) return std::nullopt;
  return udp;
}

std::optional<IcmpHeader> parse_icmp(ByteSpan message) {
  if (message.size() < IcmpHeader::kSize) return std::nullopt;
  IcmpHeader icmp;
  icmp.type = message[0];
  icmp.code = message[1];
  icmp.checksum = read_u16(message, 2);
  icmp.rest = read_u32(message, 4);
  return icmp;
}

bool verify_ipv4_checksum(ByteSpan packet) {
  const auto ip = parse_ipv4(packet);
  if (!ip) return false;
  // Sum over the header including the stored checksum must fold to zero.
  return internet_checksum(packet.subspan(0, ip->header_bytes())) == 0;
}

}  // namespace syndog::net
