// Whole-frame composition and decomposition.
//
// `Packet` is the logical unit the simulator, pcap writer, and classifier
// exchange: an Ethernet/IPv4 frame with an optional transport header. The
// builder fills lengths and checksums; `decode_frame` is the inverse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "syndog/net/headers.hpp"
#include "syndog/net/wire.hpp"

namespace syndog::net {

/// Logical packet: link + network headers, exactly one transport header
/// (or none for unsupported protocols), and the payload byte count.
struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::size_t payload_bytes = 0;

  [[nodiscard]] bool is_tcp() const { return tcp.has_value(); }
  /// Pure SYN (no ACK): a connection request.
  [[nodiscard]] bool is_syn() const {
    return tcp && tcp->flags.syn() && !tcp->flags.ack();
  }
  [[nodiscard]] bool is_syn_ack() const {
    return tcp && tcp->flags.syn() && tcp->flags.ack();
  }
  [[nodiscard]] bool is_rst() const { return tcp && tcp->flags.rst(); }
  [[nodiscard]] bool is_fin() const { return tcp && tcp->flags.fin(); }

  /// Total frame size on the wire in bytes.
  [[nodiscard]] std::size_t frame_bytes() const;
  /// One-line summary for logs: "10.0.0.1:1234 > 10.0.0.2:80 [SYN] ...".
  [[nodiscard]] std::string summary() const;
};

/// Common parameters for building TCP test/simulation packets.
struct TcpPacketSpec {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::size_t payload_bytes = 0;
  std::uint8_t ttl = 64;
};

/// Builds a TCP packet with consistent lengths. Checksums are computed when
/// the frame is serialized.
[[nodiscard]] Packet make_tcp_packet(const TcpPacketSpec& spec);
[[nodiscard]] Packet make_syn(const TcpPacketSpec& spec);
[[nodiscard]] Packet make_syn_ack(const TcpPacketSpec& spec);
[[nodiscard]] Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac,
                                     Ipv4Address src_ip, Ipv4Address dst_ip,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::size_t payload_bytes);

/// Serializes to wire format. The payload is rendered as zero bytes (the
/// detector never inspects payloads); transport checksums are computed over
/// that rendering so the frames verify as valid captures.
[[nodiscard]] ByteBuffer encode_frame(const Packet& packet);

/// Parses a wire-format frame. Returns nullopt if the frame is not
/// Ethernet/IPv4 or is truncated; a valid IPv4 packet with an unsupported
/// transport protocol parses with all transport optionals empty.
[[nodiscard]] std::optional<Packet> decode_frame(ByteSpan frame);

/// In-place variant of decode_frame: overwrites `out` (resetting its
/// transport optionals) and returns true on success, so streaming
/// consumers can decode directly into recycled packet slots without a
/// temporary. On failure `out` is left in an unspecified state.
[[nodiscard]] bool decode_frame_into(ByteSpan frame, Packet& out);

}  // namespace syndog::net
