// Link- and network-layer address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace syndog::net {

/// 48-bit IEEE MAC address. SYN-dog's source locator reports flooding hosts
/// by MAC because their IP source addresses are spoofed (paper §4.2.3).
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> bytes)
      : bytes_(bytes) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive); nullopt on bad input.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);
  /// Deterministic MAC for simulated host `index` (locally administered).
  [[nodiscard]] static MacAddress for_host(std::uint32_t index);
  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] constexpr bool is_broadcast() const {
    for (std::uint8_t b : bytes_) {
      if (b != 0xff) return false;
    }
    return true;
  }

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

/// IPv4 address stored in host order; to_string/parse use dotted decimal.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] static std::optional<Ipv4Address> parse(
      std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix; classifier rules and stub-network membership tests use it.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Canonicalizes: host bits below the prefix length are cleared.
  Ipv4Prefix(Ipv4Address base, int length);

  /// Parses "10.1.0.0/16"; nullopt on bad address or length outside [0,32].
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] std::uint32_t mask() const;
  [[nodiscard]] bool contains(Ipv4Address addr) const;
  /// The `offset`-th host address inside the prefix (offset 0 = base).
  [[nodiscard]] Ipv4Address host(std::uint32_t offset) const;
  /// Number of addresses covered (2^(32-length); 0 means 2^32 at length 0).
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4Address base_{};
  int length_ = 0;
};

}  // namespace syndog::net
