// Host-order representations of the protocol headers SYN-dog inspects.
//
// These structs are the parsed/logical view; `wire.hpp` converts to and from
// network byte order. Field names follow RFC 791 / RFC 793.
#pragma once

#include <cstdint>
#include <string>

#include "syndog/net/address.hpp"

namespace syndog::net {

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86dd,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
};

enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;
  /// Fragment-offset field mask within frag_flags_offset.
  static constexpr std::uint16_t kFragOffsetMask = 0x1fff;
  static constexpr std::uint16_t kFlagDontFragment = 0x4000;
  static constexpr std::uint16_t kFlagMoreFragments = 0x2000;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  ///< header length in 32-bit words (5 = no options)
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  ///< header + payload, bytes
  std::uint16_t identification = 0;
  std::uint16_t frag_flags_offset = 0;  ///< 3 flag bits + 13 offset bits
  std::uint8_t ttl = 64;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  std::uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t header_bytes() const {
    return static_cast<std::size_t>(ihl) * 4;
  }
  /// Fragment offset in 8-byte units. SYN-dog's classifier only reads TCP
  /// flags from packets with zero offset (first fragments), per paper §2.
  [[nodiscard]] std::uint16_t fragment_offset() const {
    return frag_flags_offset & kFragOffsetMask;
  }
  [[nodiscard]] bool more_fragments() const {
    return (frag_flags_offset & kFlagMoreFragments) != 0;
  }
};

/// TCP flag bits as laid out in byte 13 of the TCP header (RFC 793).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;

  std::uint8_t bits = 0;

  [[nodiscard]] constexpr bool fin() const { return (bits & kFin) != 0; }
  [[nodiscard]] constexpr bool syn() const { return (bits & kSyn) != 0; }
  [[nodiscard]] constexpr bool rst() const { return (bits & kRst) != 0; }
  [[nodiscard]] constexpr bool psh() const { return (bits & kPsh) != 0; }
  [[nodiscard]] constexpr bool ack() const { return (bits & kAck) != 0; }
  [[nodiscard]] constexpr bool urg() const { return (bits & kUrg) != 0; }

  [[nodiscard]] static constexpr TcpFlags syn_only() {
    return TcpFlags{kSyn};
  }
  [[nodiscard]] static constexpr TcpFlags syn_ack() {
    return TcpFlags{static_cast<std::uint8_t>(kSyn | kAck)};
  }
  [[nodiscard]] static constexpr TcpFlags ack_only() {
    return TcpFlags{kAck};
  }
  [[nodiscard]] static constexpr TcpFlags rst_only() {
    return TcpFlags{kRst};
  }
  [[nodiscard]] static constexpr TcpFlags rst_ack() {
    return TcpFlags{static_cast<std::uint8_t>(kRst | kAck)};
  }
  [[nodiscard]] static constexpr TcpFlags fin_ack() {
    return TcpFlags{static_cast<std::uint8_t>(kFin | kAck)};
  }

  /// "SYN|ACK" style rendering for logs.
  [[nodiscard]] std::string to_string() const;

  constexpr bool operator==(const TcpFlags&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  ///< header length in 32-bit words
  TcpFlags flags;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;

  [[nodiscard]] std::size_t header_bytes() const {
    return static_cast<std::size_t>(data_offset) * 4;
  }
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload, bytes
  std::uint16_t checksum = 0;
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kDestUnreachable = 3;
  static constexpr std::uint8_t kEchoRequest = 8;
  static constexpr std::uint8_t kTimeExceeded = 11;

  std::uint8_t type = kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  ///< identifier/sequence or unused, type-specific
};

}  // namespace syndog::net
