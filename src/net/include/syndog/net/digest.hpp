// Packed per-frame flow digest for the sharded ingest datapath.
//
// decode_frame_into() materializes a full logical Packet — MACs, checksum
// fields, transport optionals — which is far more than the SYN-dog
// counting path needs per frame: a timestamp, the IPv4 endpoints, the
// ports (for flow hashing), and the TCP flag byte. FlowDigest is that
// minimal record, sized to half a cache line so shard rings carry twice
// as many frames per line as Frame slots would.
//
// extract_flow_digest() mirrors decode_frame_into()'s accept/reject
// decisions *exactly* — same Ethernet/IPv4 validation, same fragment
// handling, same transport-header length checks — so a sharded run's
// record/frame/decode-failure statistics are byte-identical to the
// reference pipeline's. Frames that decode but carry no classifiable TCP
// flags (fragments with nonzero offset, UDP, ICMP, unknown protocols)
// get kNoTcpFlags as their flag byte: bit 7 is outside the six RFC 793
// flag bits that wire parsing keeps, and it fails both the SYN and the
// SYN-ACK mask tests in classify::sweep_flags().
#pragma once

#include <cstddef>
#include <cstdint>

#include "syndog/net/headers.hpp"
#include "syndog/net/wire.hpp"

namespace syndog::net {

/// One frame, reduced to what flow hashing and §2 flag counting need.
struct FlowDigest {
  /// Flag byte standing in for "no TCP flags to classify". Never produced
  /// by parse_tcp (which masks to the six low bits); masks to 0 under the
  /// SYN|ACK test, so flag sweeps count such frames as neither kind.
  static constexpr std::uint8_t kNoTcpFlags = 0x80;

  std::int64_t at_ns = 0;            ///< capture timestamp (framer fills)
  std::uint32_t src = 0;             ///< IPv4 source, host order
  std::uint32_t dst = 0;             ///< IPv4 destination, host order
  std::uint16_t src_port = 0;        ///< 0 unless first-fragment TCP/UDP
  std::uint16_t dst_port = 0;        ///< 0 unless first-fragment TCP/UDP
  std::uint32_t wire_bytes = 0;      ///< original length on the wire
  std::uint32_t captured_bytes = 0;  ///< bytes present in the capture
  std::uint8_t protocol = 0;         ///< IPv4 protocol number
  std::uint8_t flags = kNoTcpFlags;  ///< TCP flag byte (6 bits) or sentinel
};

/// Fills `out` from a raw Ethernet frame. Returns false — leaving `out`
/// unspecified — on exactly the frames decode_frame_into() rejects:
/// short/ non-IPv4 Ethernet, mangled IPv4 lengths, and first-fragment
/// TCP/UDP/ICMP whose transport header is cut short. The caller stamps
/// at_ns / wire_bytes; captured_bytes is set to frame.size().
///
/// Defined inline: this runs once per captured frame on the sharded
/// producer thread, and the call would otherwise cross a library
/// boundary the optimizer cannot see through.
//
// Keep every accept/reject decision in lockstep with decode_frame_into()
// (packet.cpp): the sharded datapath's statistics are only comparable to
// the reference pipeline's because the two agree frame by frame.
[[nodiscard]] inline bool extract_flow_digest(ByteSpan frame,
                                              FlowDigest& out) {
  if (frame.size() < EthernetHeader::kSize) return false;
  if (read_u16(frame, 12) != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return false;
  }
  const ByteSpan ip = frame.subspan(EthernetHeader::kSize);
  if (ip.size() < Ipv4Header::kMinSize) return false;
  const std::uint8_t version = ip[0] >> 4;
  const std::uint8_t ihl = ip[0] & 0x0f;
  if (version != 4 || ihl < 5) return false;
  const std::size_t header_bytes = std::size_t{ihl} * 4;
  if (ip.size() < header_bytes) return false;
  const std::uint16_t total_length = read_u16(ip, 2);
  if (total_length < header_bytes) return false;
  if (total_length > ip.size()) return false;

  out.src = read_u32(ip, 12);
  out.dst = read_u32(ip, 16);
  out.protocol = ip[9];
  out.src_port = 0;
  out.dst_port = 0;
  out.flags = FlowDigest::kNoTcpFlags;
  out.captured_bytes = static_cast<std::uint32_t>(frame.size());

  // Only the first fragment carries the transport header.
  if ((read_u16(ip, 6) & Ipv4Header::kFragOffsetMask) != 0) return true;

  const ByteSpan transport =
      ip.subspan(header_bytes, total_length - header_bytes);
  switch (out.protocol) {
    case static_cast<std::uint8_t>(IpProtocol::kTcp): {
      if (transport.size() < TcpHeader::kMinSize) return false;
      const std::uint8_t data_offset = transport[12] >> 4;
      if (data_offset < 5 ||
          transport.size() < std::size_t{data_offset} * 4) {
        return false;
      }
      out.src_port = read_u16(transport, 0);
      out.dst_port = read_u16(transport, 2);
      out.flags = transport[13] & 0x3f;  // six RFC 793 flag bits
      break;
    }
    case static_cast<std::uint8_t>(IpProtocol::kUdp): {
      if (transport.size() < UdpHeader::kSize) return false;
      if (read_u16(transport, 4) < UdpHeader::kSize) return false;
      out.src_port = read_u16(transport, 0);
      out.dst_port = read_u16(transport, 2);
      break;
    }
    case static_cast<std::uint8_t>(IpProtocol::kIcmp):
      if (transport.size() < IcmpHeader::kSize) return false;
      break;
    default:
      break;  // unknown transport: accepted, nothing to classify
  }
  return true;
}

}  // namespace syndog::net
