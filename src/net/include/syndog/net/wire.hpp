// Wire-format serialization and zero-copy parsing.
//
// Writers append network-byte-order bytes to a caller-owned buffer; parsers
// read from a span and return nullopt on truncated or malformed input (the
// classifier must never crash on hostile packets).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "syndog/net/headers.hpp"

namespace syndog::net {

using ByteSpan = std::span<const std::uint8_t>;
using ByteBuffer = std::vector<std::uint8_t>;

// --- byte-order helpers ----------------------------------------------------

[[nodiscard]] constexpr std::uint16_t byteswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

[[nodiscard]] constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) |
         (v >> 24);
}

[[nodiscard]] constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  return (std::uint64_t{byteswap32(static_cast<std::uint32_t>(v))} << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

// --- safe unaligned loads --------------------------------------------------
//
// Wire structs are never read through reinterpret_cast: that is undefined
// behavior on misaligned buffers (packet payloads start at arbitrary
// offsets). These memcpy-based readers are defined at any alignment and
// compile to a single load plus optional bswap on every mainstream target.

template <typename T>
[[nodiscard]] inline T load_raw(const std::uint8_t* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

[[nodiscard]] inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  const auto v = load_raw<std::uint16_t>(p);
  return std::endian::native == std::endian::big ? v : byteswap16(v);
}

[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  const auto v = load_raw<std::uint32_t>(p);
  return std::endian::native == std::endian::big ? v : byteswap32(v);
}

[[nodiscard]] inline std::uint16_t load_le16(const std::uint8_t* p) noexcept {
  const auto v = load_raw<std::uint16_t>(p);
  return std::endian::native == std::endian::little ? v : byteswap16(v);
}

[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  const auto v = load_raw<std::uint32_t>(p);
  return std::endian::native == std::endian::little ? v : byteswap32(v);
}

[[nodiscard]] inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  const auto v = load_raw<std::uint64_t>(p);
  return std::endian::native == std::endian::little ? v : byteswap64(v);
}

// --- big-endian primitives -------------------------------------------------

void put_u8(ByteBuffer& out, std::uint8_t v);
void put_u16(ByteBuffer& out, std::uint16_t v);
void put_u32(ByteBuffer& out, std::uint32_t v);

[[nodiscard]] inline std::uint16_t read_u16(ByteSpan in, std::size_t at) {
  return load_be16(in.data() + at);
}

[[nodiscard]] inline std::uint32_t read_u32(ByteSpan in, std::size_t at) {
  return load_be32(in.data() + at);
}

// --- checksums ---------------------------------------------------------

/// RFC 1071 Internet checksum over `data` (one's-complement sum folded to
/// 16 bits, then complemented).
[[nodiscard]] std::uint16_t internet_checksum(ByteSpan data);
/// TCP/UDP checksum including the IPv4 pseudo-header.
[[nodiscard]] std::uint16_t transport_checksum(Ipv4Address src,
                                               Ipv4Address dst,
                                               IpProtocol protocol,
                                               ByteSpan segment);

// --- serialization -------------------------------------------------------

void write_ethernet(ByteBuffer& out, const EthernetHeader& eth);
/// Writes the IPv4 header with its checksum computed (checksum field in the
/// input struct is ignored). `ihl` must be 5 (options unsupported).
void write_ipv4(ByteBuffer& out, const Ipv4Header& ip);
/// Writes the TCP header; checksum field is taken from the struct (use
/// `transport_checksum` to fill it, or leave 0 for simulated packets).
void write_tcp(ByteBuffer& out, const TcpHeader& tcp);
void write_udp(ByteBuffer& out, const UdpHeader& udp);
void write_icmp(ByteBuffer& out, const IcmpHeader& icmp);

// --- parsing -----------------------------------------------------------

[[nodiscard]] std::optional<EthernetHeader> parse_ethernet(ByteSpan frame);
/// Validates version, IHL and total_length against the available bytes.
[[nodiscard]] std::optional<Ipv4Header> parse_ipv4(ByteSpan packet);
[[nodiscard]] std::optional<TcpHeader> parse_tcp(ByteSpan segment);
[[nodiscard]] std::optional<UdpHeader> parse_udp(ByteSpan datagram);
[[nodiscard]] std::optional<IcmpHeader> parse_icmp(ByteSpan message);

/// Verifies the IPv4 header checksum of a serialized header.
[[nodiscard]] bool verify_ipv4_checksum(ByteSpan packet);

}  // namespace syndog::net
