#include "syndog/net/headers.hpp"

namespace syndog::net {

std::string TcpFlags::to_string() const {
  if (bits == 0) return "none";
  std::string out;
  const auto append = [&](bool set, const char* name) {
    if (!set) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  append(syn(), "SYN");
  append(ack(), "ACK");
  append(fin(), "FIN");
  append(rst(), "RST");
  append(psh(), "PSH");
  append(urg(), "URG");
  return out;
}

}  // namespace syndog::net
