#include "syndog/net/address.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::net {

namespace {
std::optional<int> hex_digit(char ch) {
  if (ch >= '0' && ch <= '9') return ch - '0';
  if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
  if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
  return std::nullopt;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expect exactly "xx:xx:xx:xx:xx:xx".
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> bytes{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) * 3;
    const auto hi = hex_digit(text[at]);
    const auto lo = hex_digit(text[at + 1]);
    if (!hi || !lo) return std::nullopt;
    if (i < 5 && text[at + 2] != ':') return std::nullopt;
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((*hi << 4) | *lo);
  }
  return MacAddress{bytes};
}

MacAddress MacAddress::for_host(std::uint32_t index) {
  // 0x02 prefix = locally administered, unicast.
  return MacAddress{{0x02, 0x00,
                     static_cast<std::uint8_t>(index >> 24),
                     static_cast<std::uint8_t>(index >> 16),
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)}};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* it = text.data();
  const char* end = text.data() + text.size();
  while (it < end) {
    unsigned octet = 0;
    const auto [ptr, ec] = std::from_chars(it, end, octet);
    if (ec != std::errc{} || octet > 255 || ptr == it) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    it = ptr;
    if (it < end) {
      if (*it != '.' || octets == 4) return std::nullopt;
      ++it;
      if (it == end) return std::nullopt;  // trailing dot
    }
  }
  if (octets != 4) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Ipv4Prefix: length must be in [0,32]");
  }
  const std::uint32_t m =
      length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  base_ = Ipv4Address{base.value() & m};
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = -1;
  const std::string_view len_text = text.substr(slash + 1);
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix{*addr, length};
}

std::uint32_t Ipv4Prefix::mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Address addr) const {
  return (addr.value() & mask()) == base_.value();
}

Ipv4Address Ipv4Prefix::host(std::uint32_t offset) const {
  return Ipv4Address{base_.value() + offset};
}

std::uint64_t Ipv4Prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace syndog::net
