#include "syndog/net/packet.hpp"

#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::net {

std::size_t Packet::frame_bytes() const {
  return EthernetHeader::kSize + ip.total_length;
}

std::string Packet::summary() const {
  std::string transport;
  if (tcp) {
    transport = util::strprintf(
        "%s:%u > %s:%u [%s] seq=%u ack=%u", ip.src.to_string().c_str(),
        tcp->src_port, ip.dst.to_string().c_str(), tcp->dst_port,
        tcp->flags.to_string().c_str(), tcp->seq, tcp->ack);
  } else if (udp) {
    transport = util::strprintf("%s:%u > %s:%u UDP len=%u",
                                ip.src.to_string().c_str(), udp->src_port,
                                ip.dst.to_string().c_str(), udp->dst_port,
                                udp->length);
  } else if (icmp) {
    transport = util::strprintf("%s > %s ICMP type=%u code=%u",
                                ip.src.to_string().c_str(),
                                ip.dst.to_string().c_str(), icmp->type,
                                icmp->code);
  } else {
    transport = util::strprintf("%s > %s proto=%u",
                                ip.src.to_string().c_str(),
                                ip.dst.to_string().c_str(), ip.protocol);
  }
  return transport + util::strprintf(" (%zu bytes)", frame_bytes());
}

Packet make_tcp_packet(const TcpPacketSpec& spec) {
  Packet pkt;
  pkt.eth.src = spec.src_mac;
  pkt.eth.dst = spec.dst_mac;
  pkt.eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  pkt.ip.src = spec.src_ip;
  pkt.ip.dst = spec.dst_ip;
  pkt.ip.ttl = spec.ttl;
  pkt.ip.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  pkt.tcp = tcp;

  pkt.payload_bytes = spec.payload_bytes;
  const std::size_t ip_len =
      Ipv4Header::kMinSize + tcp.header_bytes() + spec.payload_bytes;
  if (ip_len > UINT16_MAX) {
    throw std::invalid_argument("make_tcp_packet: payload too large");
  }
  pkt.ip.total_length = static_cast<std::uint16_t>(ip_len);
  return pkt;
}

Packet make_syn(const TcpPacketSpec& spec) {
  TcpPacketSpec s = spec;
  s.flags = TcpFlags::syn_only();
  s.ack = 0;
  return make_tcp_packet(s);
}

Packet make_syn_ack(const TcpPacketSpec& spec) {
  TcpPacketSpec s = spec;
  s.flags = TcpFlags::syn_ack();
  return make_tcp_packet(s);
}

Packet make_udp_packet(MacAddress src_mac, MacAddress dst_mac,
                       Ipv4Address src_ip, Ipv4Address dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::size_t payload_bytes) {
  Packet pkt;
  pkt.eth.src = src_mac;
  pkt.eth.dst = dst_mac;
  pkt.ip.src = src_ip;
  pkt.ip.dst = dst_ip;
  pkt.ip.protocol = static_cast<std::uint8_t>(IpProtocol::kUdp);

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  const std::size_t udp_len = UdpHeader::kSize + payload_bytes;
  if (Ipv4Header::kMinSize + udp_len > UINT16_MAX) {
    throw std::invalid_argument("make_udp_packet: payload too large");
  }
  udp.length = static_cast<std::uint16_t>(udp_len);
  pkt.udp = udp;
  pkt.payload_bytes = payload_bytes;
  pkt.ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kMinSize + udp_len);
  return pkt;
}

ByteBuffer encode_frame(const Packet& packet) {
  ByteBuffer out;
  out.reserve(packet.frame_bytes());
  write_ethernet(out, packet.eth);
  write_ipv4(out, packet.ip);

  if (packet.tcp) {
    // Render the TCP segment separately to compute its checksum over the
    // pseudo-header + segment (payload rendered as zeros).
    TcpHeader tcp = *packet.tcp;
    tcp.checksum = 0;
    ByteBuffer segment;
    segment.reserve(tcp.header_bytes() + packet.payload_bytes);
    write_tcp(segment, tcp);
    segment.resize(segment.size() + packet.payload_bytes, 0);
    tcp.checksum = transport_checksum(packet.ip.src, packet.ip.dst,
                                      IpProtocol::kTcp, segment);
    segment[16] = static_cast<std::uint8_t>(tcp.checksum >> 8);
    segment[17] = static_cast<std::uint8_t>(tcp.checksum);
    out.insert(out.end(), segment.begin(), segment.end());
  } else if (packet.udp) {
    UdpHeader udp = *packet.udp;
    udp.checksum = 0;
    ByteBuffer datagram;
    datagram.reserve(udp.length);
    write_udp(datagram, udp);
    datagram.resize(udp.length, 0);
    udp.checksum = transport_checksum(packet.ip.src, packet.ip.dst,
                                      IpProtocol::kUdp, datagram);
    if (udp.checksum == 0) udp.checksum = 0xffff;  // RFC 768: 0 means none
    datagram[6] = static_cast<std::uint8_t>(udp.checksum >> 8);
    datagram[7] = static_cast<std::uint8_t>(udp.checksum);
    out.insert(out.end(), datagram.begin(), datagram.end());
  } else if (packet.icmp) {
    IcmpHeader icmp = *packet.icmp;
    icmp.checksum = 0;
    ByteBuffer message;
    write_icmp(message, icmp);
    message.resize(IcmpHeader::kSize + packet.payload_bytes, 0);
    icmp.checksum = internet_checksum(message);
    message[2] = static_cast<std::uint8_t>(icmp.checksum >> 8);
    message[3] = static_cast<std::uint8_t>(icmp.checksum);
    out.insert(out.end(), message.begin(), message.end());
  } else {
    // Opaque payload for unsupported protocols.
    out.resize(out.size() +
                   (packet.ip.total_length - packet.ip.header_bytes()),
               0);
  }
  return out;
}

bool decode_frame_into(ByteSpan frame, Packet& out) {
  const auto eth = parse_ethernet(frame);
  if (!eth) return false;
  if (eth->ether_type != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return false;
  }
  const ByteSpan ip_bytes = frame.subspan(EthernetHeader::kSize);
  const auto ip = parse_ipv4(ip_bytes);
  if (!ip) return false;
  if (ip->total_length > ip_bytes.size()) return false;

  out.eth = *eth;
  out.ip = *ip;
  out.tcp.reset();
  out.udp.reset();
  out.icmp.reset();
  out.payload_bytes = 0;

  // Only the first fragment carries the transport header.
  if (ip->fragment_offset() != 0) {
    out.payload_bytes = ip->total_length - ip->header_bytes();
    return true;
  }

  const ByteSpan transport =
      ip_bytes.subspan(ip->header_bytes(),
                       ip->total_length - ip->header_bytes());
  switch (ip->protocol) {
    case static_cast<std::uint8_t>(IpProtocol::kTcp): {
      const auto tcp = parse_tcp(transport);
      if (!tcp) return false;
      out.tcp = tcp;
      out.payload_bytes = transport.size() - tcp->header_bytes();
      break;
    }
    case static_cast<std::uint8_t>(IpProtocol::kUdp): {
      const auto udp = parse_udp(transport);
      if (!udp) return false;
      out.udp = udp;
      out.payload_bytes = transport.size() - UdpHeader::kSize;
      break;
    }
    case static_cast<std::uint8_t>(IpProtocol::kIcmp): {
      const auto icmp = parse_icmp(transport);
      if (!icmp) return false;
      out.icmp = icmp;
      out.payload_bytes = transport.size() - IcmpHeader::kSize;
      break;
    }
    default:
      out.payload_bytes = transport.size();
      break;
  }
  return true;
}

std::optional<Packet> decode_frame(ByteSpan frame) {
  Packet pkt;
  if (!decode_frame_into(frame, pkt)) return std::nullopt;
  return pkt;
}

}  // namespace syndog::net
