#include "syndog/stats/sliding.hpp"

#include <cmath>

namespace syndog::stats {

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("SlidingWindow: capacity must be >= 1");
  }
}

void SlidingWindow::evict() {
  const double old = samples_.front();
  samples_.pop_front();
  sum_ -= old;
  sum_sq_ -= old * old;
  if (!min_queue_.empty() && min_queue_.front() == old) {
    min_queue_.pop_front();
  }
  if (!max_queue_.empty() && max_queue_.front() == old) {
    max_queue_.pop_front();
  }
}

void SlidingWindow::add(double x) {
  if (samples_.size() == capacity_) evict();
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  while (!min_queue_.empty() && min_queue_.back() > x) {
    min_queue_.pop_back();
  }
  min_queue_.push_back(x);
  while (!max_queue_.empty() && max_queue_.back() < x) {
    max_queue_.pop_back();
  }
  max_queue_.push_back(x);
}

double SlidingWindow::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SlidingWindow::variance() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  // Guard against catastrophic cancellation producing a tiny negative.
  return std::max(0.0,
                  sum_sq_ / static_cast<double>(samples_.size()) - m * m);
}

double SlidingWindow::stddev() const { return std::sqrt(variance()); }

double SlidingWindow::min() const {
  return min_queue_.empty() ? 0.0 : min_queue_.front();
}

double SlidingWindow::max() const {
  return max_queue_.empty() ? 0.0 : max_queue_.front();
}

double SlidingWindow::front() const {
  if (samples_.empty()) {
    throw std::out_of_range("SlidingWindow: empty");
  }
  return samples_.front();
}

double SlidingWindow::back() const {
  if (samples_.empty()) {
    throw std::out_of_range("SlidingWindow: empty");
  }
  return samples_.back();
}

void SlidingWindow::clear() {
  samples_.clear();
  min_queue_.clear();
  max_queue_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

}  // namespace syndog::stats
