#include "syndog/stats/series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "syndog/stats/online.hpp"

namespace syndog::stats {

double series_mean(const std::vector<double>& xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double series_stddev(const std::vector<double>& xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double series_min(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double series_max(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = series_mean(xs);
  const double my = series_mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  if (lag >= xs.size()) return 0.0;
  const double m = series_mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - m;
    den += d * d;
    if (i + lag < xs.size()) {
      num += d * (xs[i + lag] - m);
    }
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

std::ptrdiff_t first_crossing(const std::vector<double>& xs,
                              double threshold) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > threshold) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

std::vector<double> downsample_mean(const std::vector<double>& xs,
                                    std::size_t factor) {
  if (factor == 0) {
    throw std::invalid_argument("downsample_mean: factor must be > 0");
  }
  std::vector<double> out;
  out.reserve(xs.size() / factor + 1);
  for (std::size_t i = 0; i < xs.size(); i += factor) {
    const std::size_t end = std::min(i + factor, xs.size());
    double acc = 0.0;
    for (std::size_t j = i; j < end; ++j) acc += xs[j];
    out.push_back(acc / static_cast<double>(end - i));
  }
  return out;
}

std::vector<double> series_difference(const std::vector<double>& xs,
                                      const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("series_difference: size mismatch");
  }
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = xs[i] - ys[i];
  return out;
}

}  // namespace syndog::stats
