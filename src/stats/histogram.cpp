#include "syndog/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "syndog/util/strings.hpp"

namespace syndog::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::int64_t Histogram::count_in_bin(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_center");
  }
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  const std::int64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) {
    acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(in_range);
}

std::string Histogram::to_string(int max_bar_width) const {
  std::int64_t peak = 1;
  for (std::int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(counts_[i]) /
                    static_cast<double>(peak) * max_bar_width));
    out << util::strprintf("%12s | %-*s %lld\n",
                           util::format_double(bin_center(i), 3).c_str(),
                           max_bar_width,
                           std::string(static_cast<std::size_t>(bar), '#')
                               .c_str(),
                           static_cast<long long>(counts_[i]));
  }
  if (underflow_ != 0 || overflow_ != 0) {
    out << "  (underflow " << underflow_ << ", overflow " << overflow_
        << ")\n";
  }
  return out.str();
}

}  // namespace syndog::stats
