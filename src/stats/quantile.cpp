#include "syndog/stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syndog::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must lie strictly in (0,1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const auto& h = heights_;
  const auto& n = positions_;
  return h[i] +
         d / (n[i + 1] - n[i - 1]) *
             ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) /
                  (n[i + 1] - n[i]) +
              (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) /
                  (n[i] - n[i - 1]));
}

double P2Quantile::linear(int i, int d) const {
  return heights_[i] + d * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[static_cast<std::size_t>(count_)] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int sign = d >= 0 ? 1 : -1;
      const double candidate = parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over what we have.
    std::array<double, 5> copy = heights_;
    std::sort(copy.begin(), copy.begin() + count_);
    const double idx = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi =
        std::min<std::size_t>(lo + 1, static_cast<std::size_t>(count_ - 1));
    const double frac = idx - static_cast<double>(lo);
    return copy[lo] + frac * (copy[hi] - copy[lo]);
  }
  return heights_[2];
}

void ExactQuantiles::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double ExactQuantiles::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double idx = clamped * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace syndog::stats
