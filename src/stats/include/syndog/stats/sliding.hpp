// Sliding-window statistics.
//
// Fixed-capacity window over the last W samples with O(1) amortized
// mean/variance (running sums) and min/max (monotonic deques). Used by
// monitoring-side consumers that want "the last ten minutes" rather than
// an exponential decay — e.g. the calibration tool's burstiness profile.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

namespace syndog::stats {

class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return samples_.size() == capacity_; }
  /// Statistics over the samples currently in the window (0 when empty).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Oldest and newest retained samples (throws when empty).
  [[nodiscard]] double front() const;
  [[nodiscard]] double back() const;
  void clear();

 private:
  void evict();

  std::size_t capacity_;
  std::deque<double> samples_;
  std::deque<double> min_queue_;  ///< increasing front-to-back
  std::deque<double> max_queue_;  ///< decreasing front-to-back
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace syndog::stats
