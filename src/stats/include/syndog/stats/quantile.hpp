// Quantile estimation.
//
// P2Quantile is the Jain/Chlamtac P-square streaming estimator: O(1) memory,
// used by the evaluation harness to report detection-delay percentiles
// without storing every trial. ExactQuantiles stores samples and is used in
// tests as the reference.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace syndog::stats {

/// Streaming estimate of a single quantile `q` in (0, 1) using five markers.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact while fewer than 5 samples have been seen.
  [[nodiscard]] double value() const;
  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, int d) const;

  double q_;
  std::int64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Exact quantiles over retained samples (test oracle / small data sets).
class ExactQuantiles {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);
  /// Linear-interpolated quantile, q in [0, 1]. Empty -> 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace syndog::stats
