// Batch analysis of time series (vectors of per-period samples).
//
// The paper's Section 4.1 argues SYN and SYN/ACK counts are strongly
// positively correlated and that {Xn} is stationary; these helpers quantify
// exactly that for the figure benches and the property tests.
#pragma once

#include <cstddef>
#include <vector>

namespace syndog::stats {

[[nodiscard]] double series_mean(const std::vector<double>& xs);
[[nodiscard]] double series_stddev(const std::vector<double>& xs);
[[nodiscard]] double series_min(const std::vector<double>& xs);
[[nodiscard]] double series_max(const std::vector<double>& xs);

/// Pearson correlation coefficient of two equally long series; 0 when a
/// series is constant or the series are shorter than 2.
[[nodiscard]] double pearson_correlation(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Sample autocorrelation at lag `lag` (biased estimator, standard in
/// change-detection literature). Returns 0 when lag >= size.
[[nodiscard]] double autocorrelation(const std::vector<double>& xs,
                                     std::size_t lag);

/// Index of the first element strictly greater than `threshold`, or -1.
[[nodiscard]] std::ptrdiff_t first_crossing(const std::vector<double>& xs,
                                            double threshold);

/// Downsamples by averaging consecutive groups of `factor` samples; a
/// trailing partial group is averaged over its own length.
[[nodiscard]] std::vector<double> downsample_mean(
    const std::vector<double>& xs, std::size_t factor);

/// Element-wise difference xs - ys (sizes must match).
[[nodiscard]] std::vector<double> series_difference(
    const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace syndog::stats
