// Online (single-pass) statistics.
//
// Used by trace calibration, the detector evaluation harness, and the
// SYN/ACK level estimator tests. All accumulators are O(1) memory, matching
// the paper's statelessness requirement for anything running on the router.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace syndog::stats {

/// Welford's algorithm: numerically stable running mean/variance, plus
/// min/max. Safe to query at any time; variance of < 2 samples is 0.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n).
  [[nodiscard]] double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  /// Sample variance (divide by n-1).
  [[nodiscard]] double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Coefficient of variation (stddev/mean); 0 when the mean is 0.
  [[nodiscard]] double cv() const;

  /// Merges another accumulator (parallel Welford combine).
  void merge(const OnlineStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average with memory factor `alpha` in
/// (0, 1): v(n) = alpha*v(n-1) + (1-alpha)*x(n). This is exactly the K
/// estimator of the paper's Eq. (1). The first sample initializes the
/// average directly so there is no cold-start bias toward zero.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0 && alpha < 1.0)) {
      throw std::invalid_argument("Ewma: alpha must lie strictly in (0,1)");
    }
  }

  void add(double x) {
    if (!primed_) {
      value_ = x;
      primed_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * x;
    }
    ++count_;
  }

  [[nodiscard]] bool primed() const { return primed_; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::int64_t count() const { return count_; }

  void reset() {
    primed_ = false;
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
  std::int64_t count_ = 0;
};

/// EWMA of mean and variance together (for control-chart baselines):
/// maintains an exponentially weighted estimate of E[X] and Var[X].
class EwmaMeanVar {
 public:
  explicit EwmaMeanVar(double alpha) : mean_(alpha), var_(alpha) {}

  void add(double x) {
    const double prev_mean = mean_.primed() ? mean_.value() : x;
    mean_.add(x);
    const double dev = x - prev_mean;
    var_.add(dev * dev);
  }

  [[nodiscard]] bool primed() const { return mean_.primed(); }
  [[nodiscard]] double mean() const { return mean_.value(); }
  [[nodiscard]] double variance() const { return var_.value(); }
  [[nodiscard]] double stddev() const;

 private:
  Ewma mean_;
  Ewma var_;
};

}  // namespace syndog::stats
