// Fixed-bin histogram with overflow/underflow tracking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace syndog::stats {

/// Equal-width histogram on [lo, hi) with `bins` buckets. Samples outside
/// the range are counted in dedicated under/overflow buckets so totals are
/// always conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::int64_t count_in_bin(std::size_t bin) const;
  [[nodiscard]] std::int64_t underflow() const { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t total() const { return total_; }
  /// Center of bin `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }
  /// Fraction of in-range samples at or below the upper edge of `bin`.
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const;
  /// Multi-line bar rendering for bench output.
  [[nodiscard]] std::string to_string(int max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace syndog::stats
