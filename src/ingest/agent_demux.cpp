#include "syndog/ingest/agent_demux.hpp"

#include <stdexcept>

namespace syndog::ingest {

struct AgentDemux::Stub {
  StubSpec spec;
  sim::LeafRouter router;
  core::SynDogAgent agent;
  std::vector<core::AlarmEvent> alarms;

  Stub(sim::Scheduler& scheduler, StubSpec stub_spec,
       const core::SynDogParams& params, core::AgentMode mode,
       std::uint32_t index)
      : spec(std::move(stub_spec)),
        router(spec.prefix, net::MacAddress::for_host(index)),
        agent(router, scheduler, params,
              [this](const core::AlarmEvent& ev) { alarms.push_back(ev); },
              mode) {}
};

AgentDemux::AgentDemux(sim::Scheduler& scheduler, std::vector<StubSpec> stubs,
                       core::SynDogParams params, DemuxOptions options)
    : scheduler_(scheduler), params_(params), options_(options) {
  params_.validate();
  if (stubs.empty()) {
    throw std::invalid_argument("AgentDemux: need at least one stub");
  }
  if (options_.default_stub >= static_cast<int>(stubs.size())) {
    throw std::invalid_argument("AgentDemux: default_stub out of range");
  }
  stubs_.reserve(stubs.size());
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    stubs_.push_back(std::make_unique<Stub>(scheduler, std::move(stubs[i]),
                                            params_, options_.mode,
                                            static_cast<std::uint32_t>(i)));
  }
}

AgentDemux::~AgentDemux() = default;

void AgentDemux::attach_observer(obs::EventTracer* tracer,
                                 obs::Registry& registry) {
  for (const std::unique_ptr<Stub>& stub : stubs_) {
    stub->router.attach_observer(registry, stub->spec.name);
    stub->agent.attach_observer(tracer, registry);
  }
  local_counter_ = &registry.counter("ingest.demux.local_frames");
  unroutable_counter_ = &registry.counter("ingest.demux.unroutable_frames");
}

int AgentDemux::find_stub(net::Ipv4Address addr) const {
  for (std::size_t i = 0; i < stubs_.size(); ++i) {
    if (stubs_[i]->spec.prefix.contains(addr)) return static_cast<int>(i);
  }
  return -1;
}

void AgentDemux::on_frame(util::SimTime at, const Frame& frame) {
  const int src = find_stub(frame.packet.ip.src);
  const int dst = find_stub(frame.packet.ip.dst);
  if (src >= 0 && src == dst) {
    ++local_;
    if (local_counter_ != nullptr) local_counter_->add();
    return;
  }
  if (src >= 0) {
    stubs_[static_cast<std::size_t>(src)]->router.forward_from_intranet(
        at, frame.packet);
  }
  if (dst >= 0) {
    stubs_[static_cast<std::size_t>(dst)]->router.forward_from_internet(
        at, frame.packet);
  }
  if (src < 0 && dst < 0) {
    if (options_.default_stub >= 0) {
      stubs_[static_cast<std::size_t>(options_.default_stub)]
          ->router.forward_from_intranet(at, frame.packet);
    } else {
      ++unroutable_;
      if (unroutable_counter_ != nullptr) unroutable_counter_->add();
    }
  }
}

void AgentDemux::close_final_period() {
  const std::int64_t t0_ns = params_.observation_period.ns();
  const std::int64_t boundary_ns =
      (scheduler_.now().ns() / t0_ns + 1) * t0_ns;
  scheduler_.run_until(util::SimTime::nanoseconds(boundary_ns));
}

const StubSpec& AgentDemux::stub(std::size_t i) const {
  return stubs_.at(i)->spec;
}

const core::SynDogAgent& AgentDemux::agent(std::size_t i) const {
  return stubs_.at(i)->agent;
}

const std::vector<core::AlarmEvent>& AgentDemux::alarms(std::size_t i) const {
  return stubs_.at(i)->alarms;
}

}  // namespace syndog::ingest
