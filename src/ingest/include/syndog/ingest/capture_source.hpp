// Format-agnostic incremental capture source.
//
// Sniffs the first four bytes of a stream to choose between the classic
// pcap reader and the pcapng reader, then yields records one at a time
// through the readers' buffer-reusing next_into() path — unlike
// pcap::read_any_capture, which slurps the whole file into a vector. The
// terminal state (clean EOF vs truncation) is surfaced unchanged so the
// pipeline can account for damaged captures.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>

#include "syndog/pcap/pcap.hpp"
#include "syndog/pcap/pcapng.hpp"

namespace syndog::ingest {

enum class CaptureFormat : std::uint8_t { kPcap, kPcapng };

class CaptureSource {
 public:
  /// Sniffs the stream and constructs the matching reader. Throws
  /// std::runtime_error when the stream starts with neither a pcap magic
  /// nor a pcapng section header.
  explicit CaptureSource(std::istream& in);

  [[nodiscard]] CaptureFormat format() const { return format_; }

  /// Next record, overwriting `out` (reusing its buffer capacity).
  /// Returns false at end of stream; consult end_state() for why.
  [[nodiscard]] bool next(pcap::Record& out);

  [[nodiscard]] pcap::ReadEnd end_state() const;
  [[nodiscard]] std::uint64_t records_read() const;

 private:
  CaptureFormat format_;
  // Exactly one of these is engaged, chosen by the sniffed magic.
  std::optional<pcap::Reader> pcap_;
  std::optional<pcap::PcapngReader> pcapng_;
};

}  // namespace syndog::ingest
