// Sharded multi-core capture ingest (RSS-style rings + batched classify).
//
// The reference path (CapturePipeline -> ReplayEngine -> AgentDemux) is
// byte-deterministic but single-threaded: one thread decodes, routes, and
// counts every frame. ShardedReplay splits that work the way a NIC's RSS
// indirection does: the producer thread frames the capture, extracts a
// net::FlowDigest per record, and hashes the 5-tuple with the *symmetric*
// flow hash (flow_hash.hpp) so a flow's SYN and its returning SYN-ACK
// land in the same SlotRing; one consumer thread per ring owns that
// shard's per-stub period tables outright — no cross-thread counter
// state, no locks, only the SPSC ring cursors. Consumers batch flag
// bytes per (stub, direction) and count them with classify::sweep_flags
// (SIMD where available) instead of classifying frame by frame.
//
// Determinism contract: after the workers join, per-shard period tables
// merge in stable shard order and replay through one core::SynDog per
// stub, reproducing core::SynDogAgent's healthy-path rollover (including
// the first-mile SYN/ACK-collapse absorption) exactly. Because period
// counts are integers and integer addition is associative, history(i) is
// byte-identical — every PeriodReport field, doubles included — to what
// the single-threaded ReplayEngine + AgentDemux oracle produces for the
// same capture, for any thread count. Tests assert this with
// operator== on the full report structs.
//
// Scope: replay analytics only. No pacing, no fault injection, no
// per-period callbacks — the reference engine remains the tool for
// those; benches compare against it and ctest pins the equivalence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "syndog/core/agent.hpp"
#include "syndog/ingest/agent_demux.hpp"
#include "syndog/ingest/capture_source.hpp"
#include "syndog/ingest/pipeline.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/util/time.hpp"

namespace syndog::ingest {

struct ShardedConfig {
  /// Consumer threads == shards. 1 still runs the threaded datapath (one
  /// producer + one consumer); the equivalence tests sweep 1..4.
  std::size_t threads = 4;
  std::size_t ring_capacity = std::size_t{1} << 15;  ///< digests per shard
  /// Flag bytes buffered per (stub, direction) before a SIMD sweep folds
  /// them into the open period's partial counts.
  std::size_t flush_threshold = 4096;
  TimeOrigin origin = TimeOrigin::kAuto;
  core::SynDogParams params;
  core::AgentHealthPolicy health;
  core::AgentMode mode = core::AgentMode::kFirstMile;
  /// Stub index credited with frames matching no prefix; -1 counts them
  /// unroutable instead (same rule as DemuxOptions::default_stub).
  int default_stub = 0;
  void validate(std::size_t stub_count) const;
};

/// Per-shard delivery counters, surfaced as ingest.shard.<i>.{delivered,
/// dropped}. `dropped` is always 0 today — the producer blocks on a full
/// ring rather than dropping — but is reported so dashboards keyed on the
/// pair keep working if a lossy mode ever appears.
struct ShardCounters {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

class ShardedReplay {
 public:
  /// Sniffs the stream's format immediately (throws on garbage); reads no
  /// records until run(). The stream must outlive the replay.
  ShardedReplay(std::istream& in, std::vector<StubSpec> stubs,
                ShardedConfig cfg = {});
  /// Zero-copy variant for an in-memory capture (an mmap'ed file, a
  /// synthesized byte string): classic pcap frames directly out of
  /// `capture` with no block copies — the line-rate path — while pcapng
  /// falls back to an owned stream over the same bytes. The span must
  /// stay valid until run() returns.
  ShardedReplay(net::ByteSpan capture, std::vector<StubSpec> stubs,
                ShardedConfig cfg = {});
  ~ShardedReplay();

  ShardedReplay(const ShardedReplay&) = delete;
  ShardedReplay& operator=(const ShardedReplay&) = delete;

  [[nodiscard]] CaptureFormat format() const { return format_; }

  /// Counters land in `registry` when run() finishes:
  /// ingest.sharded.{records,frames,bytes,decode_failures,
  /// truncated_captures,local_frames,unroutable_frames} and
  /// ingest.shard.<i>.{delivered,dropped}. Distinct from the reference
  /// pipeline's ingest.* names so both datapaths can share a registry.
  void attach_observer(obs::Registry& registry) { registry_ = &registry; }

  /// Streams the whole capture through the shards and merges. Call once.
  void run();

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] pcap::ReadEnd end_state() const { return end_; }

  [[nodiscard]] std::size_t stub_count() const { return stubs_.size(); }
  [[nodiscard]] const StubSpec& stub(std::size_t i) const;
  /// Per-period reports for stub `i`, byte-identical to the reference
  /// AgentDemux agent's history() for the same capture and parameters.
  [[nodiscard]] const std::vector<core::PeriodReport>& history(
      std::size_t i) const;

  [[nodiscard]] std::uint64_t local_frames() const { return local_; }
  [[nodiscard]] std::uint64_t unroutable_frames() const {
    return unroutable_;
  }
  [[nodiscard]] util::SimTime last_frame_at() const {
    return util::SimTime::nanoseconds(last_at_ns_);
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] ShardCounters shard(std::size_t i) const;

 private:
  struct Shard;

  void init(ShardedConfig cfg);
  void produce();
  void produce_pcap_fast();
  void produce_pcap_span();
  void produce_pcapng();
  /// Decode + rebase one record and publish its digest to its shard.
  void feed_record(std::int64_t ts_ns, std::uint32_t orig_len,
                   net::ByteSpan data);
  void consume_shard(Shard& shard);
  void merge();
  void publish_observations();

  std::istream* in_ = nullptr;              ///< null in span mode
  net::ByteSpan span_{};                    ///< empty in stream mode
  std::optional<std::istringstream> owned_in_;  ///< span-mode pcapng bridge
  CaptureFormat format_;
  std::optional<pcap::Reader> pcap_;        ///< classic pcap fast path
  pcap::FileHeader span_header_;            ///< span-mode pcap header
  std::optional<CaptureSource> pcapng_;     ///< pcapng fallback
  std::vector<StubSpec> stubs_;
  ShardedConfig cfg_;
  std::int64_t t0_ns_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<core::PeriodReport>> histories_;
  PipelineStats stats_;
  pcap::ReadEnd end_ = pcap::ReadEnd::kStreaming;
  bool first_seen_ = false;
  std::int64_t epoch_ns_ = 0;
  std::int64_t last_at_ns_ = 0;
  std::uint64_t local_ = 0;
  std::uint64_t unroutable_ = 0;
  obs::Registry* registry_ = nullptr;
  bool ran_ = false;
};

}  // namespace syndog::ingest
