// Bounded single-producer / single-consumer ring of decoded frames.
//
// The ring is the pipeline's only buffer between the capture decoder and
// the sinks: a fixed number of `Frame` slots allocated once at
// construction and recycled forever, so streaming an arbitrarily large
// capture runs in O(capacity) memory with no steady-state allocation
// (the same slot-arena discipline as sim::PacketPool, applied to the
// ingest side). `net::Packet` is a fixed-footprint value type, so reusing
// a slot is a plain overwrite.
//
// Concurrency contract: exactly one producer thread calls try_claim() /
// publish(); exactly one consumer thread calls readable() / release().
// In the pipeline's default single-threaded mode both roles run on the
// same thread and the atomics collapse to plain loads/stores. Capacity is
// rounded up to a power of two so index masking replaces modulo.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/util/time.hpp"

namespace syndog::ingest {

/// One decoded capture record occupying a ring slot.
struct Frame {
  util::SimTime at;                  ///< capture timestamp
  net::Packet packet;                ///< decoded link/network/transport
  std::uint32_t wire_bytes = 0;      ///< original length on the wire
  std::uint32_t captured_bytes = 0;  ///< bytes present in the capture
};

class FrameRing {
 public:
  /// Rounds `capacity` up to a power of two (minimum 2) and allocates all
  /// slots up front. This is the only allocation the ring ever performs.
  explicit FrameRing(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("FrameRing: capacity must be positive");
    }
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing, never grows again
    mask_ = pow2 - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Occupied slots. Exact on the owning threads; a snapshot otherwise.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(
        head_.load(std::memory_order_acquire) -
        tail_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  // -- producer side ------------------------------------------------------

  /// Slot to fill next, or nullptr when the ring is full. The slot is not
  /// visible to the consumer until publish().
  [[nodiscard]] Frame* try_claim() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
      return nullptr;
    }
    return &slots_[static_cast<std::size_t>(head) & mask_];
  }

  /// Makes the slot returned by the last try_claim() visible.
  void publish() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // -- consumer side ------------------------------------------------------

  /// Longest contiguous run of published frames (the run stops at the
  /// array wrap point; call again after release() for the rest).
  [[nodiscard]] std::span<const Frame> readable() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    const std::size_t at = static_cast<std::size_t>(tail) & mask_;
    return {slots_.data() + at, std::min(n, slots_.size() - at)};
  }

  /// Recycles the first `n` readable slots back to the producer.
  void release(std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (n > static_cast<std::size_t>(
                head_.load(std::memory_order_acquire) - tail)) {
      throw std::logic_error("FrameRing: releasing more than readable");
    }
    tail_.store(tail + n, std::memory_order_release);
  }

 private:
  std::vector<Frame> slots_;
  std::size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so the
  /// two-thread mode does not false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to write
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to read
};

}  // namespace syndog::ingest
