// Bounded single-producer / single-consumer slot ring.
//
// SlotRing<Slot> is the ingest side's only buffer between a producer and
// a consumer: a fixed number of slots allocated once at construction and
// recycled forever, so streaming an arbitrarily large capture runs in
// O(capacity) memory with no steady-state allocation (the same
// slot-arena discipline as sim::PacketPool). Slots are fixed-footprint
// value types, so reusing one is a plain overwrite. Two instantiations
// exist today: FrameRing (decoded net::Packet frames, the reference
// pipeline) and the sharded datapath's net::FlowDigest rings.
//
// Concurrency contract: exactly one producer thread calls try_claim() /
// publish(); exactly one consumer thread calls readable() / release().
// In the pipeline's default single-threaded mode both roles run on the
// same thread and the atomics collapse to plain loads/stores. Capacity is
// rounded up to a power of two so index masking replaces modulo.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/util/time.hpp"

namespace syndog::ingest {

/// One decoded capture record occupying a ring slot.
struct Frame {
  util::SimTime at;                  ///< capture timestamp
  net::Packet packet;                ///< decoded link/network/transport
  std::uint32_t wire_bytes = 0;      ///< original length on the wire
  std::uint32_t captured_bytes = 0;  ///< bytes present in the capture
};

template <class Slot>
class SlotRing {
 public:
  /// Rounds `capacity` up to a power of two (minimum 2) and allocates all
  /// slots up front. This is the only allocation the ring ever performs.
  explicit SlotRing(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "SlotRing: capacity must be positive (a zero-capacity ring could "
          "never publish a slot)");
    }
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing, never grows again
    mask_ = pow2 - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Occupied slots. Exact on the owning threads; a snapshot otherwise.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(
        head_.load(std::memory_order_acquire) -
        tail_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  // -- producer side ------------------------------------------------------

  /// Slot to fill next, or nullptr when the ring is full. The slot is not
  /// visible to the consumer until publish(). The consumer's cursor is
  /// re-read only when the cached copy says the ring is full, so steady
  /// state costs no shared-cache-line traffic per claim.
  [[nodiscard]] Slot* try_claim() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ == slots_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ == slots_.size()) return nullptr;
    }
    return &slots_[static_cast<std::size_t>(head) & mask_];
  }

  /// Makes the slot returned by the last try_claim() visible.
  void publish() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // -- consumer side ------------------------------------------------------

  /// Longest contiguous run of published frames (the run stops at the
  /// array wrap point; call again after release() for the rest).
  [[nodiscard]] std::span<const Slot> readable() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    const std::size_t at = static_cast<std::size_t>(tail) & mask_;
    return {slots_.data() + at, std::min(n, slots_.size() - at)};
  }

  /// Recycles the first `n` readable slots back to the producer.
  void release(std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (n > static_cast<std::size_t>(
                head_.load(std::memory_order_acquire) - tail)) {
      throw std::logic_error(
          "SlotRing: releasing more slots than are readable (release(n) "
          "must not exceed the published count)");
    }
    tail_.store(tail + n, std::memory_order_release);
  }

 private:
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so the
  /// two-thread mode does not false-share. `cached_tail_` is
  /// producer-owned (a conservative, monotonic snapshot of `tail_`) and
  /// shares the producer's line deliberately.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to write
  std::uint64_t cached_tail_ = 0;                   ///< producer's tail view
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to read
};

/// The reference pipeline's ring of decoded frames.
using FrameRing = SlotRing<Frame>;

}  // namespace syndog::ingest
