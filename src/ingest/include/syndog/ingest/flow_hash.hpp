// Symmetric RSS-style flow hashing for the sharded ingest datapath.
//
// A NIC's RSS indirection spreads flows across queues by hashing the
// 5-tuple; SYN-dog needs the *symmetric* variant (as in symmetric RSS /
// Toeplitz-key folding): the SYN of a flow and the SYN-ACK coming back
// swap source and destination, and both must land on the same shard so
// each consumer thread owns complete flows and no cross-thread counter
// state exists. Canonicalizing the two endpoints by value order before
// mixing makes the hash invariant under direction reversal; the
// splitmix64 finalizer then spreads adjacent endpoint pairs across the
// whole 64-bit range so shard loads stay balanced even for the regular
// address patterns synthetic traces use.
//
// Fragments past the first and non-TCP/UDP frames hash with ports 0 —
// they carry no flag byte to count, so which shard sees them only needs
// to be deterministic, not flow-aligned.
#pragma once

#include <cstddef>
#include <cstdint>

#include "syndog/net/digest.hpp"

namespace syndog::ingest {

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Symmetric hash over the IPv4 5-tuple: swapping (src, src_port) with
/// (dst, dst_port) yields the same value.
[[nodiscard]] constexpr std::uint64_t flow_hash(std::uint32_t src,
                                                std::uint16_t src_port,
                                                std::uint32_t dst,
                                                std::uint16_t dst_port,
                                                std::uint8_t protocol) {
  const std::uint64_t a = (std::uint64_t{src} << 16) | src_port;
  const std::uint64_t b = (std::uint64_t{dst} << 16) | dst_port;
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  // Endpoints are canonically ordered, so any mixer is direction-safe;
  // chain two rounds so both endpoints avalanche into every output bit.
  return mix64(lo ^ mix64(hi ^ (std::uint64_t{protocol} << 48)));
}

[[nodiscard]] constexpr std::uint64_t flow_hash(const net::FlowDigest& d) {
  return flow_hash(d.src, d.src_port, d.dst, d.dst_port, d.protocol);
}

/// Shard index for `hash` among `shards` rings (shards >= 1). A pure
/// function of (hash, shards): the same flow maps to the same ring on
/// every run with the same thread count.
[[nodiscard]] constexpr std::size_t shard_of(std::uint64_t hash,
                                             std::size_t shards) {
  // Power-of-two counts (the common 1/2/4/8) mask; others take the
  // general modulo.
  if ((shards & (shards - 1)) == 0) {
    return static_cast<std::size_t>(hash) & (shards - 1);
  }
  return static_cast<std::size_t>(hash % shards);
}

}  // namespace syndog::ingest
