// Multi-agent capture demultiplexer.
//
// Routes replayed frames to per-stub first-mile deployments — each stub
// gets its own sim::LeafRouter with a core::SynDogAgent tapped onto it —
// so one pass over one capture drives N independent detectors, emitting
// the same period_rollover / cusum_update / alarm telemetry as the
// simulated topologies.
//
// Direction rules per frame (src/dst matched against the stub prefixes):
//   * src in stub A, dst elsewhere   -> outbound through A's router
//   * dst in stub B, src elsewhere   -> inbound through B's router
//   * src in A and dst in B (A != B) -> both of the above
//   * src and dst in the same stub   -> LAN-local; never crosses the
//     monitored interface, counted in local_frames()
//   * neither matches any stub       -> attributed to options.default_stub
//     as outbound (a spoofed-source flood leaving that stub — the
//     capture's vantage point), or counted unroutable when default_stub
//     is -1.
// With a single stub and default_stub = 0 this reproduces the direction
// heuristic of examples/pcap_sniffer: outbound iff contains(src) or not
// contains(dst).
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "syndog/core/agent.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/net/address.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/scheduler.hpp"

namespace syndog::ingest {

struct StubSpec {
  net::Ipv4Prefix prefix;
  std::string name;  ///< labels telemetry; must be unique per demux
};

struct DemuxOptions {
  core::AgentMode mode = core::AgentMode::kFirstMile;
  /// Stub index credited with frames matching no prefix; -1 drops them
  /// into unroutable_frames() instead.
  int default_stub = 0;
};

class AgentDemux final : public ReplaySink {
 public:
  /// Builds one router + agent pair per stub on `scheduler` (typically
  /// ReplayEngine::scheduler(); must outlive the demux). Agents start
  /// their period timers immediately, so construct the demux before
  /// replaying.
  AgentDemux(sim::Scheduler& scheduler, std::vector<StubSpec> stubs,
             core::SynDogParams params, DemuxOptions options = {});
  ~AgentDemux() override;

  AgentDemux(const AgentDemux&) = delete;
  AgentDemux& operator=(const AgentDemux&) = delete;

  /// Wires per-stub router counters ("router.<name>.*"), agent telemetry,
  /// and demux counters ("ingest.demux.*") into the sinks. `tracer` may
  /// be nullptr; both must outlive the demux.
  void attach_observer(obs::EventTracer* tracer, obs::Registry& registry);

  void on_frame(util::SimTime at, const Frame& frame) override;

  /// Closes the final partial observation period on every agent by
  /// advancing the shared scheduler to the next period boundary. Call
  /// once, after the replay (not in addition to
  /// ReplayEngine::close_final_period — they advance the same clock).
  void close_final_period();

  [[nodiscard]] std::size_t stub_count() const { return stubs_.size(); }
  [[nodiscard]] const StubSpec& stub(std::size_t i) const;
  [[nodiscard]] const core::SynDogAgent& agent(std::size_t i) const;
  [[nodiscard]] const std::vector<core::AlarmEvent>& alarms(
      std::size_t i) const;
  /// Frames whose src and dst fall inside the same stub.
  [[nodiscard]] std::uint64_t local_frames() const { return local_; }
  /// Frames matching no stub while default_stub is -1.
  [[nodiscard]] std::uint64_t unroutable_frames() const {
    return unroutable_;
  }

 private:
  struct Stub;

  [[nodiscard]] int find_stub(net::Ipv4Address addr) const;

  sim::Scheduler& scheduler_;
  core::SynDogParams params_;
  DemuxOptions options_;
  std::vector<std::unique_ptr<Stub>> stubs_;
  std::uint64_t local_ = 0;
  std::uint64_t unroutable_ = 0;
  obs::Counter* local_counter_ = nullptr;
  obs::Counter* unroutable_counter_ = nullptr;
};

}  // namespace syndog::ingest
