// Streaming capture-ingest pipeline.
//
// Pulls records incrementally from a CaptureSource, decodes them into the
// pooled slots of a FrameRing, and hands fixed-size batches to registered
// FrameSinks with explicit backpressure. The whole pipeline runs in
// O(ring capacity) memory regardless of capture size, and performs no
// allocation in steady state: record bytes land in one reused scratch
// buffer, decoded packets overwrite recycled ring slots, and batches are
// spans over the ring.
//
// Modes:
//   * single-threaded (default): produce until the ring fills or the
//     source ends, then drain; byte-deterministic, used by every bench.
//   * threaded: a producer thread decodes while the calling thread
//     dispatches. Delivered/dropped *counts* match the single-threaded
//     mode under kBlock sinks; batch boundaries may differ. Exercised by
//     the tsan suite, never by benches.
//
// No std::function anywhere in this header: sinks are virtual interfaces
// bound once at wiring time, so the per-batch hot path is a devirtualized
// call with no per-event allocation (same rule as the sim hot path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/ingest/capture_source.hpp"
#include "syndog/ingest/frame_ring.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/pcap/pcap.hpp"

namespace syndog::ingest {

/// What to do when a sink consumes less than the batch it was offered.
enum class BackpressurePolicy : std::uint8_t {
  /// Re-offer the unconsumed suffix until the sink takes it all. A sink
  /// that returns 0 for a non-empty batch is stalled — there is no other
  /// thread that could unblock it — so the pipeline throws.
  kBlock,
  /// Drop the unconsumed suffix of each offered batch and count the
  /// drops (per sink, surfaced via dropped() and the obs registry).
  kDropNewest,
};

/// Batch consumer. on_batch returns how many frames of the (non-empty)
/// batch it accepted; acceptance is prefix-only.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual std::size_t on_batch(std::span<const Frame> batch) = 0;
};

struct PipelineConfig {
  std::size_t ring_capacity = 1024;  ///< rounded up to a power of two
  std::size_t batch_size = 64;       ///< max frames per on_batch call
  bool threaded = false;             ///< two-thread producer/consumer mode
  void validate() const;
};

struct PipelineStats {
  std::uint64_t records = 0;          ///< capture records pulled
  std::uint64_t frames = 0;           ///< records that decoded to frames
  std::uint64_t bytes = 0;            ///< captured bytes of those frames
  std::uint64_t decode_failures = 0;  ///< non-Ethernet/IPv4 or mangled
  bool truncated = false;             ///< source ended mid-record
};

class CapturePipeline {
 public:
  /// Sniffs the stream's format immediately (throws on garbage); reads
  /// no records until run(). The stream must outlive the pipeline.
  explicit CapturePipeline(std::istream& in, PipelineConfig cfg = {});

  [[nodiscard]] CaptureFormat format() const { return source_.format(); }

  /// Registers a sink (must outlive run()). `name` labels the per-sink
  /// delivered/dropped counters. Returns the sink's index.
  std::size_t add_sink(std::string_view name, FrameSink& sink,
                       BackpressurePolicy policy = BackpressurePolicy::kBlock);

  /// Counters land in `registry` when run() finishes:
  /// ingest.{records,frames,bytes,decode_failures,truncated_captures}
  /// and ingest.sink.<name>.{delivered,dropped}.
  void attach_observer(obs::Registry& registry) { registry_ = &registry; }

  /// Streams the whole capture through the ring. Call once.
  void run();

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t sink_count() const { return sinks_.size(); }
  [[nodiscard]] std::uint64_t delivered(std::size_t sink_index) const;
  [[nodiscard]] std::uint64_t dropped(std::size_t sink_index) const;
  [[nodiscard]] pcap::ReadEnd end_state() const {
    return source_.end_state();
  }

 private:
  struct SinkEntry {
    std::string name;
    FrameSink* sink;
    BackpressurePolicy policy;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };

  /// Decodes the next frame of the capture into `slot`; false when the
  /// source is exhausted. Skips (and counts) undecodable records.
  bool produce_into(Frame& slot);
  void dispatch_chunk(std::span<const Frame> chunk);
  /// Dispatches every readable frame in chunks of <= batch_size.
  void drain_all();
  void run_single_threaded();
  void run_threaded();
  void publish_observations();

  CaptureSource source_;
  PipelineConfig cfg_;
  FrameRing ring_;
  pcap::Record scratch_;  ///< reused record buffer (producer side)
  PipelineStats stats_;
  std::vector<SinkEntry> sinks_;
  obs::Registry* registry_ = nullptr;
  bool ran_ = false;
};

}  // namespace syndog::ingest
