// Capture replay onto the discrete-event simulator clock.
//
// ReplayEngine owns a CapturePipeline and a sim::Scheduler and bridges
// them: before each frame is handed to the replay sinks, the scheduler is
// advanced to the frame's (epoch-rebased) capture timestamp, firing any
// due timers first. Components that live on scheduler time — notably
// core::SynDogAgent's observation-period timer — therefore behave exactly
// as they do in simulation: a period boundary at or before a frame's
// timestamp closes before that frame is seen, which is precisely the
// semantics of the whole-file analysis loop in examples/pcap_sniffer.
//
// Two replay clocks:
//   * kAsFastAsPossible (default): wall time never consulted; the replay
//     is a pure function of the capture bytes.
//   * kPaced: frames are throttled against obs::WallClock so capture time
//     advances at `speed` x real time. Pacing only ever sleeps — it
//     cannot reorder or drop — so results stay byte-identical to the
//     unpaced run.
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <vector>

#include "syndog/ingest/pipeline.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/time.hpp"

namespace syndog::ingest {

enum class ReplayClock : std::uint8_t {
  kAsFastAsPossible,
  kPaced,  ///< throttle to `speed` x capture time per wall time
};

/// How capture timestamps map onto the scheduler's epoch-zero clock.
enum class TimeOrigin : std::uint8_t {
  /// kFirstFrame when the first timestamp exceeds 24 h (a real capture
  /// stamped with an absolute epoch), kCaptureZero otherwise (synthetic
  /// captures already start near zero).
  kAuto,
  kCaptureZero,  ///< use timestamps as-is
  kFirstFrame,   ///< subtract the first frame's timestamp
};

struct ReplayConfig {
  ReplayClock clock = ReplayClock::kAsFastAsPossible;
  double speed = 1.0;  ///< kPaced: capture seconds per wall second
  TimeOrigin origin = TimeOrigin::kAuto;
  PipelineConfig pipeline;
  void validate() const;
};

/// Receives frames in capture order; the engine's scheduler has already
/// been advanced to `at` (so any timer due earlier has fired).
class ReplaySink {
 public:
  virtual ~ReplaySink() = default;
  virtual void on_frame(util::SimTime at, const Frame& frame) = 0;
};

class ReplayEngine final : private FrameSink {
 public:
  /// The stream must outlive the engine. Throws on an unrecognizable
  /// capture format (before any record is read).
  explicit ReplayEngine(std::istream& in, ReplayConfig cfg = {});

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] CapturePipeline& pipeline() { return pipeline_; }

  /// Registers a replay sink (must outlive run()).
  void add_sink(ReplaySink& sink);

  /// Wires pipeline counters and scheduler instruments into `registry`.
  void attach_observer(obs::Registry& registry);

  /// Pacing seam for tests; nullptr restores the real monotonic clock.
  void set_wall_clock(const obs::WallClock* clock);

  /// Streams the whole capture. Call once.
  const PipelineStats& run();

  /// Advances the scheduler to the end of the observation period
  /// containing the last replayed frame, closing the final partial
  /// period — the timer analogue of the manual loop's trailing
  /// close_period(). Call after run(), once, with the agents' t0.
  void close_final_period(util::SimTime t0);

  /// Capture timestamp subtracted from every frame (0 until the first
  /// frame is seen under kAuto/kFirstFrame).
  [[nodiscard]] util::SimTime epoch() const { return epoch_; }
  [[nodiscard]] util::SimTime last_frame_at() const { return last_at_; }
  [[nodiscard]] std::uint64_t frames_replayed() const { return frames_; }

 private:
  std::size_t on_batch(std::span<const Frame> batch) override;
  void pace(util::SimTime at);

  ReplayConfig cfg_;
  sim::Scheduler scheduler_;
  CapturePipeline pipeline_;
  std::vector<ReplaySink*> sinks_;
  obs::WallClock real_clock_;
  const obs::WallClock* wall_;
  bool first_seen_ = false;
  util::SimTime epoch_ = util::SimTime::zero();
  util::SimTime last_at_ = util::SimTime::zero();
  std::int64_t pace_wall0_ns_ = 0;
  util::SimTime pace_sim0_ = util::SimTime::zero();
  std::uint64_t frames_ = 0;
};

}  // namespace syndog::ingest
