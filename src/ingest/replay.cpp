#include "syndog/ingest/replay.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace syndog::ingest {

namespace {

/// kAuto threshold: a first timestamp beyond this is an absolute-epoch
/// stamp from a real capture, not a synthetic zero-based trace.
constexpr util::SimTime kAbsoluteEpochFloor = util::SimTime::seconds(86400);

}  // namespace

void ReplayConfig::validate() const {
  if (clock == ReplayClock::kPaced && !(speed > 0.0)) {
    throw std::invalid_argument("ReplayConfig: paced speed must be > 0");
  }
  pipeline.validate();
}

ReplayEngine::ReplayEngine(std::istream& in, ReplayConfig cfg)
    : cfg_((cfg.validate(), cfg)),
      pipeline_(in, cfg.pipeline),
      wall_(&real_clock_) {
  pipeline_.add_sink("replay", *this, BackpressurePolicy::kBlock);
}

void ReplayEngine::add_sink(ReplaySink& sink) { sinks_.push_back(&sink); }

void ReplayEngine::attach_observer(obs::Registry& registry) {
  pipeline_.attach_observer(registry);
  scheduler_.attach_observer(&registry);
}

void ReplayEngine::set_wall_clock(const obs::WallClock* clock) {
  wall_ = clock != nullptr ? clock : &real_clock_;
}

void ReplayEngine::pace(util::SimTime at) {
  const double capture_ns = static_cast<double>((at - pace_sim0_).ns());
  const std::int64_t target_wall_ns =
      pace_wall0_ns_ + static_cast<std::int64_t>(capture_ns / cfg_.speed);
  for (;;) {
    const std::int64_t behind_ns = target_wall_ns - wall_->now_ns();
    if (behind_ns <= 0) break;
    // Sleep most of the gap, then re-check; caps per-sleep latency so a
    // swapped-in test clock cannot strand us for the full capture span.
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        std::min<std::int64_t>(behind_ns, 50'000'000)));
  }
}

std::size_t ReplayEngine::on_batch(std::span<const Frame> batch) {
  for (const Frame& frame : batch) {
    if (!first_seen_) {
      first_seen_ = true;
      switch (cfg_.origin) {
        case TimeOrigin::kCaptureZero:
          break;
        case TimeOrigin::kFirstFrame:
          epoch_ = frame.at;
          break;
        case TimeOrigin::kAuto:
          if (frame.at > kAbsoluteEpochFloor) epoch_ = frame.at;
          break;
      }
      pace_wall0_ns_ = wall_->now_ns();
      pace_sim0_ = frame.at - epoch_;
    }
    util::SimTime at = frame.at - epoch_;
    // Out-of-order or pre-epoch timestamps cannot rewind the DES clock.
    if (at < scheduler_.now()) at = scheduler_.now();
    if (cfg_.clock == ReplayClock::kPaced) pace(at);
    // Fire every timer due at or before this frame (period rollovers
    // land before the frame that crosses the boundary, as in the
    // whole-file analysis loop).
    scheduler_.run_until(at);
    for (ReplaySink* sink : sinks_) sink->on_frame(at, frame);
    last_at_ = at;
    ++frames_;
  }
  return batch.size();
}

const PipelineStats& ReplayEngine::run() {
  pipeline_.run();
  return pipeline_.stats();
}

void ReplayEngine::close_final_period(util::SimTime t0) {
  if (t0 <= util::SimTime::zero()) {
    throw std::invalid_argument("close_final_period: t0 must be positive");
  }
  const std::int64_t boundary_ns =
      (scheduler_.now().ns() / t0.ns() + 1) * t0.ns();
  scheduler_.run_until(util::SimTime::nanoseconds(boundary_ns));
}

}  // namespace syndog::ingest
