#include "syndog/ingest/pipeline.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "syndog/net/packet.hpp"

namespace syndog::ingest {

void PipelineConfig::validate() const {
  if (ring_capacity == 0) {
    throw std::invalid_argument("PipelineConfig: ring_capacity must be > 0");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("PipelineConfig: batch_size must be > 0");
  }
}

CapturePipeline::CapturePipeline(std::istream& in, PipelineConfig cfg)
    : source_((cfg.validate(), in)), cfg_(cfg), ring_(cfg.ring_capacity) {}

std::size_t CapturePipeline::add_sink(std::string_view name, FrameSink& sink,
                                      BackpressurePolicy policy) {
  if (ran_) {
    throw std::logic_error("CapturePipeline: add_sink after run()");
  }
  sinks_.push_back(SinkEntry{std::string(name), &sink, policy});
  return sinks_.size() - 1;
}

std::uint64_t CapturePipeline::delivered(std::size_t sink_index) const {
  return sinks_.at(sink_index).delivered;
}

std::uint64_t CapturePipeline::dropped(std::size_t sink_index) const {
  return sinks_.at(sink_index).dropped;
}

bool CapturePipeline::produce_into(Frame& slot) {
  for (;;) {
    if (!source_.next(scratch_)) return false;
    ++stats_.records;
    if (!net::decode_frame_into(scratch_.data, slot.packet)) {
      ++stats_.decode_failures;
      continue;
    }
    slot.at = scratch_.timestamp;
    slot.wire_bytes = scratch_.orig_len;
    slot.captured_bytes = static_cast<std::uint32_t>(scratch_.data.size());
    stats_.bytes += scratch_.data.size();
    ++stats_.frames;
    return true;
  }
}

void CapturePipeline::dispatch_chunk(std::span<const Frame> chunk) {
  for (SinkEntry& entry : sinks_) {
    std::span<const Frame> rest = chunk;
    if (entry.policy == BackpressurePolicy::kBlock) {
      while (!rest.empty()) {
        const std::size_t took = entry.sink->on_batch(rest);
        if (took == 0) {
          throw std::runtime_error("CapturePipeline: kBlock sink '" +
                                   entry.name +
                                   "' accepted nothing; no other thread can "
                                   "unblock it");
        }
        entry.delivered += std::min(took, rest.size());
        rest = rest.subspan(std::min(took, rest.size()));
      }
    } else {
      const std::size_t took = std::min(entry.sink->on_batch(rest),
                                        rest.size());
      entry.delivered += took;
      entry.dropped += rest.size() - took;
    }
  }
}

void CapturePipeline::drain_all() {
  for (;;) {
    const std::span<const Frame> run = ring_.readable();
    if (run.empty()) break;
    const std::size_t take = std::min(run.size(), cfg_.batch_size);
    dispatch_chunk(run.first(take));
    ring_.release(take);
  }
}

void CapturePipeline::run_single_threaded() {
  bool more = true;
  while (more) {
    // Fill phase: decode until the ring is full or the capture ends...
    for (;;) {
      Frame* slot = ring_.try_claim();
      if (slot == nullptr) break;
      if (!produce_into(*slot)) {
        more = false;
        break;
      }
      ring_.publish();
    }
    // ...then drain everything. Strict alternation keeps batch shapes a
    // pure function of the capture bytes and the config.
    drain_all();
  }
}

void CapturePipeline::run_threaded() {
  std::atomic<bool> done{false};  ///< producer finished (or errored)
  std::atomic<bool> stop{false};  ///< consumer errored; producer must bail
  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      while (!stop.load(std::memory_order_acquire)) {
        Frame* slot = ring_.try_claim();
        if (slot == nullptr) {
          std::this_thread::yield();  // ring full: consumer is behind
          continue;
        }
        if (!produce_into(*slot)) break;
        ring_.publish();
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    done.store(true, std::memory_order_release);
  });

  try {
    for (;;) {
      const std::span<const Frame> run = ring_.readable();
      if (run.empty()) {
        if (done.load(std::memory_order_acquire) && ring_.empty()) break;
        std::this_thread::yield();
        continue;
      }
      const std::size_t take = std::min(run.size(), cfg_.batch_size);
      dispatch_chunk(run.first(take));
      ring_.release(take);
    }
  } catch (...) {
    stop.store(true, std::memory_order_release);
    producer.join();
    throw;
  }
  producer.join();
  if (producer_error) std::rethrow_exception(producer_error);
}

void CapturePipeline::run() {
  if (ran_) {
    throw std::logic_error("CapturePipeline: run() called twice");
  }
  ran_ = true;
  if (cfg_.threaded) {
    run_threaded();
  } else {
    run_single_threaded();
  }
  stats_.truncated = source_.end_state() == pcap::ReadEnd::kTruncated;
  publish_observations();
}

void CapturePipeline::publish_observations() {
  if (registry_ == nullptr) return;
  registry_->counter("ingest.records").add(stats_.records);
  registry_->counter("ingest.frames").add(stats_.frames);
  registry_->counter("ingest.bytes").add(stats_.bytes);
  registry_->counter("ingest.decode_failures").add(stats_.decode_failures);
  registry_->counter("ingest.truncated_captures")
      .add(stats_.truncated ? 1 : 0);
  for (const SinkEntry& entry : sinks_) {
    registry_->counter("ingest.sink." + entry.name + ".delivered")
        .add(entry.delivered);
    registry_->counter("ingest.sink." + entry.name + ".dropped")
        .add(entry.dropped);
  }
}

}  // namespace syndog::ingest
