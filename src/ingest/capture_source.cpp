#include "syndog/ingest/capture_source.hpp"

#include <stdexcept>

namespace syndog::ingest {

namespace {

/// pcapng Section Header Block type — the first four bytes of any pcapng
/// stream (a palindrome, so endianness does not matter when sniffing).
constexpr std::uint32_t kSectionHeaderBlock = 0x0a0d0d0a;

}  // namespace

CaptureSource::CaptureSource(std::istream& in) : format_(CaptureFormat::kPcap) {
  char magic_bytes[4];
  in.read(magic_bytes, 4);
  if (in.gcount() != 4) {
    throw std::runtime_error("capture: file too short to sniff format");
  }
  for (int i = 3; i >= 0; --i) in.putback(magic_bytes[i]);

  std::uint32_t le_magic = 0;
  for (int i = 3; i >= 0; --i) {
    le_magic = (le_magic << 8) | static_cast<std::uint8_t>(magic_bytes[i]);
  }
  if (le_magic == kSectionHeaderBlock) {
    format_ = CaptureFormat::kPcapng;
    pcapng_.emplace(in);
  } else {
    // Classic pcap; the reader throws on an unrecognized magic.
    pcap_.emplace(in);
  }
}

bool CaptureSource::next(pcap::Record& out) {
  return pcap_ ? pcap_->next_into(out) : pcapng_->next_into(out);
}

pcap::ReadEnd CaptureSource::end_state() const {
  return pcap_ ? pcap_->end_state() : pcapng_->end_state();
}

std::uint64_t CaptureSource::records_read() const {
  return pcap_ ? pcap_->records_read() : pcapng_->records_read();
}

}  // namespace syndog::ingest
