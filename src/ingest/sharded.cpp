// syndog-lint: hotpath-file -- per-digest work must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#include "syndog/ingest/sharded.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <exception>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "syndog/classify/batch.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/ingest/flow_hash.hpp"
#include "syndog/ingest/frame_ring.hpp"
#include "syndog/net/digest.hpp"

namespace syndog::ingest {

namespace {

/// kAuto threshold, mirrored from replay.cpp: a first timestamp beyond
/// 24 h is an absolute-epoch stamp from a real capture.
constexpr std::int64_t kAbsoluteEpochFloorNs = 86'400'000'000'000;

/// pcapng Section Header Block type (same sniff as CaptureSource).
constexpr std::uint32_t kSectionHeaderBlock = 0x0a0d0d0a;

constexpr std::uint32_t bswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00U) | ((v << 8) & 0x00ff0000U) |
         (v << 24);
}

/// A stub prefix reduced to the two words contains() compares, so the
/// per-digest routing scan is branch + AND + compare per stub with no
/// function calls.
struct PrefixMatcher {
  std::uint32_t mask = 0;
  std::uint32_t net = 0;
  [[nodiscard]] bool contains(std::uint32_t addr) const {
    return (addr & mask) == net;
  }
};

/// Flag-byte batches and period table for one stub within one shard.
struct StubShardState {
  /// Open-period flag bytes, swept in batches; bounded by the reserve in
  /// Shard's constructor (flush_threshold), so appends never reallocate.
  std::vector<std::uint8_t> out_flags;
  std::vector<std::uint8_t> in_flags;
  classify::FlagSweep out_partial;  ///< swept counts, open period
  classify::FlagSweep in_partial;
  /// periods[p] = mode-selected {syn, synack} this shard saw in period p.
  /// Sparse at the tail: periods past the last nonzero entry are omitted.
  std::vector<std::array<std::int64_t, 2>> periods;
};

}  // namespace

/// One ring plus the consumer-owned counting state behind it. The
/// producer touches only `ring`; everything else belongs to the shard's
/// worker thread until run() joins it.
struct ShardedReplay::Shard {
  Shard(std::size_t ring_capacity, std::size_t stub_count,
        std::size_t flush_threshold)
      : ring(ring_capacity) {
    stubs.resize(stub_count);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing
    for (StubShardState& s : stubs) {
      s.out_flags.reserve(flush_threshold + 1);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing; appends stay under the threshold
      s.in_flags.reserve(flush_threshold + 1);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing; appends stay under the threshold
    }
  }

  SlotRing<net::FlowDigest> ring;
  std::atomic<bool> done{false};  ///< producer: no more digests coming
  std::exception_ptr failure;     ///< consumer: set before early exit

  // -- consumer-owned state ----------------------------------------------
  std::vector<StubShardState> stubs;
  std::int64_t cur_period = 0;
  std::int64_t next_boundary_ns = 0;
  std::uint64_t delivered = 0;
  std::uint64_t local = 0;
  std::uint64_t unroutable = 0;
};

void ShardedConfig::validate(std::size_t stub_count) const {
  if (threads == 0) {
    throw std::invalid_argument("ShardedConfig: threads must be >= 1");
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument(
        "ShardedConfig: ring_capacity must be positive");
  }
  if (flush_threshold == 0) {
    throw std::invalid_argument(
        "ShardedConfig: flush_threshold must be positive");
  }
  params.validate();
  health.validate();
  if (stub_count == 0) {
    throw std::invalid_argument("ShardedReplay: at least one stub");
  }
  if (default_stub < -1 ||
      default_stub >= static_cast<int>(stub_count)) {
    throw std::invalid_argument(
        "ShardedConfig: default_stub out of range (use -1 to drop "
        "unmatched frames)");
  }
}

ShardedReplay::ShardedReplay(std::istream& in, std::vector<StubSpec> stubs,
                             ShardedConfig cfg)
    : in_(&in), format_(CaptureFormat::kPcap), stubs_(std::move(stubs)) {
  cfg.validate(stubs_.size());

  // Same format sniff as CaptureSource: pcapng's Section Header Block
  // type is a byte-order palindrome.
  char magic_bytes[4];
  in_->read(magic_bytes, 4);
  if (in_->gcount() != 4) {
    throw std::runtime_error("capture: file too short to sniff format");
  }
  for (int i = 3; i >= 0; --i) in_->putback(magic_bytes[i]);
  std::uint32_t le_magic = 0;
  for (int i = 3; i >= 0; --i) {
    le_magic = (le_magic << 8) | static_cast<std::uint8_t>(magic_bytes[i]);
  }
  if (le_magic == kSectionHeaderBlock) {
    format_ = CaptureFormat::kPcapng;
    pcapng_.emplace(*in_);
  } else {
    pcap_.emplace(*in_);  // throws on an unrecognized magic
  }
  init(cfg);
}

ShardedReplay::ShardedReplay(net::ByteSpan capture,
                             std::vector<StubSpec> stubs, ShardedConfig cfg)
    : span_(capture), format_(CaptureFormat::kPcap), stubs_(std::move(stubs)) {
  cfg.validate(stubs_.size());

  if (span_.size() < 4) {
    throw std::runtime_error("capture: file too short to sniff format");
  }
  std::uint32_t le_magic = 0;
  for (int i = 3; i >= 0; --i) le_magic = (le_magic << 8) | span_[static_cast<std::size_t>(i)];
  if (le_magic == kSectionHeaderBlock) {
    // pcapng keeps the record-at-a-time reader; bridge the span through
    // an owned stream (one copy — the zero-copy fast path is classic
    // pcap, the format line-rate captures actually use).
    format_ = CaptureFormat::kPcapng;
    owned_in_.emplace(
        std::string(reinterpret_cast<const char*>(span_.data()),
                    span_.size()),
        std::ios::binary);
    pcapng_.emplace(*owned_in_);
  } else {
    // Parse + validate the 24-byte file header with the real Reader over
    // a bounded bridge stream, so a malformed header throws exactly the
    // same error as the stream constructor.
    owned_in_.emplace(
        std::string(reinterpret_cast<const char*>(span_.data()),
                    std::min<std::size_t>(span_.size(), 24)),
        std::ios::binary);
    const pcap::Reader header_probe(*owned_in_);
    span_header_ = header_probe.header();
    owned_in_.reset();
  }
  init(cfg);
}

void ShardedReplay::init(ShardedConfig cfg) {
  cfg_ = cfg;
  t0_ns_ = cfg_.params.observation_period.ns();
  shards_.reserve(cfg_.threads);  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    shards_.push_back(std::make_unique<Shard>(  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing
        cfg_.ring_capacity, stubs_.size(), cfg_.flush_threshold));
  }
  histories_.resize(stubs_.size());  // syndog-lint: allow(hotpath.allocation) -- construction-time sizing
}

ShardedReplay::~ShardedReplay() = default;

const StubSpec& ShardedReplay::stub(std::size_t i) const {
  return stubs_.at(i);
}

const std::vector<core::PeriodReport>& ShardedReplay::history(
    std::size_t i) const {
  return histories_.at(i);
}

ShardCounters ShardedReplay::shard(std::size_t i) const {
  return ShardCounters{shards_.at(i)->delivered, 0};
}

void ShardedReplay::run() {
  if (ran_) {
    throw std::logic_error("ShardedReplay::run: already ran (call once)");
  }
  ran_ = true;

  std::vector<std::thread> workers;
  workers.reserve(shards_.size());  // syndog-lint: allow(hotpath.allocation) -- run()-entry sizing, before any digest flows
  for (const std::unique_ptr<Shard>& shard : shards_) {
    workers.emplace_back([this, sh = shard.get()] {  // syndog-lint: allow(hotpath.allocation) -- one spawn per shard at run() entry
      try {
        consume_shard(*sh);
      } catch (...) {
        sh->failure = std::current_exception();
        // Keep draining so the producer's blocking publish never
        // deadlocks on a dead consumer; counts no longer matter.
        for (;;) {
          const std::span<const net::FlowDigest> r = sh->ring.readable();
          if (r.empty()) {
            if (sh->done.load(std::memory_order_acquire) &&
                sh->ring.empty()) {
              break;
            }
            std::this_thread::yield();
            continue;
          }
          sh->ring.release(r.size());
        }
      }
    });
  }

  std::exception_ptr produce_failure;
  try {
    produce();
  } catch (...) {
    produce_failure = std::current_exception();
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->done.store(true, std::memory_order_release);
  }
  for (std::thread& w : workers) w.join();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->failure) std::rethrow_exception(shard->failure);
  }
  if (produce_failure) std::rethrow_exception(produce_failure);

  stats_.truncated = end_ == pcap::ReadEnd::kTruncated;
  merge();
  publish_observations();
}

void ShardedReplay::produce() {
  if (format_ == CaptureFormat::kPcapng) {
    produce_pcapng();
  } else if (in_ == nullptr) {
    produce_pcap_span();
  } else {
    produce_pcap_fast();
  }
}

/// Classic pcap over an in-memory span: the record walk IS the buffer —
/// no block reads, no memmove, no copy per byte. End-state rules match
/// produce_pcap_fast (and so pcap::Reader::next_into): nothing left at a
/// record boundary is kEof; a partial header, an implausible incl_len,
/// or short data is kTruncated.
void ShardedReplay::produce_pcap_span() {
  const bool swap = span_header_.swapped;
  const bool nanos = span_header_.nanosecond;
  const std::uint64_t max_incl = std::uint64_t{span_header_.snaplen} + 65536;
  const std::uint8_t* base = span_.data();
  const std::size_t size = span_.size();
  std::size_t pos = 24;  // the probe Reader validated the file header

  const auto load32 = [&](std::size_t off) -> std::uint32_t {
    std::uint32_t v = 0;
    std::memcpy(&v, base + pos + off, 4);
    return swap ? bswap32(v) : v;
  };

  // The record walk chases a serial dependency (this record's length ->
  // next record's address), which a cold span turns into one DRAM-latency
  // stall per record. Streaming prefetch a few KiB ahead keeps the walk
  // bandwidth-bound instead — the same effect block-copying into a warm
  // buffer has, without writing 1 MiB blocks nobody reads twice.
  constexpr std::size_t kPrefetchAheadBytes = 4096;
  std::size_t prefetched = pos;

  for (;;) {
    const std::size_t want = std::min(pos + kPrefetchAheadBytes, size);
    while (prefetched < want) {
      __builtin_prefetch(base + prefetched, 0, 3);
      prefetched += 64;
    }
    if (size - pos < 16) {
      end_ = size == pos ? pcap::ReadEnd::kEof : pcap::ReadEnd::kTruncated;
      return;
    }
    const std::uint32_t ts_sec = load32(0);
    const std::uint32_t ts_frac = load32(4);
    const std::uint32_t incl = load32(8);
    const std::uint32_t orig = load32(12);
    if (std::uint64_t{incl} > max_incl || size - pos - 16 < incl) {
      end_ = pcap::ReadEnd::kTruncated;
      return;
    }
    const std::int64_t ts_ns =
        std::int64_t{ts_sec} * 1'000'000'000 +
        (nanos ? std::int64_t{ts_frac} : std::int64_t{ts_frac} * 1000);
    feed_record(ts_ns, orig, net::ByteSpan{base + pos + 16, incl});
    pos += 16U + incl;
  }
}

/// Classic pcap fast path: the Reader already consumed and validated the
/// 24-byte file header; from here the producer frames records out of
/// ~1 MiB block reads, so steady state costs one istream::read per block
/// instead of two per record. End-state classification matches
/// pcap::Reader::next_into exactly: nothing left at a record boundary is
/// kEof; a partial header, an implausible incl_len, or short data is
/// kTruncated.
void ShardedReplay::produce_pcap_fast() {
  const pcap::FileHeader& hdr = pcap_->header();
  const bool swap = hdr.swapped;
  const bool nanos = hdr.nanosecond;
  const std::uint64_t max_incl = std::uint64_t{hdr.snaplen} + 65536;

  std::vector<std::uint8_t> buf;
  buf.resize(std::max<std::size_t>(  // syndog-lint: allow(hotpath.allocation) -- one block buffer per capture, sized up front
      std::size_t{1} << 20, static_cast<std::size_t>(max_incl) + 16));
  std::size_t pos = 0;
  std::size_t filled = 0;
  bool stream_done = false;

  const auto fill = [&](std::size_t need) -> bool {
    if (filled - pos >= need) return true;
    std::memmove(buf.data(), buf.data() + pos, filled - pos);
    filled -= pos;
    pos = 0;
    while (filled < need && !stream_done) {
      in_->read(reinterpret_cast<char*>(buf.data() + filled),
                static_cast<std::streamsize>(buf.size() - filled));
      const auto got = static_cast<std::size_t>(in_->gcount());
      filled += got;
      if (got == 0) stream_done = true;
    }
    return filled - pos >= need;
  };
  const auto load32 = [&](std::size_t off) -> std::uint32_t {
    std::uint32_t v = 0;
    std::memcpy(&v, buf.data() + pos + off, 4);
    return swap ? bswap32(v) : v;
  };

  for (;;) {
    if (!fill(16)) {
      end_ = filled == pos ? pcap::ReadEnd::kEof : pcap::ReadEnd::kTruncated;
      return;
    }
    const std::uint32_t ts_sec = load32(0);
    const std::uint32_t ts_frac = load32(4);
    const std::uint32_t incl = load32(8);
    const std::uint32_t orig = load32(12);
    if (std::uint64_t{incl} > max_incl) {
      // Garbage framing, not a plausible snap; same guard as the Reader.
      end_ = pcap::ReadEnd::kTruncated;
      return;
    }
    if (!fill(16U + incl)) {
      end_ = pcap::ReadEnd::kTruncated;
      return;
    }
    const std::int64_t ts_ns =
        std::int64_t{ts_sec} * 1'000'000'000 +
        (nanos ? std::int64_t{ts_frac} : std::int64_t{ts_frac} * 1000);
    feed_record(ts_ns, orig, net::ByteSpan{buf.data() + pos + 16, incl});
    pos += 16U + incl;
  }
}

/// pcapng (and any future formats CaptureSource learns): reuse the
/// record-at-a-time reader — correctness over peak rate off the classic
/// format.
void ShardedReplay::produce_pcapng() {
  pcap::Record rec;
  while (pcapng_->next(rec)) {
    feed_record(rec.timestamp.ns(), rec.orig_len,
                net::ByteSpan{rec.data.data(), rec.data.size()});
  }
  end_ = pcapng_->end_state();
}

void ShardedReplay::feed_record(std::int64_t ts_ns, std::uint32_t orig_len,
                                net::ByteSpan data) {
  ++stats_.records;
  net::FlowDigest digest;
  if (!net::extract_flow_digest(data, digest)) {
    ++stats_.decode_failures;
    return;
  }
  stats_.bytes += data.size();
  ++stats_.frames;

  // Epoch rebase + monotonic clamp, in lockstep with ReplayEngine: the
  // first *decoded* frame picks the epoch, and no frame may rewind time.
  if (!first_seen_) {
    first_seen_ = true;
    switch (cfg_.origin) {
      case TimeOrigin::kCaptureZero:
        break;
      case TimeOrigin::kFirstFrame:
        epoch_ns_ = ts_ns;
        break;
      case TimeOrigin::kAuto:
        if (ts_ns > kAbsoluteEpochFloorNs) epoch_ns_ = ts_ns;
        break;
    }
  }
  std::int64_t at = ts_ns - epoch_ns_;
  if (at < last_at_ns_) at = last_at_ns_;
  last_at_ns_ = at;
  digest.at_ns = at;
  digest.wire_bytes = orig_len;

  Shard& sh = *shards_[shard_of(flow_hash(digest), shards_.size())];
  net::FlowDigest* slot = sh.ring.try_claim();
  while (slot == nullptr) {
    // Ring full: block (never drop) until the consumer frees slots. A
    // crashed consumer keeps draining its ring, so this always ends.
    std::this_thread::yield();
    slot = sh.ring.try_claim();
  }
  *slot = digest;
  sh.ring.publish();
}

namespace {

/// Sweeps and clears one direction buffer into its partial counts.
inline void flush_direction(std::vector<std::uint8_t>& flags,
                            classify::FlagSweep& partial) {
  if (flags.empty()) return;
  partial += classify::sweep_flags(
      std::span<const std::uint8_t>{flags.data(), flags.size()});
  flags.clear();
}

inline void append_flag(std::vector<std::uint8_t>& flags,
                        classify::FlagSweep& partial, std::uint8_t flag,
                        std::size_t flush_threshold) {
  flags.push_back(flag);  // syndog-lint: allow(hotpath.allocation) -- bounded by the construction-time reserve (flush_threshold + 1); flushed below before it can grow
  if (flags.size() >= flush_threshold) flush_direction(flags, partial);
}

/// Closes the shard's open period `p` for every stub: sweep the
/// remaining flag bytes and record the mode-selected totals.
void close_shard_period(std::vector<StubShardState>& stubs, std::int64_t p,
                        core::AgentMode mode) {
  for (StubShardState& s : stubs) {
    flush_direction(s.out_flags, s.out_partial);
    flush_direction(s.in_flags, s.in_partial);
    // First mile: outgoing SYNs vs incoming SYN/ACKs. Last mile: the
    // flood arrives inbound and the victim's SYN/ACKs leave outbound
    // (same tap wiring as SynDogAgent's constructor).
    const std::int64_t syn = static_cast<std::int64_t>(
        mode == core::AgentMode::kFirstMile ? s.out_partial.syn
                                            : s.in_partial.syn);
    const std::int64_t synack = static_cast<std::int64_t>(
        mode == core::AgentMode::kFirstMile ? s.in_partial.syn_ack
                                            : s.out_partial.syn_ack);
    if ((syn | synack) != 0) {
      if (s.periods.size() <= static_cast<std::size_t>(p)) {
        s.periods.resize(static_cast<std::size_t>(p) + 1);  // syndog-lint: allow(hotpath.allocation) -- once per non-empty period per stub, off the per-digest path
      }
      s.periods[static_cast<std::size_t>(p)] = {syn, synack};
    }
    s.out_partial = classify::FlagSweep{};
    s.in_partial = classify::FlagSweep{};
  }
}

}  // namespace

void ShardedReplay::consume_shard(Shard& sh) {
  // Shard-local routing table: first matching prefix wins, exactly as
  // AgentDemux::find_stub.
  std::vector<PrefixMatcher> matchers;
  matchers.reserve(stubs_.size());  // syndog-lint: allow(hotpath.allocation) -- built once at worker start, before any digest flows
  for (const StubSpec& spec : stubs_) {
    matchers.push_back(  // syndog-lint: allow(hotpath.allocation) -- built once at worker start, before any digest flows
        PrefixMatcher{spec.prefix.mask(), spec.prefix.base().value()});
  }
  const int stub_count = static_cast<int>(stubs_.size());
  const int default_stub = cfg_.default_stub;
  const std::size_t flush_threshold = cfg_.flush_threshold;

  sh.cur_period = 0;
  sh.next_boundary_ns = t0_ns_;

  for (;;) {
    const std::span<const net::FlowDigest> run = sh.ring.readable();
    if (run.empty()) {
      if (sh.done.load(std::memory_order_acquire) && sh.ring.empty()) break;
      std::this_thread::yield();
      continue;
    }
    for (const net::FlowDigest& d : run) {
      if (d.at_ns >= sh.next_boundary_ns) {
        // A frame exactly on the boundary counts into the next period
        // (the reference scheduler fires the rollover first).
        close_shard_period(sh.stubs, sh.cur_period, cfg_.mode);
        sh.cur_period = d.at_ns / t0_ns_;
        sh.next_boundary_ns = (sh.cur_period + 1) * t0_ns_;
      }
      int src = -1;
      int dst = -1;
      for (int i = 0; i < stub_count; ++i) {
        const PrefixMatcher& m = matchers[static_cast<std::size_t>(i)];
        if (src < 0 && m.contains(d.src)) src = i;
        if (dst < 0 && m.contains(d.dst)) dst = i;
      }
      if (src >= 0 && src == dst) {
        ++sh.local;
        continue;
      }
      bool routed = false;
      if (src >= 0) {
        StubShardState& s = sh.stubs[static_cast<std::size_t>(src)];
        append_flag(s.out_flags, s.out_partial, d.flags, flush_threshold);
        routed = true;
      }
      if (dst >= 0) {
        StubShardState& s = sh.stubs[static_cast<std::size_t>(dst)];
        append_flag(s.in_flags, s.in_partial, d.flags, flush_threshold);
        routed = true;
      }
      if (!routed) {
        if (default_stub >= 0) {
          StubShardState& s =
              sh.stubs[static_cast<std::size_t>(default_stub)];
          append_flag(s.out_flags, s.out_partial, d.flags, flush_threshold);
        } else {
          ++sh.unroutable;
        }
      }
    }
    sh.delivered += run.size();
    sh.ring.release(run.size());
  }
  close_shard_period(sh.stubs, sh.cur_period, cfg_.mode);
}

/// Deterministic merge: per-stub per-period counts sum across shards in
/// stable shard order, then replay through one core::SynDog per stub,
/// reproducing SynDogAgent's healthy-path rollover — including the
/// first-mile SYN/ACK-collapse absorption — byte for byte. The other
/// health paths (gap rescale, outages, quarantine) cannot trigger here:
/// replay timers are exact and there is no fault injection.
void ShardedReplay::merge() {
  const std::int64_t total_periods = last_at_ns_ / t0_ns_ + 1;
  for (std::size_t s = 0; s < stubs_.size(); ++s) {
    core::SynDog dog(cfg_.params);
    std::vector<core::PeriodReport>& hist = histories_[s];
    hist.reserve(static_cast<std::size_t>(total_periods));  // syndog-lint: allow(hotpath.allocation) -- merge runs once, after the workers join
    std::int64_t consecutive_collapsed = 0;
    for (std::int64_t p = 0; p < total_periods; ++p) {
      std::int64_t syn = 0;
      std::int64_t synack = 0;
      for (const std::unique_ptr<Shard>& shard : shards_) {
        const std::vector<std::array<std::int64_t, 2>>& per =
            shard->stubs[s].periods;
        if (static_cast<std::size_t>(p) < per.size()) {
          syn += per[static_cast<std::size_t>(p)][0];
          synack += per[static_cast<std::size_t>(p)][1];
        }
      }
      // SynDogAgent::synack_collapsed, with k read before observing.
      const double k = dog.k();
      const bool collapsed =
          cfg_.mode == core::AgentMode::kFirstMile &&
          k >= cfg_.health.collapse_min_k &&
          syn >= cfg_.health.collapse_min_syn &&
          static_cast<double>(synack) <= cfg_.health.collapse_fraction * k;
      if (collapsed) {
        ++consecutive_collapsed;
        if (consecutive_collapsed <= cfg_.health.outage_patience) {
          dog.note_gap_periods(1);
          continue;
        }
        // Past patience: feed raw counts, keep the streak counting (the
        // agent does not reset it until a non-collapsed period).
      } else {
        consecutive_collapsed = 0;
      }
      hist.push_back(dog.observe_period(syn, synack));  // syndog-lint: allow(hotpath.allocation) -- merge runs once, after the workers join
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    local_ += shard->local;
    unroutable_ += shard->unroutable;
  }
}

void ShardedReplay::publish_observations() {
  if (registry_ == nullptr) return;
  registry_->counter("ingest.sharded.records").add(stats_.records);
  registry_->counter("ingest.sharded.frames").add(stats_.frames);
  registry_->counter("ingest.sharded.bytes").add(stats_.bytes);
  registry_->counter("ingest.sharded.decode_failures")
      .add(stats_.decode_failures);
  registry_->counter("ingest.sharded.truncated_captures")
      .add(stats_.truncated ? 1 : 0);
  registry_->counter("ingest.sharded.local_frames").add(local_);
  registry_->counter("ingest.sharded.unroutable_frames").add(unroutable_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "ingest.shard." + std::to_string(i);
    registry_->counter(prefix + ".delivered").add(shards_[i]->delivered);
    registry_->counter(prefix + ".dropped").add(0);
  }
}

}  // namespace syndog::ingest
