#include "syndog/sim/router.hpp"

#include <stdexcept>
#include <string>

namespace syndog::sim {

namespace {
inline void bump(obs::Counter* counter) {
  if (counter != nullptr) counter->add();
}
}  // namespace

LeafRouter::LeafRouter(net::Ipv4Prefix stub_prefix, net::MacAddress mac)
    : stub_prefix_(stub_prefix), mac_(mac) {}

void LeafRouter::attach_host(net::Ipv4Address ip, Deliver deliver) {
  if (!stub_prefix_.contains(ip)) {
    throw std::invalid_argument("LeafRouter: host " + ip.to_string() +
                                " outside stub prefix " +
                                stub_prefix_.to_string());
  }
  if (!deliver) {
    throw std::invalid_argument("LeafRouter: deliver callback required");
  }
  hosts_[ip.value()] = std::move(deliver);
}

void LeafRouter::set_uplink(Deliver deliver) {
  uplink_ = std::move(deliver);
}

void LeafRouter::add_outbound_tap(Tap tap) {
  outbound_taps_.push_back(std::move(tap));
}

void LeafRouter::add_inbound_tap(Tap tap) {
  inbound_taps_.push_back(std::move(tap));
}

void LeafRouter::forward_from_intranet(util::SimTime now,
                                       const net::Packet& packet) {
  // Local-to-local traffic never crosses the leaf router's interfaces.
  if (stub_prefix_.contains(packet.ip.dst)) {
    if (const auto it = hosts_.find(packet.ip.dst.value());
        it != hosts_.end()) {
      it->second(packet);
    } else {
      ++stats_.dropped_no_route;
      bump(dropped_no_route_counter_);
    }
    return;
  }

  if (taps_enabled_) {
    for (const Tap& tap : outbound_taps_) tap(now, packet);
  } else if (!outbound_taps_.empty()) {
    ++stats_.tap_suppressed;
    bump(tap_suppressed_counter_);
  }

  if (egress_policer_ && egress_policer_(now, packet)) {
    ++stats_.dropped_policer;
    if (dropped_policer_counter_ == nullptr && registry_ != nullptr) {
      dropped_policer_counter_ =
          &registry_->counter(obs_prefix_ + "dropped_policer");
    }
    bump(dropped_policer_counter_);
    return;
  }
  if (ingress_filtering_ && !stub_prefix_.contains(packet.ip.src)) {
    ++stats_.dropped_ingress_filter;
    bump(dropped_ingress_counter_);
    if (on_ingress_violation_) on_ingress_violation_(now, packet);
    return;
  }
  if (uplink_) {
    ++stats_.forwarded_outbound;
    bump(forwarded_outbound_counter_);
    uplink_(packet);
  }
}

void LeafRouter::forward_from_internet(util::SimTime now,
                                       const net::Packet& packet) {
  if (!taps_enabled_) {
    if (!inbound_taps_.empty()) {
      ++stats_.tap_suppressed;
      bump(tap_suppressed_counter_);
    }
  } else if (inbound_tap_bypass_ && inbound_tap_bypass_(now, packet)) {
    // Asymmetric routing: the packet reaches its host via another path,
    // invisible to the monitored interface.
    ++stats_.inbound_tap_bypassed;
    bump(tap_bypassed_counter_);
  } else {
    for (const Tap& tap : inbound_taps_) tap(now, packet);
  }
  const auto it = hosts_.find(packet.ip.dst.value());
  if (it == hosts_.end()) {
    ++stats_.dropped_no_route;
    bump(dropped_no_route_counter_);
    return;
  }
  ++stats_.forwarded_inbound;
  bump(forwarded_inbound_counter_);
  it->second(packet);
}

void LeafRouter::attach_observer(obs::Registry& registry,
                                 std::string_view name) {
  const std::string prefix =
      name.empty() ? "router." : "router." + std::string(name) + ".";
  registry_ = &registry;
  obs_prefix_ = prefix;
  forwarded_outbound_counter_ =
      &registry.counter(prefix + "forwarded_outbound");
  forwarded_inbound_counter_ =
      &registry.counter(prefix + "forwarded_inbound");
  dropped_no_route_counter_ = &registry.counter(prefix + "dropped_no_route");
  dropped_ingress_counter_ =
      &registry.counter(prefix + "dropped_ingress_filter");
  tap_suppressed_counter_ = &registry.counter(prefix + "tap_suppressed");
  tap_bypassed_counter_ =
      &registry.counter(prefix + "inbound_tap_bypassed");
}

}  // namespace syndog::sim
