#include "syndog/sim/network.hpp"

#include <stdexcept>

namespace syndog::sim {

StubNetworkSim::StubNetworkSim(StubNetworkParams params)
    : params_(params),
      workload_rng_(util::Rng::child(params.seed, 0xbac4)),
      flood_rng_(util::Rng::child(params.seed, 0xf100d)) {
  if (params_.num_hosts == 0) {
    throw std::invalid_argument("StubNetworkSim: need at least one host");
  }
  const net::MacAddress router_mac = net::MacAddress::for_host(0xffffff);
  router_ = std::make_unique<LeafRouter>(params_.stub_prefix, router_mac);

  // Internet side: router --uplink--> cloud, cloud --downlink--> router.
  downlink_ = std::make_unique<Link>(
      scheduler_, params_.downlink,
      [this](const net::Packet& pkt) {
        router_->forward_from_internet(scheduler_.now(), pkt);
      },
      util::splitmix64(params_.seed ^ 0xd0));
  params_.cloud.stub_prefix = params_.stub_prefix;
  cloud_ = std::make_unique<InternetCloud>(
      scheduler_, params_.cloud,
      [this](const net::Packet& pkt) { downlink_->send(pkt); },
      util::splitmix64(params_.seed ^ 0xc1));
  uplink_ = std::make_unique<Link>(
      scheduler_, params_.uplink,
      [this](const net::Packet& pkt) { cloud_->receive(pkt); },
      util::splitmix64(params_.seed ^ 0xa2));
  router_->set_uplink([this](const net::Packet& pkt) { uplink_->send(pkt); });

  // Intranet hosts. Host index i gets IP stub_prefix.host(i) and a frame
  // path host -> (LAN delay) -> router; router -> (LAN delay) -> host.
  stub_hosts_.reserve(params_.num_hosts);
  for (std::uint32_t i = 1; i <= params_.num_hosts; ++i) {
    const net::Ipv4Address ip = params_.stub_prefix.host(i);
    auto host = std::make_unique<TcpHost>(
        "stub-" + std::to_string(i), ip, net::MacAddress::for_host(i),
        router_mac, scheduler_,
        [this](const net::Packet& pkt) {
          scheduler_.schedule_after(
              params_.lan_delay, [this, h = scheduler_.packets().acquire(pkt)] {
                router_->forward_from_intranet(scheduler_.now(), *h);
              });
        },
        params_.host_params, util::splitmix64(params_.seed ^ (0x700 + i)));
    TcpHost* raw = host.get();
    router_->attach_host(ip, [this, raw](const net::Packet& pkt) {
      scheduler_.schedule_after(
          params_.lan_delay,
          [raw, h = scheduler_.packets().acquire(pkt)] { raw->receive(*h); });
    });
    stub_hosts_.push_back(std::move(host));
  }
}

void StubNetworkSim::attach_observer(obs::Registry& registry) {
  router_->attach_observer(registry);
  uplink_->attach_observer(registry, "uplink");
  downlink_->attach_observer(registry, "downlink");
}

TcpHost& StubNetworkSim::host(std::uint32_t index) {
  if (index == 0 || index > stub_hosts_.size()) {
    throw std::out_of_range("StubNetworkSim: host index out of range");
  }
  return *stub_hosts_[index - 1];
}

TcpHost& StubNetworkSim::add_internet_host(std::string name,
                                           net::Ipv4Address ip,
                                           TcpHostParams host_params) {
  if (params_.stub_prefix.contains(ip)) {
    throw std::invalid_argument(
        "StubNetworkSim: internet host inside stub prefix");
  }
  auto host = std::make_unique<TcpHost>(
      std::move(name), ip, net::MacAddress::for_host(0xe00000 +
          static_cast<std::uint32_t>(internet_hosts_.size())),
      net::MacAddress::for_host(0xfffffe), scheduler_,
      // An Internet-side host's output re-enters the cloud's routing: it
      // only reaches our stub (and its sniffers) when actually stub-bound.
      [this](const net::Packet& pkt) { cloud_->route(pkt); },
      host_params,
      util::splitmix64(params_.seed ^ (0xe000 + internet_hosts_.size())));
  TcpHost* raw = host.get();
  cloud_->attach_host(ip, raw);
  internet_hosts_.push_back(std::move(host));
  return *raw;
}

void StubNetworkSim::make_servers(std::uint16_t port) {
  for (const auto& host : stub_hosts_) host->listen(port);
}

void StubNetworkSim::schedule_outbound_background(
    const std::vector<util::SimTime>& start_times) {
  for (util::SimTime at : start_times) {
    const auto host_index = static_cast<std::uint32_t>(
        workload_rng_.uniform_int(1, params_.num_hosts));
    // Random generic remote server outside both the stub prefix and the
    // spoof pool.
    const net::Ipv4Address dst{static_cast<std::uint32_t>(
        0x80000000u + workload_rng_.next_u32() % 0x20000000u)};
    scheduler_.schedule_at(at, [this, host_index, dst] {
      host(host_index).connect(dst, 80);
    });
  }
}

void StubNetworkSim::schedule_inbound_background(
    const std::vector<util::SimTime>& start_times,
    std::uint16_t server_port) {
  for (util::SimTime at : start_times) {
    const auto host_index = static_cast<std::uint32_t>(
        workload_rng_.uniform_int(1, params_.num_hosts));
    const net::Ipv4Address client{static_cast<std::uint32_t>(
        0x80000000u + workload_rng_.next_u32() % 0x20000000u)};
    const auto client_port = static_cast<std::uint16_t>(
        workload_rng_.uniform_int(1024, 65535));
    const std::uint32_t seq = workload_rng_.next_u32();
    scheduler_.schedule_at(at, [this, host_index, client, client_port,
                                server_port, seq] {
      net::TcpPacketSpec spec;
      spec.src_mac = net::MacAddress::for_host(0xfffffe);
      spec.dst_mac = net::MacAddress::for_host(host_index);
      spec.src_ip = client;
      spec.dst_ip = params_.stub_prefix.host(host_index);
      spec.src_port = client_port;
      spec.dst_port = server_port;
      spec.seq = seq;
      router_->forward_from_internet(scheduler_.now(), net::make_syn(spec));
    });
  }
}

void StubNetworkSim::launch_flood(std::uint32_t host_index,
                                  const std::vector<util::SimTime>& syn_times,
                                  net::Ipv4Address victim,
                                  std::uint16_t victim_port,
                                  net::Ipv4Prefix spoof_pool) {
  if (host_index == 0 || host_index > stub_hosts_.size()) {
    throw std::out_of_range("launch_flood: host index out of range");
  }
  const net::MacAddress attacker_mac = net::MacAddress::for_host(host_index);
  const net::MacAddress router_mac = router_->mac();
  // A /31 or /32 pool means a fixed spoofed source (e.g. the reflection
  // scenario that frames one specific reachable host).
  const std::int64_t pool_hosts =
      std::max<std::int64_t>(static_cast<std::int64_t>(spoof_pool.size()) -
                                 2,
                             1);
  for (util::SimTime at : syn_times) {
    const net::Ipv4Address spoofed =
        spoof_pool.size() <= 2
            ? spoof_pool.base()
            : spoof_pool.host(static_cast<std::uint32_t>(
                  flood_rng_.uniform_int(1, pool_hosts)));
    const auto sport = static_cast<std::uint16_t>(
        flood_rng_.uniform_int(1024, 65535));
    const std::uint32_t seq = flood_rng_.next_u32();
    scheduler_.schedule_at(at, [this, attacker_mac, router_mac, spoofed,
                                victim, victim_port, sport, seq] {
      net::TcpPacketSpec spec;
      spec.src_mac = attacker_mac;
      spec.dst_mac = router_mac;
      spec.src_ip = spoofed;
      spec.dst_ip = victim;
      spec.src_port = sport;
      spec.dst_port = victim_port;
      spec.seq = seq;
      scheduler_.schedule_after(
          params_.lan_delay,
          [this, h = scheduler_.packets().acquire(net::make_syn(spec))] {
            router_->forward_from_intranet(scheduler_.now(), *h);
          });
    });
  }
}

void StubNetworkSim::set_uplink_sink() {
  router_->set_uplink([](const net::Packet&) {});
}

void StubNetworkSim::replay_at_router(util::SimTime at,
                                      const net::Packet& packet) {
  const bool from_intranet = params_.stub_prefix.contains(packet.ip.src) ||
                             !params_.stub_prefix.contains(packet.ip.dst);
  scheduler_.schedule_at(
      at, [this, from_intranet, h = scheduler_.packets().acquire(packet)] {
        if (from_intranet) {
          router_->forward_from_intranet(scheduler_.now(), *h);
        } else {
          router_->forward_from_internet(scheduler_.now(), *h);
        }
      });
}

}  // namespace syndog::sim
