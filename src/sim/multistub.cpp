#include "syndog/sim/multistub.hpp"

#include <stdexcept>
#include <string>

namespace syndog::sim {

namespace {
net::Ipv4Prefix prefix_for(int stub) {
  return net::Ipv4Prefix(
      net::Ipv4Address(10, static_cast<std::uint8_t>(stub + 1), 0, 0), 16);
}
}  // namespace

MultiStubSim::MultiStubSim(MultiStubParams params)
    : params_(params),
      workload_rng_(util::Rng::child(params.seed, 0x3bac4)),
      flood_rng_(util::Rng::child(params.seed, 0x3f100d)) {
  if (params_.stub_count < 1 || params_.stub_count > 200) {
    throw std::invalid_argument("MultiStubSim: stub_count in [1,200]");
  }
  if (params_.hosts_per_stub == 0) {
    throw std::invalid_argument("MultiStubSim: need at least one host");
  }

  // The cloud is created around stub 0's downlink; the others register
  // as additional routes.
  stubs_.resize(static_cast<std::size_t>(params_.stub_count));
  for (int s = 0; s < params_.stub_count; ++s) {
    Stub& stub = stubs_[static_cast<std::size_t>(s)];
    const net::Ipv4Prefix prefix = prefix_for(s);
    const net::MacAddress router_mac =
        net::MacAddress::for_host(0xf00000 + static_cast<std::uint32_t>(s));
    stub.router = std::make_unique<LeafRouter>(prefix, router_mac);

    LeafRouter* router = stub.router.get();
    stub.downlink = std::make_unique<Link>(
        scheduler_, params_.downlink,
        [this, router](const net::Packet& pkt) {
          router->forward_from_internet(scheduler_.now(), pkt);
        },
        util::splitmix64(params_.seed ^ (0xd000 + s)));

    if (s == 0) {
      CloudParams cloud_params = params_.cloud;
      cloud_params.stub_prefix = prefix;
      cloud_ = std::make_unique<InternetCloud>(
          scheduler_, cloud_params,
          [link = stub.downlink.get()](const net::Packet& pkt) {
            link->send(pkt);
          },
          util::splitmix64(params_.seed ^ 0x3c1));
    } else {
      cloud_->add_stub_route(
          prefix, [link = stub.downlink.get()](const net::Packet& pkt) {
            link->send(pkt);
          });
    }

    stub.uplink = std::make_unique<Link>(
        scheduler_, params_.uplink,
        [this](const net::Packet& pkt) { cloud_->receive(pkt); },
        util::splitmix64(params_.seed ^ (0xa000 + s)));
    router->set_uplink([link = stub.uplink.get()](const net::Packet& pkt) {
      link->send(pkt);
    });

    stub.hosts.reserve(params_.hosts_per_stub);
    for (std::uint32_t i = 1; i <= params_.hosts_per_stub; ++i) {
      const net::Ipv4Address ip = prefix.host(i);
      auto host = std::make_unique<TcpHost>(
          "stub" + std::to_string(s) + "-" + std::to_string(i), ip,
          net::MacAddress::for_host(
              static_cast<std::uint32_t>(s) * 0x10000 + i),
          router_mac, scheduler_,
          [this, router](const net::Packet& pkt) {
            scheduler_.schedule_after(
                params_.lan_delay,
                [this, router, h = scheduler_.packets().acquire(pkt)] {
                  router->forward_from_intranet(scheduler_.now(), *h);
                });
          },
          params_.host_params,
          util::splitmix64(params_.seed ^ (0x70000 + s * 1000 + i)));
      TcpHost* raw = host.get();
      router->attach_host(ip, [this, raw](const net::Packet& pkt) {
        scheduler_.schedule_after(
            params_.lan_delay,
            [raw, h = scheduler_.packets().acquire(pkt)] { raw->receive(*h); });
      });
      stub.hosts.push_back(std::move(host));
    }
  }
}

net::Ipv4Prefix MultiStubSim::stub_prefix(int stub) const {
  if (stub < 0 || stub >= params_.stub_count) {
    throw std::out_of_range("MultiStubSim: stub index");
  }
  return prefix_for(stub);
}

LeafRouter& MultiStubSim::router(int stub) {
  if (stub < 0 || stub >= params_.stub_count) {
    throw std::out_of_range("MultiStubSim: stub index");
  }
  return *stubs_[static_cast<std::size_t>(stub)].router;
}

TcpHost& MultiStubSim::host(int stub, std::uint32_t index) {
  if (stub < 0 || stub >= params_.stub_count) {
    throw std::out_of_range("MultiStubSim: stub index " +
                            std::to_string(stub) + " outside [0, " +
                            std::to_string(params_.stub_count - 1) + "]");
  }
  if (index == 0 || index > params_.hosts_per_stub) {
    throw std::out_of_range(
        "MultiStubSim: host index " + std::to_string(index) +
        " outside [1, " + std::to_string(params_.hosts_per_stub) +
        "] (host indices are 1-based; offset 0 is the prefix base)");
  }
  return *stubs_[static_cast<std::size_t>(stub)].hosts[index - 1];
}

TcpHost& MultiStubSim::add_internet_host(std::string name,
                                         net::Ipv4Address ip,
                                         TcpHostParams host_params) {
  for (int s = 0; s < params_.stub_count; ++s) {
    if (prefix_for(s).contains(ip)) {
      throw std::invalid_argument(
          "MultiStubSim: internet host inside a stub prefix");
    }
  }
  auto host = std::make_unique<TcpHost>(
      std::move(name), ip,
      net::MacAddress::for_host(
          0xe00000 + static_cast<std::uint32_t>(internet_hosts_.size())),
      net::MacAddress::for_host(0xfffffe), scheduler_,
      [this](const net::Packet& pkt) { cloud_->route(pkt); }, host_params,
      util::splitmix64(params_.seed ^ (0xe000 + internet_hosts_.size())));
  TcpHost* raw = host.get();
  cloud_->attach_host(ip, raw);
  internet_hosts_.push_back(std::move(host));
  return *raw;
}

void MultiStubSim::schedule_outbound_background(
    int stub, const std::vector<util::SimTime>& start_times) {
  if (stub < 0 || stub >= params_.stub_count) {
    throw std::out_of_range("MultiStubSim: stub index");
  }
  for (const util::SimTime at : start_times) {
    const auto host_index = static_cast<std::uint32_t>(
        workload_rng_.uniform_int(1, params_.hosts_per_stub));
    const net::Ipv4Address dst{static_cast<std::uint32_t>(
        0x80000000u + workload_rng_.next_u32() % 0x20000000u)};
    scheduler_.schedule_at(at, [this, stub, host_index, dst] {
      host(stub, host_index).connect(dst, 80);
    });
  }
}

void MultiStubSim::launch_flood(int stub, std::uint32_t host_index,
                                const std::vector<util::SimTime>& syn_times,
                                net::Ipv4Address victim,
                                std::uint16_t victim_port,
                                net::Ipv4Prefix spoof_pool) {
  if (stub < 0 || stub >= params_.stub_count || host_index == 0 ||
      host_index > params_.hosts_per_stub) {
    throw std::out_of_range("MultiStubSim: flood indices");
  }
  const net::MacAddress attacker_mac = net::MacAddress::for_host(
      static_cast<std::uint32_t>(stub) * 0x10000 + host_index);
  LeafRouter* router = stubs_[static_cast<std::size_t>(stub)].router.get();
  const std::int64_t pool_hosts = std::max<std::int64_t>(
      static_cast<std::int64_t>(spoof_pool.size()) - 2, 1);
  for (const util::SimTime at : syn_times) {
    const net::Ipv4Address spoofed =
        spoof_pool.size() <= 2
            ? spoof_pool.base()
            : spoof_pool.host(static_cast<std::uint32_t>(
                  flood_rng_.uniform_int(1, pool_hosts)));
    const auto sport = static_cast<std::uint16_t>(
        flood_rng_.uniform_int(1024, 65535));
    const std::uint32_t seq = flood_rng_.next_u32();
    scheduler_.schedule_at(at, [this, router, attacker_mac, spoofed, victim,
                                victim_port, sport, seq] {
      net::TcpPacketSpec spec;
      spec.src_mac = attacker_mac;
      spec.dst_mac = router->mac();
      spec.src_ip = spoofed;
      spec.dst_ip = victim;
      spec.src_port = sport;
      spec.dst_port = victim_port;
      spec.seq = seq;
      scheduler_.schedule_after(
          params_.lan_delay,
          [this, router,
           h = scheduler_.packets().acquire(net::make_syn(spec))] {
            router->forward_from_intranet(scheduler_.now(), *h);
          });
    });
  }
}

}  // namespace syndog::sim
