#include "syndog/sim/link.hpp"

#include <stdexcept>

namespace syndog::sim {

Link::Link(Scheduler& scheduler, LinkParams params, Deliver deliver,
           std::uint64_t seed)
    : scheduler_(scheduler), params_(params), deliver_(std::move(deliver)),
      rng_(seed) {
  if (!deliver_) {
    throw std::invalid_argument("Link: deliver callback required");
  }
  if (params_.loss_probability < 0.0 || params_.loss_probability >= 1.0) {
    throw std::invalid_argument("Link: loss_probability in [0,1)");
  }
  if (params_.bandwidth_bps < 0.0) {
    throw std::invalid_argument("Link: bandwidth must be >= 0");
  }
}

void Link::send(const net::Packet& packet) {
  ++sent_;
  if (params_.queue_limit != 0 && in_flight_ >= params_.queue_limit) {
    ++dropped_queue_full_;
    return;
  }
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    ++lost_;
    return;
  }

  util::SimTime depart = scheduler_.now();
  if (params_.bandwidth_bps > 0.0) {
    // Serialize after the previous packet finishes.
    const double tx_seconds =
        static_cast<double>(packet.frame_bytes()) * 8.0 /
        params_.bandwidth_bps;
    const util::SimTime start = std::max(depart, tx_free_at_);
    tx_free_at_ = start + util::SimTime::from_seconds(tx_seconds);
    depart = tx_free_at_;
  }

  ++in_flight_;
  // Copy the packet into the event; the caller's buffer may not outlive it.
  scheduler_.schedule_at(depart + params_.delay,
                         [this, packet]() {
                           --in_flight_;
                           ++delivered_;
                           deliver_(packet);
                         });
}

}  // namespace syndog::sim
