#include "syndog/sim/link.hpp"

#include <stdexcept>
#include <string>

namespace syndog::sim {

namespace {
inline void bump(obs::Counter* counter) {
  if (counter != nullptr) counter->add();
}
}  // namespace

Link::Link(Scheduler& scheduler, LinkParams params, Deliver deliver,
           std::uint64_t seed)
    : scheduler_(scheduler), params_(params), deliver_(std::move(deliver)),
      rng_(seed) {
  if (!deliver_) {
    throw std::invalid_argument("Link: deliver callback required");
  }
  if (params_.loss_probability < 0.0 || params_.loss_probability >= 1.0) {
    throw std::invalid_argument("Link: loss_probability in [0,1)");
  }
  if (params_.bandwidth_bps < 0.0) {
    throw std::invalid_argument("Link: bandwidth must be >= 0");
  }
}

void Link::schedule_delivery(util::SimTime at, net::Packet packet) {
  ++in_flight_;
  // The in-flight packet rides in the scheduler's pool; the event captures
  // only the pool handle, so steady-state delivery allocates nothing.
  scheduler_.schedule_at(
      at, [this, h = scheduler_.packets().acquire(std::move(packet))]() {
        --in_flight_;
        ++delivered_;
        bump(delivered_counter_);
        deliver_(*h);
      });
}

void Link::send(const net::Packet& packet) {
  ++sent_;
  bump(sent_counter_);

  // Fault layer first: a downed link accepts nothing, injected loss models
  // first-mile lossiness beyond the base model. The perturber draws from
  // its own Rng, so this link's base loss stream is untouched.
  LinkChaos::Verdict verdict;
  if (chaos_ != nullptr) {
    verdict = chaos_->inspect(scheduler_.now(), packet);
    if (verdict.drop == LinkChaos::Drop::kLinkDown) {
      ++dropped_link_down_;
      bump(dropped_link_down_counter_);
      return;
    }
    if (verdict.drop == LinkChaos::Drop::kLoss) {
      ++dropped_chaos_loss_;
      bump(dropped_chaos_loss_counter_);
      return;
    }
  }

  if (params_.queue_limit != 0 && in_flight_ >= params_.queue_limit) {
    ++dropped_queue_full_;
    bump(dropped_queue_full_counter_);
    return;
  }
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    ++lost_;
    bump(lost_counter_);
    return;
  }

  util::SimTime depart = scheduler_.now();
  if (params_.bandwidth_bps > 0.0) {
    // Serialize after the previous packet finishes.
    const double tx_seconds =
        static_cast<double>(packet.frame_bytes()) * 8.0 /
        params_.bandwidth_bps;
    const util::SimTime start = std::max(depart, tx_free_at_);
    tx_free_at_ = start + util::SimTime::from_seconds(tx_seconds);
    depart = tx_free_at_;
  }

  util::SimTime arrival = depart + params_.delay;
  if (verdict.extra_delay > util::SimTime::zero()) {
    ++delayed_;
    bump(delayed_counter_);
    arrival = arrival + verdict.extra_delay;
  }
  schedule_delivery(arrival, packet);
  for (std::uint32_t copy = 1; copy <= verdict.extra_copies; ++copy) {
    ++duplicated_;
    bump(duplicated_counter_);
    schedule_delivery(
        arrival + verdict.copy_spacing * static_cast<std::int64_t>(copy),
        packet);
  }
}

void Link::attach_observer(obs::Registry& registry, std::string_view name) {
  const std::string prefix = "link." + std::string(name) + ".";
  sent_counter_ = &registry.counter(prefix + "sent");
  delivered_counter_ = &registry.counter(prefix + "delivered");
  lost_counter_ = &registry.counter(prefix + "lost");
  dropped_queue_full_counter_ =
      &registry.counter(prefix + "dropped_queue_full");
  dropped_link_down_counter_ =
      &registry.counter(prefix + "dropped_link_down");
  dropped_chaos_loss_counter_ =
      &registry.counter(prefix + "dropped_chaos_loss");
  duplicated_counter_ = &registry.counter(prefix + "duplicated");
  delayed_counter_ = &registry.counter(prefix + "delayed");
}

}  // namespace syndog::sim
