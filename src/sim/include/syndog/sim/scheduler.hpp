// Discrete-event scheduler.
//
// Events live in a slab arena of reusable slots; the run queue is a
// vector-backed 4-ary min-heap of {time, seq, slot} entries. Ties are
// broken by schedule order (a monotonic sequence number) so runs are
// fully deterministic — the exact order the old binary-heap/lazy-cancel
// design produced, preserved bit-for-bit.
//
// EventIds encode {slot index, generation}; cancel() checks the slot's
// current generation and, on a match, destroys the callback in place and
// bumps the generation — O(1), no side table, and cancelling an
// already-run, stale, or unknown id is a structurally harmless no-op
// (the generation no longer matches). The heap entry of a cancelled
// event stays queued and is discarded when popped.
//
// The hot path performs zero heap allocations in steady state: callbacks
// are util::InlineCallback (in-slot storage, compile-time capture-size
// cap) and slots/heap entries are recycled. In-flight packets ride in
// the scheduler-owned PacketPool — callbacks capture a pool Handle, not
// a net::Packet.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/packet_pool.hpp"
#include "syndog/util/inline_callback.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {

using EventId = std::uint64_t;

/// Inline budget for event callbacks. The largest legitimate capture in
/// the tree (flood-spec generators) is ~48 bytes; packets themselves
/// must go through the PacketPool, not the capture.
inline constexpr std::size_t kSchedulerCallbackCapacity = 64;

class Scheduler {
 public:
  using Callback = util::InlineCallback<kSchedulerCallbackCapacity>;

  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Pool for in-flight packet payloads. Owned by the scheduler so that
  /// pool handles captured in pending callbacks can never outlive it.
  [[nodiscard]] PacketPool& packets() { return packets_; }

  /// Schedules `fn` at absolute time `at` (must be >= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(util::SimTime at, Callback fn);
  EventId schedule_after(util::SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event in O(1); cancelling an already-run, stale,
  /// or unknown id is a harmless no-op.
  void cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();
  /// Runs events with time <= end; advances now() to end. Returns the
  /// number of events executed.
  std::size_t run_until(util::SimTime end);
  /// Drains the queue (bounded by `max_events` as a runaway guard).
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attaches telemetry sinks (must outlive the scheduler; pass nullptr to
  /// detach). `registry` gains the "sim.events_executed" /
  /// "sim.events_scheduled" / "sim.events_cancelled" counters and the
  /// "sim.queue_depth" gauge; when `tracer` is set, every
  /// `sample_every`-th executed event also records an obs::QueueDepth
  /// sample at the current sim time.
  void attach_observer(obs::Registry* registry,
                       obs::EventTracer* tracer = nullptr,
                       std::uint64_t sample_every = 1024);

 private:
  /// One arena slot. `gen` tags the slot's current incarnation: bumped on
  /// cancel and on execute, so any EventId minted for a previous
  /// incarnation goes stale. `armed` distinguishes a live callback from a
  /// cancelled-but-still-queued slot.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };

  struct HeapEntry {
    util::SimTime at;
    std::uint64_t seq;   ///< schedule order; the deterministic tie-break
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  void heap_push(HeapEntry entry);
  HeapEntry heap_pop();
  void retire(std::uint32_t slot);

  PacketPool packets_;  // declared first: outlives slots_' pool handles
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap ordered by before()
  util::SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  std::uint64_t sample_every_ = 1024;
  obs::Counter* executed_counter_ = nullptr;
  obs::Counter* scheduled_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace syndog::sim
