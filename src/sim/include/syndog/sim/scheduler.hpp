// Discrete-event scheduler.
//
// Events live in a slab arena of reusable slots; the run queue is an
// indexed, vector-backed 4-ary min-heap of 16-byte {time, seq|slot}
// entries. Ties are broken by schedule order (a monotonic sequence
// number) so runs are fully deterministic — the exact order the old
// binary-heap/lazy-cancel design produced, preserved bit-for-bit.
//
// EventIds encode {slot index, generation}; cancel() checks the slot's
// current generation and, on a match, destroys the callback, bumps the
// generation, and removes the heap entry through the slot's tracked
// heap position — no side table, no stale entries accumulating in the
// queue. Cancelling an already-run, stale, or unknown id is a
// structurally harmless no-op (the generation no longer matches).
//
// The hot path performs zero heap allocations in steady state: callbacks
// are util::InlineCallback (in-slot storage, compile-time capture-size
// cap) and slots/heap entries are recycled. In-flight packets ride in
// the scheduler-owned PacketPool — callbacks capture a pool Handle, not
// a net::Packet.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/packet_pool.hpp"
#include "syndog/util/inline_callback.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {

using EventId = std::uint64_t;

/// Inline budget for event callbacks. The largest legitimate capture in
/// the tree (flood-spec generators) is ~48 bytes; packets themselves
/// must go through the PacketPool, not the capture.
inline constexpr std::size_t kSchedulerCallbackCapacity = 64;

class Scheduler {
 public:
  using Callback = util::InlineCallback<kSchedulerCallbackCapacity>;

  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Pool for in-flight packet payloads. Owned by the scheduler so that
  /// pool handles captured in pending callbacks can never outlive it.
  [[nodiscard]] PacketPool& packets() { return packets_; }

  /// Schedules `fn` at absolute time `at` (must be >= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(util::SimTime at, Callback fn);
  EventId schedule_after(util::SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event, removing its queue entry immediately
  /// (O(log n), no search, no lingering tombstone); cancelling an
  /// already-run, stale, or unknown id is a harmless no-op.
  void cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();
  /// Runs events with time <= end; advances now() to end. Returns the
  /// number of events executed.
  std::size_t run_until(util::SimTime end);
  /// Drains the queue (bounded by `max_events` as a runaway guard).
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attaches telemetry sinks (must outlive the scheduler; pass nullptr to
  /// detach). `registry` gains the "sim.events_executed" /
  /// "sim.events_scheduled" / "sim.events_cancelled" counters and the
  /// "sim.queue_depth" gauge; when `tracer` is set, every
  /// `sample_every`-th executed event also records an obs::QueueDepth
  /// sample at the current sim time.
  void attach_observer(obs::Registry* registry,
                       obs::EventTracer* tracer = nullptr,
                       std::uint64_t sample_every = 1024);

 private:
  /// One arena slot. `gen` tags the slot's current incarnation: bumped on
  /// cancel and on execute, so any EventId minted for a previous
  /// incarnation goes stale. `armed` distinguishes a scheduled slot from
  /// a free one (a forged id can't release a free slot twice).
  /// `heap_pos` is the slot's current index in heap_, maintained by every
  /// sift so cancel() can remove the entry without a search.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    std::uint32_t heap_pos = 0;
    bool armed = false;
  };

  /// 16 bytes so a 4-child group spans one cache line. `key` packs the
  /// monotonic schedule-order stamp (bits 63..24, the deterministic
  /// tie-break) over the slot index (bits 23..0); comparing keys compares
  /// seq first, and seqs are unique. schedule_at() range-checks both
  /// fields (kMaxSlots concurrent events, kMaxSeq lifetime events).
  struct HeapEntry {
    util::SimTime at;
    std::uint64_t key;

    [[nodiscard]] std::uint32_t slot_index() const {
      return static_cast<std::uint32_t>(key & (kMaxSlots - 1));
    }
  };

  static constexpr std::uint64_t kMaxSlots = 1u << 24;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << 40;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  void place(std::size_t pos, const HeapEntry& e);
  std::size_t sift_up(std::size_t hole, const HeapEntry& e);
  std::size_t sift_down(std::size_t hole, const HeapEntry& e);
  void heap_push(HeapEntry entry);
  void heap_remove(std::size_t pos);
  void retire(std::uint32_t slot);

  PacketPool packets_;  // declared first: outlives slots_' pool handles
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap ordered by before()
  util::SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  std::uint64_t sample_every_ = 1024;
  obs::Counter* executed_counter_ = nullptr;
  obs::Counter* scheduled_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace syndog::sim
