// Discrete-event scheduler.
//
// A binary-heap event queue over SimTime. Ties are broken by insertion
// order so runs are fully deterministic. Cancellation is lazy: cancelled
// events stay in the heap but are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {

using EventId = std::uint64_t;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(util::SimTime at, Callback fn);
  EventId schedule_after(util::SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; cancelling an already-run or unknown id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();
  /// Runs events with time <= end; advances now() to end. Returns the
  /// number of events executed.
  std::size_t run_until(util::SimTime end);
  /// Drains the queue (bounded by `max_events` as a runaway guard).
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attaches telemetry sinks (must outlive the scheduler; pass nullptr to
  /// detach). `registry` gains the "sim.events_executed" /
  /// "sim.events_scheduled" / "sim.events_cancelled" counters and the
  /// "sim.queue_depth" gauge; when `tracer` is set, every
  /// `sample_every`-th executed event also records an obs::QueueDepth
  /// sample at the current sim time.
  void attach_observer(obs::Registry* registry,
                       obs::EventTracer* tracer = nullptr,
                       std::uint64_t sample_every = 1024);

 private:
  struct Entry {
    util::SimTime at;
    EventId id;
    // Heap entries need value semantics; the callback lives in a separate
    // map? No: store callback here, shared nothing.
    std::shared_ptr<Callback> fn;

    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return id > rhs.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  util::SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::EventTracer* tracer_ = nullptr;
  std::uint64_t sample_every_ = 1024;
  obs::Counter* executed_counter_ = nullptr;
  obs::Counter* scheduled_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace syndog::sim
