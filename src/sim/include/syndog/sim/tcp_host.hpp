// Endpoint TCP mini-stack.
//
// Implements exactly the slice of TCP that SYN flooding exploits and
// SYN-dog observes: the three-way handshake with a finite backlog of
// half-open connections (RFC 793 SYN_RCVD state), client SYN
// retransmission with exponential backoff, the ~75 s half-open lifetime
// the paper cites, and RST semantics — including the rule that a host
// receiving an unexpected SYN/ACK answers with RST, which is why attackers
// must spoof *unreachable* sources.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/callbacks.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::sim {

struct TcpHostParams {
  /// Listen-queue capacity for half-open connections (per host, shared
  /// across ports — the resource SYN floods exhaust).
  std::size_t backlog = 128;
  /// Client SYN retransmissions (paper: two, then give up).
  int max_syn_retransmissions = 2;
  util::SimTime initial_rto = util::SimTime::seconds(3);
  /// Half-open lifetime at the server before the slot is reclaimed
  /// (paper: "not closed until the failure of two retransmissions, which
  /// typically lasts for 75 seconds").
  util::SimTime half_open_timeout = util::SimTime::seconds(75);
  /// SYN/ACK retransmissions the server sends while a connection sits
  /// half-open (the two retransmissions above). 0 disables.
  int syn_ack_retransmissions = 2;
  /// When nonzero, the client side closes each connection this long
  /// after it establishes (generates the Fig. 1 teardown traffic in live
  /// simulations). Zero = connections persist.
  util::SimTime auto_close_after = util::SimTime::zero();
  /// Stateless SYN-cookie fallback (the victim-side countermeasure the
  /// paper's §4.2.3 response would trigger). When enabled, the server
  /// answers SYNs with a keyed cookie ISN — no backlog slot — once the
  /// half-open queue crosses `cookie_high_water` (fraction of backlog),
  /// and reverts to stateful handshakes below `cookie_low_water`. The
  /// hysteresis band keeps a bursty-but-benign queue from flapping the
  /// mode every packet.
  bool syn_cookies = false;
  double cookie_high_water = 0.75;
  double cookie_low_water = 0.25;
};

struct TcpHostStats {
  std::uint64_t syns_sent = 0;
  std::uint64_t syns_received = 0;
  std::uint64_t syn_acks_sent = 0;
  std::uint64_t syn_acks_received = 0;
  std::uint64_t established_as_client = 0;
  std::uint64_t established_as_server = 0;
  std::uint64_t backlog_drops = 0;       ///< SYNs dropped: backlog full
  std::uint64_t half_open_timeouts = 0;  ///< slots reclaimed by timer
  std::uint64_t rsts_sent = 0;
  std::uint64_t rsts_received = 0;
  std::uint64_t connect_failures = 0;    ///< client gave up after retx
  std::uint64_t fins_sent = 0;
  std::uint64_t fins_received = 0;
  std::uint64_t closed_gracefully = 0;   ///< full FIN/ACK exchanges
  std::uint64_t syn_cookies_sent = 0;    ///< stateless SYN/ACKs (cookie ISN)
  std::uint64_t syn_cookies_validated = 0;  ///< handshake ACKs that decoded
  std::uint64_t syn_cookies_rejected = 0;   ///< stray/forged handshake ACKs
  std::uint64_t cookie_engagements = 0;  ///< times cookie mode switched on
};

/// A simulated end host with client and server roles.
class TcpHost {
 public:
  /// `send` hands a fully formed frame to the attached network (LAN side
  /// of the leaf router). `gateway_mac` is the router's MAC, used as the
  /// L2 destination of every frame the host emits.
  TcpHost(std::string name, net::Ipv4Address ip, net::MacAddress mac,
          net::MacAddress gateway_mac, Scheduler& scheduler,
          PacketSink send, TcpHostParams params, std::uint64_t seed);

  TcpHost(const TcpHost&) = delete;
  TcpHost& operator=(const TcpHost&) = delete;

  /// Starts accepting connections on `port`.
  void listen(std::uint16_t port);
  /// Initiates an active open; the source port is chosen automatically.
  void connect(net::Ipv4Address dst_ip, std::uint16_t dst_port);
  /// Active close of an established connection (paper Fig. 1's teardown
  /// half): sends FIN|ACK; the peer's FIN in response is ACKed and the
  /// connection forgotten. No-op for unknown connections.
  void close(net::Ipv4Address peer_ip, std::uint16_t peer_port,
             std::uint16_t local_port);
  /// Delivers a frame from the network to this host.
  void receive(const net::Packet& packet);

  /// Currently established connections this host knows about.
  [[nodiscard]] std::size_t established_count() const {
    return established_.size();
  }

  [[nodiscard]] const TcpHostStats& stats() const { return stats_; }
  [[nodiscard]] net::Ipv4Address ip() const { return ip_; }
  [[nodiscard]] net::MacAddress mac() const { return mac_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Current number of half-open (SYN_RCVD) connections.
  [[nodiscard]] std::size_t half_open_count() const {
    return half_open_.size();
  }
  [[nodiscard]] bool backlog_full() const {
    return half_open_.size() >= params_.backlog;
  }
  /// True while the server answers SYNs statelessly (cookie ISNs).
  [[nodiscard]] bool cookie_mode_active() const { return cookie_active_; }

  /// Mirrors drop/cookie stats into "host.<name>.*" counters in
  /// `registry` (which must outlive the host). Counters are created
  /// lazily on first occurrence so unaffected runs keep byte-identical
  /// metric exports.
  void attach_observer(obs::Registry& registry);

 private:
  struct PeerKey {
    std::uint64_t v;
    bool operator==(const PeerKey&) const = default;
  };
  struct PeerKeyHash {
    std::size_t operator()(const PeerKey& k) const {
      return std::hash<std::uint64_t>{}(k.v);
    }
  };
  static PeerKey key_of(net::Ipv4Address peer_ip, std::uint16_t peer_port,
                        std::uint16_t local_port);

  struct HalfOpen {
    std::uint32_t our_isn = 0;
    net::Ipv4Address peer_ip;
    std::uint16_t peer_port = 0;
    std::uint16_t local_port = 0;
    int retransmissions = 0;
    EventId timeout_event = 0;
    EventId retx_event = 0;
  };
  struct Connecting {
    std::uint32_t our_isn = 0;
    net::Ipv4Address dst_ip;
    std::uint16_t dst_port = 0;
    std::uint16_t src_port = 0;
    int retransmissions = 0;
    util::SimTime rto;
    EventId retx_event = 0;
  };

  struct Established {
    net::Ipv4Address peer_ip;
    std::uint16_t peer_port = 0;
    std::uint16_t local_port = 0;
    bool fin_sent = false;      ///< we sent our FIN
    bool fin_received = false;  ///< the peer's FIN arrived
  };

  void send_tcp(net::Ipv4Address dst_ip, std::uint16_t src_port,
                std::uint16_t dst_port, net::TcpFlags flags,
                std::uint32_t seq, std::uint32_t ack);
  void send_rst_for(const net::Packet& packet);
  void on_syn(const net::Packet& packet);
  void on_syn_ack(const net::Packet& packet);
  void on_ack(const net::Packet& packet);
  void on_rst(const net::Packet& packet);
  void on_fin(const net::Packet& packet);
  void retransmit_syn(PeerKey key);
  void retransmit_syn_ack(PeerKey key);
  void update_cookie_mode();
  void maybe_accept_cookie(const net::Packet& packet, PeerKey key);
  void count(obs::Counter*& slot, const char* name);

  std::string name_;
  net::Ipv4Address ip_;
  net::MacAddress mac_;
  net::MacAddress gateway_mac_;
  Scheduler& scheduler_;
  PacketSink send_;
  TcpHostParams params_;
  util::Rng rng_;
  TcpHostStats stats_;

  std::unordered_map<std::uint16_t, bool> listening_;
  std::unordered_map<PeerKey, HalfOpen, PeerKeyHash> half_open_;
  std::unordered_map<PeerKey, Connecting, PeerKeyHash> connecting_;
  std::unordered_map<PeerKey, Established, PeerKeyHash> established_;
  std::uint16_t next_ephemeral_ = 32768;

  // SYN-cookie state. The secret is derived from the seed without
  // consuming the rng_ stream, so enabling cookies never shifts the ISN
  // draw order of the stateful path.
  std::uint64_t cookie_secret_ = 0;
  bool cookie_active_ = false;

  // Telemetry (optional; see attach_observer). All lazily created.
  obs::Registry* registry_ = nullptr;
  obs::Counter* backlog_dropped_counter_ = nullptr;
  obs::Counter* cookies_sent_counter_ = nullptr;
  obs::Counter* cookies_validated_counter_ = nullptr;
  obs::Counter* cookies_rejected_counter_ = nullptr;
};

}  // namespace syndog::sim
