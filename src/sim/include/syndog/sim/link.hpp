// Point-to-point link model.
//
// Unidirectional channel with propagation delay, optional serialization
// (bandwidth) delay, random loss, and a bounded transmit queue. Losses on
// the SYN forwarding path are one of the paper's two sources of
// SYN–SYN/ACK discrepancy; the loss knob reproduces it in the DES.
//
// A LinkChaos perturber (src/fault) can additionally be attached to model
// degraded-network conditions: link flaps, burst loss, duplication, and
// bounded delay jitter/reordering. The perturber owns its own Rng, so the
// link's base loss stream — and therefore every unfaulted run — is
// byte-identical whether or not the fault layer is linked in.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <cstdint>
#include <string_view>

#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/callbacks.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::sim {

struct LinkParams {
  util::SimTime delay = util::SimTime::milliseconds(10);
  /// Bits per second; 0 disables serialization delay.
  double bandwidth_bps = 0.0;
  double loss_probability = 0.0;
  /// Max packets in flight/queued before tail drop; 0 = unbounded.
  std::size_t queue_limit = 0;
};

/// Fault-injection seam. When attached via Link::set_chaos, every send()
/// is inspected before the base loss/queue model runs; the verdict can
/// drop the packet (link down / burst loss), duplicate it, or perturb its
/// delivery time (jitter, which with a large enough bound reorders).
class LinkChaos {
 public:
  enum class Drop : std::uint8_t {
    kNone,      ///< deliver normally
    kLinkDown,  ///< the link is flapped down; counted separately
    kLoss,      ///< injected (burst) loss on top of the base model
  };

  struct Verdict {
    Drop drop = Drop::kNone;
    /// Additional copies to deliver (packet duplication).
    std::uint32_t extra_copies = 0;
    /// Extra delivery delay for the packet and its copies (jitter; a bound
    /// larger than the inter-packet spacing produces bounded reordering).
    util::SimTime extra_delay = util::SimTime::zero();
    /// Spacing between successive duplicate copies.
    util::SimTime copy_spacing = util::SimTime::microseconds(50);
  };

  virtual ~LinkChaos() = default;
  virtual Verdict inspect(util::SimTime now, const net::Packet& packet) = 0;
};

class Link {
 public:
  using Deliver = PacketSink;

  Link(Scheduler& scheduler, LinkParams params, Deliver deliver,
       std::uint64_t seed);

  /// Queues a packet for transmission; may drop (loss or full queue).
  void send(const net::Packet& packet);

  /// Attaches (nullptr: detaches) the fault-injection perturber, which
  /// must outlive the link. Without one the send path is unchanged.
  void set_chaos(LinkChaos* chaos) { chaos_ = chaos; }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  [[nodiscard]] std::uint64_t dropped_queue_full() const {
    return dropped_queue_full_;
  }
  /// Drops while a fault held the link down (flap).
  [[nodiscard]] std::uint64_t dropped_link_down() const {
    return dropped_link_down_;
  }
  /// Drops from injected burst loss (on top of the base loss model).
  [[nodiscard]] std::uint64_t dropped_chaos_loss() const {
    return dropped_chaos_loss_;
  }
  /// Extra copies delivered by duplication faults.
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  /// Packets whose delivery time was perturbed by jitter/reorder faults.
  [[nodiscard]] std::uint64_t delayed() const { return delayed_; }

  /// Mirrors the counters above into "link.<name>.*" in `registry`
  /// (which must outlive the link), e.g. "link.downlink.duplicated".
  void attach_observer(obs::Registry& registry, std::string_view name);

 private:
  void schedule_delivery(util::SimTime at, net::Packet packet);

  Scheduler& scheduler_;
  LinkParams params_;
  Deliver deliver_;
  util::Rng rng_;
  LinkChaos* chaos_ = nullptr;
  /// Time the transmitter becomes free (serialization model).
  util::SimTime tx_free_at_;
  std::size_t in_flight_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  std::uint64_t dropped_link_down_ = 0;
  std::uint64_t dropped_chaos_loss_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;

  // Telemetry (optional; see attach_observer).
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* lost_counter_ = nullptr;
  obs::Counter* dropped_queue_full_counter_ = nullptr;
  obs::Counter* dropped_link_down_counter_ = nullptr;
  obs::Counter* dropped_chaos_loss_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
  obs::Counter* delayed_counter_ = nullptr;
};

}  // namespace syndog::sim
