// Point-to-point link model.
//
// Unidirectional channel with propagation delay, optional serialization
// (bandwidth) delay, random loss, and a bounded transmit queue. Losses on
// the SYN forwarding path are one of the paper's two sources of
// SYN–SYN/ACK discrepancy; the loss knob reproduces it in the DES.
#pragma once

#include <cstdint>
#include <functional>

#include "syndog/net/packet.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::sim {

struct LinkParams {
  util::SimTime delay = util::SimTime::milliseconds(10);
  /// Bits per second; 0 disables serialization delay.
  double bandwidth_bps = 0.0;
  double loss_probability = 0.0;
  /// Max packets in flight/queued before tail drop; 0 = unbounded.
  std::size_t queue_limit = 0;
};

class Link {
 public:
  using Deliver = std::function<void(const net::Packet&)>;

  Link(Scheduler& scheduler, LinkParams params, Deliver deliver,
       std::uint64_t seed);

  /// Queues a packet for transmission; may drop (loss or full queue).
  void send(const net::Packet& packet);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  [[nodiscard]] std::uint64_t dropped_queue_full() const {
    return dropped_queue_full_;
  }

 private:
  Scheduler& scheduler_;
  LinkParams params_;
  Deliver deliver_;
  util::Rng rng_;
  /// Time the transmitter becomes free (serialization model).
  util::SimTime tx_free_at_;
  std::size_t in_flight_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
};

}  // namespace syndog::sim
