// Assembled stub-network simulation (the testbed of paper Fig. 6).
//
// Wires together: N intranet hosts on a LAN, the leaf router with its
// interface taps, lossy up/down links, and the Internet cloud (with
// optional real remote hosts such as a victim server). Provides workload
// drivers for background connections in both directions, flood agents on
// compromised stub hosts, and replay of pre-rendered packet traces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/cloud.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/sim/tcp_host.hpp"

namespace syndog::sim {

struct StubNetworkParams {
  net::Ipv4Prefix stub_prefix = *net::Ipv4Prefix::parse("10.1.0.0/16");
  std::uint32_t num_hosts = 50;
  util::SimTime lan_delay = util::SimTime::microseconds(100);
  LinkParams uplink;    ///< router -> Internet
  LinkParams downlink;  ///< Internet -> router
  CloudParams cloud;
  TcpHostParams host_params;
  std::uint64_t seed = 1;
};

class StubNetworkSim {
 public:
  explicit StubNetworkSim(StubNetworkParams params);

  StubNetworkSim(const StubNetworkSim&) = delete;
  StubNetworkSim& operator=(const StubNetworkSim&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] LeafRouter& router() { return *router_; }
  [[nodiscard]] InternetCloud& cloud() { return *cloud_; }
  /// The router->Internet / Internet->router links (fault-injection and
  /// telemetry attachment points).
  [[nodiscard]] Link& uplink() { return *uplink_; }
  [[nodiscard]] Link& downlink() { return *downlink_; }
  [[nodiscard]] const StubNetworkParams& params() const { return params_; }

  /// Wires the router ("router.*") and both links ("link.uplink.*" /
  /// "link.downlink.*") into `registry` (which must outlive the sim).
  void attach_observer(obs::Registry& registry);

  /// Intranet host by index in [1, num_hosts]. Index i has address
  /// stub_prefix.host(i) and MAC MacAddress::for_host(i).
  [[nodiscard]] TcpHost& host(std::uint32_t index);
  [[nodiscard]] std::uint32_t host_count() const {
    return params_.num_hosts;
  }

  /// Creates a real host on the Internet side (e.g. the victim server).
  TcpHost& add_internet_host(std::string name, net::Ipv4Address ip,
                             TcpHostParams host_params);

  /// Background workload: at each start time, a random stub host opens a
  /// connection to a random generic remote server (port 80).
  void schedule_outbound_background(
      const std::vector<util::SimTime>& start_times);
  /// Mirror direction: generic remote clients connect to random listening
  /// stub hosts. `server_port` must have been opened via make_servers().
  void schedule_inbound_background(
      const std::vector<util::SimTime>& start_times,
      std::uint16_t server_port = 80);
  /// Puts every stub host in LISTEN on `port`.
  void make_servers(std::uint16_t port = 80);

  /// Flood agent: stub host `host_index` emits raw spoofed-source SYNs at
  /// the given times toward victim:port. Sources are drawn from
  /// `spoof_pool` (unreachable space), bypassing the host's TCP stack the
  /// way a raw-socket attack daemon does.
  void launch_flood(std::uint32_t host_index,
                    const std::vector<util::SimTime>& syn_times,
                    net::Ipv4Address victim, std::uint16_t victim_port,
                    net::Ipv4Prefix spoof_pool);

  /// Replays pre-rendered frames at the router interfaces: packets whose
  /// source lies inside the stub prefix enter from the intranet, all
  /// others from the Internet. (Trace-driven mode: the endpoints are in
  /// the trace, not simulated.)
  void replay_at_router(util::SimTime at, const net::Packet& packet);

  /// Trace-driven mode: replace the uplink with a sink so the cloud does
  /// not synthesize replies to replayed packets (the trace already
  /// contains the reverse direction). Taps still see every packet.
  void set_uplink_sink();

  void run_until(util::SimTime end) { scheduler_.run_until(end); }

 private:
  void deliver_to_host_lan(const net::Packet& packet);

  StubNetworkParams params_;
  Scheduler scheduler_;
  std::unique_ptr<LeafRouter> router_;
  std::unique_ptr<Link> uplink_;
  std::unique_ptr<Link> downlink_;
  std::unique_ptr<InternetCloud> cloud_;
  std::vector<std::unique_ptr<TcpHost>> stub_hosts_;
  std::vector<std::unique_ptr<TcpHost>> internet_hosts_;
  util::Rng workload_rng_;
  util::Rng flood_rng_;
};

}  // namespace syndog::sim
