// Multi-stub Internet simulation.
//
// Several stub networks — each with its own leaf router, LAN, and lossy
// up/down links — share one Internet cloud and (typically) one victim.
// This is the paper's full distributed-DDoS setting in one event loop:
// a campaign places a slave in every stub, and every stub's first-mile
// SYN-dog independently sees its share f_i = V / A_s of the aggregate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "syndog/sim/cloud.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/sim/tcp_host.hpp"

namespace syndog::sim {

struct MultiStubParams {
  int stub_count = 3;
  std::uint32_t hosts_per_stub = 25;
  util::SimTime lan_delay = util::SimTime::microseconds(100);
  LinkParams uplink;
  LinkParams downlink;
  CloudParams cloud;
  TcpHostParams host_params;
  std::uint64_t seed = 1;
};

class MultiStubSim {
 public:
  explicit MultiStubSim(MultiStubParams params);

  MultiStubSim(const MultiStubSim&) = delete;
  MultiStubSim& operator=(const MultiStubSim&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] InternetCloud& cloud() { return *cloud_; }
  [[nodiscard]] int stub_count() const { return params_.stub_count; }

  /// Stub `s` occupies 10.(s+1).0.0/16.
  [[nodiscard]] net::Ipv4Prefix stub_prefix(int stub) const;
  [[nodiscard]] LeafRouter& router(int stub);
  /// Host `index` of stub `stub`. Indices are **1-based**: valid range
  /// [1, hosts_per_stub], because offset 0 of the stub prefix is the
  /// (unaddressable) base address. Throws std::out_of_range naming the
  /// violated range on either a bad stub or a bad host index — index 0
  /// is always rejected, it never aliases host 1.
  [[nodiscard]] TcpHost& host(int stub, std::uint32_t index);

  /// Attaches a shared Internet-side host (e.g. the campaign's victim).
  TcpHost& add_internet_host(std::string name, net::Ipv4Address ip,
                             TcpHostParams host_params);

  /// Background connections from random hosts of `stub` to generic
  /// remote servers.
  void schedule_outbound_background(
      int stub, const std::vector<util::SimTime>& start_times);

  /// Spoofed-source flood from one compromised host of `stub`.
  void launch_flood(int stub, std::uint32_t host_index,
                    const std::vector<util::SimTime>& syn_times,
                    net::Ipv4Address victim, std::uint16_t victim_port,
                    net::Ipv4Prefix spoof_pool);

  void run_until(util::SimTime end) { scheduler_.run_until(end); }

 private:
  struct Stub {
    std::unique_ptr<LeafRouter> router;
    std::unique_ptr<Link> uplink;
    std::unique_ptr<Link> downlink;
    std::vector<std::unique_ptr<TcpHost>> hosts;
  };

  MultiStubParams params_;
  Scheduler scheduler_;
  std::unique_ptr<InternetCloud> cloud_;
  std::vector<Stub> stubs_;
  std::vector<std::unique_ptr<TcpHost>> internet_hosts_;
  util::Rng workload_rng_;
  util::Rng flood_rng_;
};

}  // namespace syndog::sim
