// Aggregate model of "the rest of the Internet".
//
// Everything beyond the leaf router's uplink is collapsed into one node:
// generic server space that answers SYNs with SYN/ACKs (with a
// configurable no-answer probability standing in for remote overload and
// far-side congestion), explicitly attached real hosts (e.g. a victim
// server under study), and an unreachable pool — the spoofed-source
// address space whose packets vanish, so no RST ever comes back.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "syndog/net/packet.hpp"
#include "syndog/sim/callbacks.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/sim/tcp_host.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::sim {

struct CloudParams {
  /// Probability a generic remote server fails to answer a SYN.
  double no_answer_probability = 0.05;
  /// Median/dispersion of the lognormal wide-area RTT contributed by the
  /// far side (the uplink adds its own delay). rtt_sigma == 0 selects a
  /// deterministic RTT of exactly rtt_median_s with no rng draw — the
  /// seam the campaign oracle-equivalence tests rely on (lognormal with
  /// zero sigma is undefined, and skipping the draw keeps the rng stream
  /// comparable across engines).
  double rtt_median_s = 0.080;
  double rtt_sigma = 0.35;
  /// Source addresses in this prefix are unreachable (spoof pool).
  net::Ipv4Prefix unreachable_pool = *net::Ipv4Prefix::parse("240.0.0.0/8");
  /// The stub network behind our downlink. Internet routing only carries
  /// packets *destined into the stub* through that link; replies to
  /// anywhere else (in particular to spoofed flood sources) never reach
  /// the leaf router — which is exactly why the inbound sniffer sees no
  /// SYN/ACKs during a spoofed flood.
  net::Ipv4Prefix stub_prefix = *net::Ipv4Prefix::parse("10.1.0.0/16");
};

struct CloudStats {
  std::uint64_t syns_seen = 0;
  std::uint64_t syn_acks_generated = 0;
  std::uint64_t dropped_unreachable = 0;  ///< packets to the spoof pool
  std::uint64_t unanswered = 0;
  std::uint64_t delivered_to_hosts = 0;
  std::uint64_t absorbed_elsewhere = 0;   ///< routed off our measurement path
};

class InternetCloud {
 public:
  /// `downlink` carries reply packets back toward the leaf router.
  InternetCloud(Scheduler& scheduler, CloudParams params,
                PacketSink downlink, std::uint64_t seed);

  /// Attaches a real simulated host (e.g. the victim) at its address;
  /// packets to it are delivered instead of synthesized.
  void attach_host(net::Ipv4Address ip, TcpHost* host);

  /// Adds a further stub network behind its own downlink (multi-stub
  /// topologies: one cloud, many leaf routers). The constructor's
  /// downlink serves params.stub_prefix; routes are checked in order.
  void add_stub_route(net::Ipv4Prefix prefix, PacketSink downlink);

  /// Handles a packet arriving from the stub network's uplink.
  void receive(const net::Packet& packet);

  /// Routes a packet that originates *inside* the cloud (a synthesized
  /// reply or an attached host's output): to an attached host, down our
  /// link when stub-bound, into the void when unreachable, or absorbed by
  /// the rest of the Internet otherwise.
  void route(const net::Packet& packet);

  [[nodiscard]] const CloudStats& stats() const { return stats_; }

 private:
  void synthesize_syn_ack(const net::Packet& syn);

  Scheduler& scheduler_;
  CloudParams params_;
  util::Rng rng_;
  std::unordered_map<std::uint32_t, TcpHost*> hosts_;
  std::vector<std::pair<net::Ipv4Prefix, PacketSink>> stub_routes_;
  CloudStats stats_;
};

}  // namespace syndog::sim
