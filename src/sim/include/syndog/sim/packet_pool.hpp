// Freelist pool of net::Packet slots for in-flight events.
//
// A packet "in flight" in the simulator — inside a link's propagation
// delay, a cloud RTT, or a host's retransmission timer — used to live as
// a by-value lambda capture (a 96-byte copy per event, and with
// std::function, a heap allocation to hold it). The pool replaces that
// with a recycled slot: schedule sites acquire() a slot, move only the
// small RAII Handle into the event callback, and the slot returns to the
// freelist when the handle dies. In steady state no event allocates.
//
// Slots live in a std::deque so acquired packets have stable addresses
// (the deque never relocates elements on growth); the freelist is a LIFO
// so recently-used slots — still warm in cache — are reused first.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "syndog/net/packet.hpp"

namespace syndog::sim {

class PacketPool {
 public:
  /// Move-only owner of one pooled packet slot; releases it on destroy.
  class Handle {
   public:
    Handle() noexcept = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    Handle(Handle&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          index_(other.index_) {}
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        index_ = other.index_;
      }
      return *this;
    }
    ~Handle() { release(); }

    [[nodiscard]] explicit operator bool() const noexcept {
      return pool_ != nullptr;
    }
    [[nodiscard]] net::Packet& operator*() const noexcept {
      return pool_->slots_[index_];
    }
    [[nodiscard]] net::Packet* operator->() const noexcept {
      return &pool_->slots_[index_];
    }

   private:
    friend class PacketPool;
    Handle(PacketPool* pool, std::uint32_t index) noexcept
        : pool_(pool), index_(index) {}
    void release() noexcept {
      if (pool_ != nullptr) {
        // syndog-lint: allow-next-line(hotpath.allocation) -- freelist never outgrows slots_; capacity is reached during warmup, after which push_back never reallocates
        pool_->free_.push_back(index_);
        --pool_->in_use_;
        pool_ = nullptr;
      }
    }

    PacketPool* pool_ = nullptr;
    std::uint32_t index_ = 0;
  };

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  [[nodiscard]] Handle acquire(const net::Packet& packet) {
    return emplace(packet);
  }
  [[nodiscard]] Handle acquire(net::Packet&& packet) {
    return emplace(std::move(packet));
  }

  /// Slots currently held by live handles.
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  /// Total slots ever created (high-water mark of concurrent in-flight).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

 private:
  template <typename P>
  Handle emplace(P&& packet) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
      slots_[index] = std::forward<P>(packet);
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::forward<P>(packet));  // syndog-lint: allow(hotpath.allocation) -- pool-growth path, hit only until the high-water mark; steady state takes the freelist branch
    }
    ++in_use_;
    return Handle(this, index);
  }

  std::deque<net::Packet> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t in_use_ = 0;
};

}  // namespace syndog::sim
