// Leaf router connecting a stub network to the Internet.
//
// The router forwards by destination prefix and exposes *interface taps* —
// callbacks invoked for every packet crossing the outbound or inbound
// interface. SYN-dog's two sniffers attach to these taps (paper Fig. 2).
// An optional RFC 2267 ingress filter can drop outgoing packets whose
// source address is not inside the stub prefix, the countermeasure §4.2.3
// says an alarm should trigger.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/callbacks.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {

struct RouterStats {
  std::uint64_t forwarded_outbound = 0;
  std::uint64_t forwarded_inbound = 0;
  std::uint64_t dropped_no_route = 0;       ///< inbound dst not in host table
  std::uint64_t dropped_ingress_filter = 0; ///< outbound spoofed-src drops
  std::uint64_t dropped_policer = 0;        ///< outbound egress-policer drops
  std::uint64_t tap_suppressed = 0;         ///< packets unseen: taps disabled
  std::uint64_t inbound_tap_bypassed = 0;   ///< diverted around inbound tap
};

class LeafRouter {
 public:
  using Tap = PacketTap;
  using Deliver = PacketSink;
  /// Called (once per drop) with the offending packet when the ingress
  /// filter fires; gives the source locator its spoofed-source evidence.
  using IngressViolation = PacketTap;

  LeafRouter(net::Ipv4Prefix stub_prefix, net::MacAddress mac);

  [[nodiscard]] net::MacAddress mac() const { return mac_; }
  [[nodiscard]] const net::Ipv4Prefix& stub_prefix() const {
    return stub_prefix_;
  }

  /// Registers an intranet host for inbound delivery.
  void attach_host(net::Ipv4Address ip, Deliver deliver);
  /// Sets the uplink toward the Internet.
  void set_uplink(Deliver deliver);

  /// Taps fire before forwarding (and before the ingress filter, so the
  /// sniffer sees exactly what the wire carries into the router).
  void add_outbound_tap(Tap tap);
  void add_inbound_tap(Tap tap);

  /// Sniffer/tap outage (fault layer): while disabled, forwarding
  /// continues but no tap fires — the monitoring span port is dead, so
  /// counters gap. Suppressed packets are counted in stats().
  void set_taps_enabled(bool enabled) { taps_enabled_ = enabled; }
  [[nodiscard]] bool taps_enabled() const { return taps_enabled_; }

  /// Asymmetric-routing fault: packets for which `bypass` returns true are
  /// forwarded without firing the inbound taps, as if they returned via a
  /// different leaf router and rejoined the LAN behind the monitored
  /// interface. nullptr disables.
  using TapBypass = PacketFilter;
  void set_inbound_tap_bypass(TapBypass bypass) {
    inbound_tap_bypass_ = std::move(bypass);
  }

  /// Alarm-driven response seam (mitigate::MitigationController):
  /// consulted for every outbound packet after the taps fire (the
  /// sniffers keep seeing the wire) and before the ingress filter;
  /// return true to drop. nullptr disables.
  using EgressPolicer = PacketFilter;
  void set_egress_policer(EgressPolicer policer) {
    egress_policer_ = std::move(policer);
  }

  void set_ingress_filtering(bool enabled) { ingress_filtering_ = enabled; }
  [[nodiscard]] bool ingress_filtering() const { return ingress_filtering_; }
  void set_ingress_violation_handler(IngressViolation handler) {
    on_ingress_violation_ = std::move(handler);
  }

  /// Entry points: a frame arriving from the intranet LAN / the uplink.
  void forward_from_intranet(util::SimTime now, const net::Packet& packet);
  void forward_from_internet(util::SimTime now, const net::Packet& packet);

  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// Mirrors RouterStats into "router.<prefix?>*" counters in `registry`
  /// (which must outlive the router). `name` disambiguates routers in
  /// multi-stub topologies; empty means the plain "router." prefix.
  void attach_observer(obs::Registry& registry, std::string_view name = {});

 private:
  net::Ipv4Prefix stub_prefix_;
  net::MacAddress mac_;
  std::unordered_map<std::uint32_t, Deliver> hosts_;
  Deliver uplink_;
  std::vector<Tap> outbound_taps_;
  std::vector<Tap> inbound_taps_;
  bool taps_enabled_ = true;
  TapBypass inbound_tap_bypass_;
  EgressPolicer egress_policer_;
  bool ingress_filtering_ = false;
  IngressViolation on_ingress_violation_;
  RouterStats stats_;

  // Telemetry (optional; see attach_observer). The policer-drop counter
  // is created lazily on the first drop: most runs never police, and an
  // unused registry entry would perturb byte-stable metric exports.
  obs::Registry* registry_ = nullptr;
  std::string obs_prefix_;
  obs::Counter* dropped_policer_counter_ = nullptr;
  obs::Counter* forwarded_outbound_counter_ = nullptr;
  obs::Counter* forwarded_inbound_counter_ = nullptr;
  obs::Counter* dropped_no_route_counter_ = nullptr;
  obs::Counter* dropped_ingress_counter_ = nullptr;
  obs::Counter* tap_suppressed_counter_ = nullptr;
  obs::Counter* tap_bypassed_counter_ = nullptr;
};

}  // namespace syndog::sim
