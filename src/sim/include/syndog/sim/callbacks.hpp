// Shared callback seam types for the sim module.
//
// These are the only std::function types allowed in sim headers. They are
// configuration-time seams — bound once when a topology is wired up
// (Link's deliver target, a router tap, the cloud's downlinks) and then
// only *invoked* on the hot path, never constructed per event. The
// per-event callbacks, which ARE constructed millions of times, go
// through Scheduler::Callback (util::InlineCallback) instead; the
// hotpath.std_function lint rule enforces the split.
#pragma once

#include <functional>

#include "syndog/net/packet.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {

/// Consumes a packet (link delivery target, cloud downlink, host egress).
using PacketSink = std::function<void(const net::Packet&)>;

/// Observes a timestamped packet without consuming it (router taps).
using PacketTap = std::function<void(util::SimTime, const net::Packet&)>;

/// Predicate over a timestamped packet (tap bypass / filtering seams).
using PacketFilter = std::function<bool(util::SimTime, const net::Packet&)>;

}  // namespace syndog::sim
