#include "syndog/sim/tcp_host.hpp"

#include <stdexcept>

namespace syndog::sim {

namespace {

// Inline SYN-cookie codec (the sim layer cannot depend on core, so this
// mirrors core::SynCookieCodec's shape without sharing code): the ISN is
// a 29-bit keyed tag over the 4-tuple + client ISN, with a 3-bit time
// counter at 64 s granularity in the low bits. Validation accepts the
// current and the previous counter window.
constexpr std::uint32_t kCookieTagBits = 29;
constexpr std::int64_t kCookieWindowNs = 64'000'000'000;

std::uint32_t cookie_counter(util::SimTime now) {
  return static_cast<std::uint32_t>((now.ns() / kCookieWindowNs) & 7);
}

std::uint32_t cookie_isn(std::uint64_t secret, net::Ipv4Address peer_ip,
                         std::uint16_t peer_port, std::uint16_t local_port,
                         std::uint32_t peer_isn, std::uint32_t counter) {
  const std::uint64_t tuple = (std::uint64_t{peer_ip.value()} << 32) |
                              (std::uint64_t{peer_port} << 16) | local_port;
  const std::uint64_t hash = util::splitmix64(
      secret ^ util::splitmix64(tuple) ^
      util::splitmix64((std::uint64_t{peer_isn} << 3) | counter));
  const auto tag =
      static_cast<std::uint32_t>(hash & ((1u << kCookieTagBits) - 1));
  return (tag << 3) | counter;
}

}  // namespace

TcpHost::TcpHost(std::string name, net::Ipv4Address ip, net::MacAddress mac,
                 net::MacAddress gateway_mac, Scheduler& scheduler,
                 PacketSink send, TcpHostParams params, std::uint64_t seed)
    : name_(std::move(name)), ip_(ip), mac_(mac), gateway_mac_(gateway_mac),
      scheduler_(scheduler), send_(std::move(send)), params_(params),
      rng_(seed),
      cookie_secret_(util::splitmix64(seed ^ 0x53594e636f6f6bULL)) {
  if (!send_) throw std::invalid_argument("TcpHost: send callback required");
  if (params_.backlog == 0) {
    throw std::invalid_argument("TcpHost: backlog must be at least 1");
  }
  if (params_.syn_cookies &&
      (params_.cookie_low_water < 0.0 ||
       params_.cookie_high_water <= params_.cookie_low_water ||
       params_.cookie_high_water > 1.0)) {
    throw std::invalid_argument(
        "TcpHost: need 0 <= cookie_low_water < cookie_high_water <= 1");
  }
}

void TcpHost::attach_observer(obs::Registry& registry) {
  registry_ = &registry;
}

void TcpHost::count(obs::Counter*& slot, const char* name) {
  if (registry_ == nullptr) return;
  if (slot == nullptr) {
    slot = &registry_->counter("host." + name_ + "." + name);
  }
  slot->add();
}

TcpHost::PeerKey TcpHost::key_of(net::Ipv4Address peer_ip,
                                 std::uint16_t peer_port,
                                 std::uint16_t local_port) {
  return PeerKey{(std::uint64_t{peer_ip.value()} << 32) |
                 (std::uint64_t{peer_port} << 16) | local_port};
}

void TcpHost::listen(std::uint16_t port) { listening_[port] = true; }

void TcpHost::send_tcp(net::Ipv4Address dst_ip, std::uint16_t src_port,
                       std::uint16_t dst_port, net::TcpFlags flags,
                       std::uint32_t seq, std::uint32_t ack) {
  net::TcpPacketSpec spec;
  spec.src_mac = mac_;
  spec.dst_mac = gateway_mac_;
  spec.src_ip = ip_;
  spec.dst_ip = dst_ip;
  spec.src_port = src_port;
  spec.dst_port = dst_port;
  spec.flags = flags;
  spec.seq = seq;
  spec.ack = ack;
  send_(net::make_tcp_packet(spec));
}

void TcpHost::connect(net::Ipv4Address dst_ip, std::uint16_t dst_port) {
  const std::uint16_t src_port = next_ephemeral_;
  next_ephemeral_ = next_ephemeral_ == 65535
                        ? static_cast<std::uint16_t>(32768)
                        : static_cast<std::uint16_t>(next_ephemeral_ + 1);

  Connecting conn;
  conn.our_isn = rng_.next_u32();
  conn.dst_ip = dst_ip;
  conn.dst_port = dst_port;
  conn.src_port = src_port;
  conn.rto = params_.initial_rto;
  const PeerKey key = key_of(dst_ip, dst_port, src_port);

  ++stats_.syns_sent;
  send_tcp(dst_ip, src_port, dst_port, net::TcpFlags::syn_only(),
           conn.our_isn, 0);
  conn.retx_event = scheduler_.schedule_after(
      conn.rto, [this, key] { retransmit_syn(key); });
  connecting_[key] = conn;
}

void TcpHost::retransmit_syn(PeerKey key) {
  const auto it = connecting_.find(key);
  if (it == connecting_.end()) return;
  Connecting& conn = it->second;
  if (conn.retransmissions >= params_.max_syn_retransmissions) {
    ++stats_.connect_failures;
    connecting_.erase(it);
    return;
  }
  ++conn.retransmissions;
  ++stats_.syns_sent;
  send_tcp(conn.dst_ip, conn.src_port, conn.dst_port,
           net::TcpFlags::syn_only(), conn.our_isn, 0);
  conn.rto = conn.rto * std::int64_t{2};
  conn.retx_event = scheduler_.schedule_after(
      conn.rto, [this, key] { retransmit_syn(key); });
}

void TcpHost::receive(const net::Packet& packet) {
  if (!packet.tcp || packet.ip.dst != ip_) return;
  const net::TcpFlags flags = packet.tcp->flags;
  if (flags.syn() && !flags.ack()) {
    on_syn(packet);
  } else if (flags.syn() && flags.ack()) {
    on_syn_ack(packet);
  } else if (flags.rst()) {
    on_rst(packet);
  } else if (flags.fin()) {
    on_fin(packet);
  } else if (flags.ack()) {
    on_ack(packet);
  }
}

void TcpHost::on_syn(const net::Packet& packet) {
  ++stats_.syns_received;
  const std::uint16_t port = packet.tcp->dst_port;
  if (!listening_.contains(port)) {
    // Closed port: RFC 793 answers with RST.
    ++stats_.rsts_sent;
    send_rst_for(packet);
    return;
  }
  const PeerKey key = key_of(packet.ip.src, packet.tcp->src_port, port);
  if (const auto it = half_open_.find(key); it != half_open_.end()) {
    // Duplicate SYN (client retransmission): re-send our SYN/ACK without
    // consuming another backlog slot.
    ++stats_.syn_acks_sent;
    send_tcp(packet.ip.src, port, packet.tcp->src_port,
             net::TcpFlags::syn_ack(), it->second.our_isn,
             packet.tcp->seq + 1);
    return;
  }
  update_cookie_mode();
  if (cookie_active_) {
    // Stateless handshake: the cookie ISN carries everything needed to
    // reconstruct the connection from the final ACK, so no backlog slot
    // is consumed and no retransmission timer runs.
    const std::uint32_t isn =
        cookie_isn(cookie_secret_, packet.ip.src, packet.tcp->src_port,
                   port, packet.tcp->seq, cookie_counter(scheduler_.now()));
    ++stats_.syn_acks_sent;
    ++stats_.syn_cookies_sent;
    count(cookies_sent_counter_, "syn_cookies_sent");
    send_tcp(packet.ip.src, port, packet.tcp->src_port,
             net::TcpFlags::syn_ack(), isn, packet.tcp->seq + 1);
    return;
  }
  if (backlog_full()) {
    // The SYN-flood failure mode: silently drop the request.
    ++stats_.backlog_drops;
    count(backlog_dropped_counter_, "backlog_dropped");
    return;
  }

  HalfOpen half;
  half.our_isn = rng_.next_u32();
  half.peer_ip = packet.ip.src;
  half.peer_port = packet.tcp->src_port;
  half.local_port = port;
  half.timeout_event = scheduler_.schedule_after(
      params_.half_open_timeout, [this, key] {
        const auto entry = half_open_.find(key);
        if (entry != half_open_.end()) {
          scheduler_.cancel(entry->second.retx_event);
          half_open_.erase(entry);
          ++stats_.half_open_timeouts;
        }
      });
  if (params_.syn_ack_retransmissions > 0) {
    half.retx_event = scheduler_.schedule_after(
        params_.initial_rto, [this, key] { retransmit_syn_ack(key); });
  }
  half_open_[key] = half;
  ++stats_.syn_acks_sent;
  send_tcp(packet.ip.src, port, packet.tcp->src_port,
           net::TcpFlags::syn_ack(), half.our_isn, packet.tcp->seq + 1);
}

void TcpHost::retransmit_syn_ack(PeerKey key) {
  const auto it = half_open_.find(key);
  if (it == half_open_.end()) return;
  HalfOpen& half = it->second;
  if (half.retransmissions >= params_.syn_ack_retransmissions) return;
  ++half.retransmissions;
  ++stats_.syn_acks_sent;
  send_tcp(half.peer_ip, half.local_port, half.peer_port,
           net::TcpFlags::syn_ack(), half.our_isn, 0);
  // Exponential backoff like the client side: 3 s, then 6 s.
  half.retx_event = scheduler_.schedule_after(
      params_.initial_rto * (std::int64_t{1} << half.retransmissions),
      [this, key] { retransmit_syn_ack(key); });
}

void TcpHost::on_syn_ack(const net::Packet& packet) {
  ++stats_.syn_acks_received;
  const PeerKey key =
      key_of(packet.ip.src, packet.tcp->src_port, packet.tcp->dst_port);
  const auto it = connecting_.find(key);
  if (it == connecting_.end()) {
    // Unexpected SYN/ACK — e.g. we were used as a spoofed source. Reset
    // the half-open connection at the sender (paper §1).
    ++stats_.rsts_sent;
    send_rst_for(packet);
    return;
  }
  const Connecting conn = it->second;
  scheduler_.cancel(conn.retx_event);
  connecting_.erase(it);
  ++stats_.established_as_client;
  send_tcp(conn.dst_ip, conn.src_port, conn.dst_port,
           net::TcpFlags::ack_only(), conn.our_isn + 1,
           packet.tcp->seq + 1);
  established_[key] =
      Established{conn.dst_ip, conn.dst_port, conn.src_port, false, false};
  if (params_.auto_close_after > util::SimTime::zero()) {
    scheduler_.schedule_after(
        params_.auto_close_after,
        [this, ip = conn.dst_ip, pport = conn.dst_port,
         lport = conn.src_port] { close(ip, pport, lport); });
  }
}

void TcpHost::on_ack(const net::Packet& packet) {
  const PeerKey key =
      key_of(packet.ip.src, packet.tcp->src_port, packet.tcp->dst_port);
  // The final ACK of a passive close (LAST_ACK -> CLOSED).
  if (const auto est = established_.find(key); est != established_.end()) {
    if (est->second.fin_sent && est->second.fin_received) {
      established_.erase(est);
      ++stats_.closed_gracefully;
      return;
    }
  }
  const auto it = half_open_.find(key);
  if (it == half_open_.end()) {
    // No SYN_RCVD state: either a data/late ACK, or the third leg of a
    // stateless cookie handshake.
    maybe_accept_cookie(packet, key);
    return;
  }
  if (packet.tcp->ack != it->second.our_isn + 1) return;  // wrong ack no.
  scheduler_.cancel(it->second.timeout_event);
  scheduler_.cancel(it->second.retx_event);
  half_open_.erase(it);
  ++stats_.established_as_server;
  established_[key] = Established{packet.ip.src, packet.tcp->src_port,
                                  packet.tcp->dst_port, false, false};
}

void TcpHost::update_cookie_mode() {
  if (!params_.syn_cookies) return;
  const double fill = static_cast<double>(half_open_.size()) /
                      static_cast<double>(params_.backlog);
  if (!cookie_active_ && fill >= params_.cookie_high_water) {
    cookie_active_ = true;
    ++stats_.cookie_engagements;
  } else if (cookie_active_ && fill <= params_.cookie_low_water) {
    cookie_active_ = false;
  }
}

void TcpHost::maybe_accept_cookie(const net::Packet& packet, PeerKey key) {
  if (!params_.syn_cookies) return;
  if (!listening_.contains(packet.tcp->dst_port)) return;
  if (established_.contains(key)) return;  // ordinary in-connection ACK
  const std::uint32_t presented = packet.tcp->ack - 1;
  const std::uint32_t peer_isn = packet.tcp->seq - 1;
  const std::uint32_t current = cookie_counter(scheduler_.now());
  bool valid = false;
  for (const std::uint32_t counter : {current, (current + 7) & 7}) {
    valid = valid || presented == cookie_isn(cookie_secret_, packet.ip.src,
                                             packet.tcp->src_port,
                                             packet.tcp->dst_port, peer_isn,
                                             counter);
  }
  if (!valid) {
    ++stats_.syn_cookies_rejected;
    count(cookies_rejected_counter_, "syn_cookies_rejected");
    return;
  }
  ++stats_.syn_cookies_validated;
  count(cookies_validated_counter_, "syn_cookies_validated");
  ++stats_.established_as_server;
  established_[key] = Established{packet.ip.src, packet.tcp->src_port,
                                  packet.tcp->dst_port, false, false};
}

void TcpHost::on_rst(const net::Packet& packet) {
  ++stats_.rsts_received;
  const PeerKey key =
      key_of(packet.ip.src, packet.tcp->src_port, packet.tcp->dst_port);
  if (const auto it = half_open_.find(key); it != half_open_.end()) {
    scheduler_.cancel(it->second.timeout_event);
    scheduler_.cancel(it->second.retx_event);
    half_open_.erase(it);
  }
  if (const auto it = connecting_.find(key); it != connecting_.end()) {
    scheduler_.cancel(it->second.retx_event);
    ++stats_.connect_failures;
    connecting_.erase(it);
  }
  established_.erase(key);
}

void TcpHost::close(net::Ipv4Address peer_ip, std::uint16_t peer_port,
                    std::uint16_t local_port) {
  const PeerKey key = key_of(peer_ip, peer_port, local_port);
  const auto it = established_.find(key);
  if (it == established_.end() || it->second.fin_sent) return;
  it->second.fin_sent = true;
  ++stats_.fins_sent;
  send_tcp(peer_ip, local_port, peer_port, net::TcpFlags::fin_ack(), 0, 0);
}

void TcpHost::on_fin(const net::Packet& packet) {
  ++stats_.fins_received;
  const PeerKey key =
      key_of(packet.ip.src, packet.tcp->src_port, packet.tcp->dst_port);
  const auto it = established_.find(key);
  if (it == established_.end()) {
    // FIN for a connection we no longer know: acknowledge and move on.
    send_tcp(packet.ip.src, packet.tcp->dst_port, packet.tcp->src_port,
             net::TcpFlags::ack_only(), packet.tcp->ack,
             packet.tcp->seq + 1);
    return;
  }
  it->second.fin_received = true;
  send_tcp(packet.ip.src, packet.tcp->dst_port, packet.tcp->src_port,
           net::TcpFlags::ack_only(), packet.tcp->ack,
           packet.tcp->seq + 1);
  if (!it->second.fin_sent) {
    // Passive close (Fig. 1's CLOSE_WAIT -> LAST_ACK): reciprocate.
    it->second.fin_sent = true;
    ++stats_.fins_sent;
    send_tcp(packet.ip.src, packet.tcp->dst_port, packet.tcp->src_port,
             net::TcpFlags::fin_ack(), 0, packet.tcp->seq + 1);
  } else {
    // We initiated and the peer's FIN completes the exchange
    // (FIN_WAIT -> TIME_WAIT, modeled as immediate close).
    established_.erase(it);
    ++stats_.closed_gracefully;
  }
}

void TcpHost::send_rst_for(const net::Packet& packet) {
  net::TcpFlags rst = net::TcpFlags::rst_only();
  send_tcp(packet.ip.src, packet.tcp->dst_port, packet.tcp->src_port, rst,
           packet.tcp->ack, packet.tcp->seq + 1);
}

}  // namespace syndog::sim
