#include "syndog/sim/scheduler.hpp"

#include <memory>
#include <stdexcept>

namespace syndog::sim {

EventId Scheduler::schedule_at(util::SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::make_shared<Callback>(std::move(fn))});
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.at;
    ++executed_;
    (*entry.fn)();
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(util::SimTime end) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().at <= end) {
    if (step()) ++count;
  }
  if (now_ < end) now_ = end;
  return count;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) {
    ++count;
  }
  return count;
}

}  // namespace syndog::sim
