#include "syndog/sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndog::sim {

namespace {
/// Generation bump that skips 0, so a default/garbage id (gen 0) can
/// never match a live slot even after the 32-bit generation wraps.
inline std::uint32_t next_gen(std::uint32_t gen) {
  return ++gen == 0 ? 1 : gen;
}
}  // namespace

void Scheduler::place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  slots_[e.slot_index()].heap_pos = static_cast<std::uint32_t>(pos);
}

std::size_t Scheduler::sift_up(std::size_t hole, const HeapEntry& e) {
  // Hole-based: shift parents down into the hole; the caller writes `e`
  // into the returned position exactly once.
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(hole, heap_[parent]);
    hole = parent;
  }
  return hole;
}

std::size_t Scheduler::sift_down(std::size_t hole, const HeapEntry& e) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(hole, heap_[best]);
    hole = best;
  }
  return hole;
}

void Scheduler::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  place(sift_up(heap_.size() - 1, entry), entry);
}

void Scheduler::heap_remove(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry itself
  // Re-seat the former tail into the hole; it may belong above (the
  // removed entry could have been on another subtree's path) or below.
  const std::size_t up = sift_up(pos, last);
  if (up != pos) {
    place(up, last);
    return;
  }
  place(sift_down(pos, last), last);
}

void Scheduler::retire(std::uint32_t slot) { free_slots_.push_back(slot); }

EventId Scheduler::schedule_at(util::SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Scheduler: callback required");
  }
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kMaxSlots) {
      throw std::length_error(
          "Scheduler: more than 2^24 events pending at once");
    }
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  if (next_seq_ >= kMaxSeq) {
    throw std::overflow_error(
        "Scheduler: schedule-order stamp exhausted (2^40 events)");
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_push(HeapEntry{at, (next_seq_++ << 24) | index});
  ++pending_;
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->add();
    depth_gauge_->set(static_cast<double>(pending_));
  }
  return make_id(index, slot.gen);
}

void Scheduler::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (!slot.armed || slot.gen != gen) return;  // executed, stale, unknown
  heap_remove(slot.heap_pos);
  slot.fn.reset();  // releases captured resources (e.g. pooled packets) now
  slot.armed = false;
  slot.gen = next_gen(slot.gen);
  retire(index);
  --pending_;
  if (cancelled_counter_ != nullptr) {
    cancelled_counter_->add();
  }
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  const HeapEntry entry = heap_.front();
  heap_remove(0);
  Slot& slot = slots_[entry.slot_index()];
  now_ = entry.at;
  ++executed_;
  --pending_;
  if (executed_counter_ != nullptr) {
    executed_counter_->add();
    depth_gauge_->set(static_cast<double>(pending_));
  }
  if (tracer_ != nullptr && executed_ % sample_every_ == 0) {
    tracer_->record(now_, obs::QueueDepth{pending_, executed_});
  }
  // Move the callback out and recycle the slot *before* invoking, so a
  // re-entrant schedule_at from inside the callback may reuse it.
  Callback fn = std::move(slot.fn);
  slot.armed = false;
  slot.gen = next_gen(slot.gen);
  retire(entry.slot_index());
  fn();
  return true;
}

void Scheduler::attach_observer(obs::Registry* registry,
                                obs::EventTracer* tracer,
                                std::uint64_t sample_every) {
  if (sample_every == 0) {
    throw std::invalid_argument(
        "Scheduler::attach_observer: sample_every must be > 0");
  }
  tracer_ = tracer;
  sample_every_ = sample_every;
  if (registry != nullptr) {
    executed_counter_ = &registry->counter("sim.events_executed");
    scheduled_counter_ = &registry->counter("sim.events_scheduled");
    cancelled_counter_ = &registry->counter("sim.events_cancelled");
    depth_gauge_ = &registry->gauge("sim.queue_depth");
  } else {
    executed_counter_ = nullptr;
    scheduled_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    depth_gauge_ = nullptr;
  }
}

std::size_t Scheduler::run_until(util::SimTime end) {
  std::size_t count = 0;
  // The heap holds live events only (cancel removes entries eagerly), so
  // the front's time bound is exact: nothing past `end` ever runs.
  while (!heap_.empty() && heap_.front().at <= end) {
    step();
    ++count;
  }
  if (now_ < end) now_ = end;
  return count;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) {
    ++count;
  }
  return count;
}

}  // namespace syndog::sim
