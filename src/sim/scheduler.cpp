#include "syndog/sim/scheduler.hpp"

#include <memory>
#include <stdexcept>

namespace syndog::sim {

EventId Scheduler::schedule_at(util::SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::make_shared<Callback>(std::move(fn))});
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->add();
    depth_gauge_->set(static_cast<double>(pending()));
  }
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  if (cancelled_.insert(id).second && cancelled_counter_ != nullptr) {
    cancelled_counter_->add();
  }
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.at;
    ++executed_;
    if (executed_counter_ != nullptr) {
      executed_counter_->add();
      depth_gauge_->set(static_cast<double>(pending()));
    }
    if (tracer_ != nullptr && executed_ % sample_every_ == 0) {
      tracer_->record(now_, obs::QueueDepth{pending(), executed_});
    }
    (*entry.fn)();
    return true;
  }
  return false;
}

void Scheduler::attach_observer(obs::Registry* registry,
                                obs::EventTracer* tracer,
                                std::uint64_t sample_every) {
  if (sample_every == 0) {
    throw std::invalid_argument(
        "Scheduler::attach_observer: sample_every must be > 0");
  }
  tracer_ = tracer;
  sample_every_ = sample_every;
  if (registry != nullptr) {
    executed_counter_ = &registry->counter("sim.events_executed");
    scheduled_counter_ = &registry->counter("sim.events_scheduled");
    cancelled_counter_ = &registry->counter("sim.events_cancelled");
    depth_gauge_ = &registry->gauge("sim.queue_depth");
  } else {
    executed_counter_ = nullptr;
    scheduled_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    depth_gauge_ = nullptr;
  }
}

std::size_t Scheduler::run_until(util::SimTime end) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().at <= end) {
    if (step()) ++count;
  }
  if (now_ < end) now_ = end;
  return count;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) {
    ++count;
  }
  return count;
}

}  // namespace syndog::sim
