#include "syndog/sim/cloud.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::sim {

InternetCloud::InternetCloud(Scheduler& scheduler, CloudParams params,
                             PacketSink downlink, std::uint64_t seed)
    : scheduler_(scheduler), params_(params), rng_(seed) {
  if (!downlink) {
    throw std::invalid_argument("InternetCloud: downlink required");
  }
  stub_routes_.emplace_back(params_.stub_prefix, std::move(downlink));
  if (!(params_.no_answer_probability >= 0.0 &&
        params_.no_answer_probability < 1.0)) {
    throw std::invalid_argument(
        "InternetCloud: no_answer_probability in [0,1)");
  }
}

void InternetCloud::attach_host(net::Ipv4Address ip, TcpHost* host) {
  if (host == nullptr) {
    throw std::invalid_argument("InternetCloud: null host");
  }
  hosts_[ip.value()] = host;
}

void InternetCloud::add_stub_route(net::Ipv4Prefix prefix,
                                   PacketSink downlink) {
  if (!downlink) {
    throw std::invalid_argument("InternetCloud: downlink required");
  }
  stub_routes_.emplace_back(prefix, std::move(downlink));
}

void InternetCloud::receive(const net::Packet& packet) {
  // Real attached host (e.g. the victim server) takes precedence.
  if (const auto it = hosts_.find(packet.ip.dst.value());
      it != hosts_.end()) {
    ++stats_.delivered_to_hosts;
    it->second->receive(packet);
    return;
  }
  // Destinations inside a known stub network are routed there, not
  // answered by the generic server space (cross-stub traffic).
  for (const auto& [prefix, downlink] : stub_routes_) {
    if (prefix.contains(packet.ip.dst)) {
      downlink(packet);
      return;
    }
  }
  if (params_.unreachable_pool.contains(packet.ip.dst)) {
    // Spoofed-source replies die here — no endpoint, no RST.
    ++stats_.dropped_unreachable;
    return;
  }
  if (!packet.tcp) return;

  const net::TcpFlags flags = packet.tcp->flags;
  if (flags.syn() && !flags.ack()) {
    ++stats_.syns_seen;
    if (rng_.bernoulli(params_.no_answer_probability)) {
      ++stats_.unanswered;
      return;
    }
    synthesize_syn_ack(packet);
    return;
  }
  if (flags.syn() && flags.ack()) {
    // A stub server accepted a connection from a generic remote client;
    // complete its handshake with the final ACK so half-open slots drain.
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(0xfffffe);
    spec.dst_mac = packet.eth.src;
    spec.src_ip = packet.ip.dst;
    spec.dst_ip = packet.ip.src;
    spec.src_port = packet.tcp->dst_port;
    spec.dst_port = packet.tcp->src_port;
    spec.flags = net::TcpFlags::ack_only();
    spec.seq = packet.tcp->ack;
    spec.ack = packet.tcp->seq + 1;
    net::Packet ack = net::make_tcp_packet(spec);
    const double rtt =
        params_.rtt_sigma > 0
            ? rng_.lognormal(std::log(params_.rtt_median_s),
                             params_.rtt_sigma)
            : params_.rtt_median_s;
    scheduler_.schedule_after(
        util::SimTime::from_seconds(rtt),
        [this, h = scheduler_.packets().acquire(std::move(ack))] {
          route(*h);
        });
  }
  if (flags.fin()) {
    // A stub client closing its connection to a generic server: the far
    // side reciprocates with its own FIN|ACK so the teardown completes
    // (paper Fig. 1's passive close).
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(0xfffffe);
    spec.dst_mac = packet.eth.src;
    spec.src_ip = packet.ip.dst;
    spec.dst_ip = packet.ip.src;
    spec.src_port = packet.tcp->dst_port;
    spec.dst_port = packet.tcp->src_port;
    spec.flags = net::TcpFlags::fin_ack();
    spec.seq = packet.tcp->ack;
    spec.ack = packet.tcp->seq + 1;
    net::Packet fin = net::make_tcp_packet(spec);
    const double rtt =
        params_.rtt_sigma > 0
            ? rng_.lognormal(std::log(params_.rtt_median_s),
                             params_.rtt_sigma)
            : params_.rtt_median_s;
    scheduler_.schedule_after(
        util::SimTime::from_seconds(rtt),
        [this, h = scheduler_.packets().acquire(std::move(fin))] {
          route(*h);
        });
    return;
  }
  // Other segment kinds (final ACKs, data) terminate silently at the
  // generic server space; nothing about them matters to the handshake
  // counts the detector sees.
}

void InternetCloud::route(const net::Packet& packet) {
  if (const auto it = hosts_.find(packet.ip.dst.value());
      it != hosts_.end()) {
    ++stats_.delivered_to_hosts;
    it->second->receive(packet);
    return;
  }
  for (const auto& [prefix, downlink] : stub_routes_) {
    if (prefix.contains(packet.ip.dst)) {
      downlink(packet);
      return;
    }
  }
  if (params_.unreachable_pool.contains(packet.ip.dst)) {
    // Replies to spoofed sources die in the core; crucially, they never
    // transit our leaf router's inbound interface.
    ++stats_.dropped_unreachable;
    return;
  }
  ++stats_.absorbed_elsewhere;
}

void InternetCloud::synthesize_syn_ack(const net::Packet& syn) {
  net::TcpPacketSpec spec;
  // The reply emerges from the cloud with the router as next hop; MAC
  // addresses on the wide-area side are not meaningful to the stub.
  spec.src_mac = net::MacAddress::for_host(0xfffffe);
  spec.dst_mac = syn.eth.src;
  spec.src_ip = syn.ip.dst;
  spec.dst_ip = syn.ip.src;
  spec.src_port = syn.tcp->dst_port;
  spec.dst_port = syn.tcp->src_port;
  spec.seq = rng_.next_u32();
  spec.ack = syn.tcp->seq + 1;
  net::Packet reply = net::make_syn_ack(spec);

  const double rtt =
      params_.rtt_sigma > 0
          ? rng_.lognormal(std::log(params_.rtt_median_s), params_.rtt_sigma)
          : params_.rtt_median_s;
  ++stats_.syn_acks_generated;
  scheduler_.schedule_after(
      util::SimTime::from_seconds(rtt),
      [this, h = scheduler_.packets().acquire(std::move(reply))] {
        route(*h);
      });
}

}  // namespace syndog::sim
