#include "syndog/trace/site.hpp"

#include <stdexcept>

namespace syndog::trace {

std::string_view to_string(SiteId site) {
  switch (site) {
    case SiteId::kLbl:
      return "LBL";
    case SiteId::kHarvard:
      return "Harvard";
    case SiteId::kUnc:
      return "UNC";
    case SiteId::kAuckland:
      return "Auckland";
  }
  return "?";
}

std::string_view to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
    case ArrivalKind::kParetoOnOff:
      return "pareto-onoff";
    case ArrivalKind::kWeibull:
      return "weibull";
  }
  return "?";
}

SiteSpec site_spec(SiteId site) {
  SiteSpec spec;
  spec.name = to_string(site);
  switch (site) {
    case SiteId::kLbl:
      // 1994 wide-area access link: one hour, bidirectional, low volume
      // (Fig. 3(a): ~5-50 SYNs per period), relatively lossy era.
      spec.duration = util::SimTime::hours(1);
      spec.bidirectional = true;
      spec.outbound_rate = 0.75;
      spec.inbound_rate = 0.50;
      spec.onoff_sources = 10;
      spec.handshake.no_answer_probability = 0.08;
      spec.disruptions_per_hour = 1.0;
      spec.disruption_mean_s = 20.0;
      spec.disruption_max_s = 30.0;
      spec.disruption_p = 0.25;
      spec.expected_syn_ack_per_period = 15.0;   // outbound pair only
      spec.expected_c = 0.087;
      break;
    case SiteId::kHarvard:
      // 10 Mbps campus Ethernet, half hour, bidirectional, bursty
      // (Fig. 3(b): ~200-700 SYNs per period across both directions).
      spec.duration = util::SimTime::minutes(30);
      spec.bidirectional = true;
      spec.outbound_rate = 10.3;
      spec.inbound_rate = 6.9;
      spec.onoff_sources = 30;
      spec.handshake.no_answer_probability = 0.05;
      // Calibrated so the largest normal-mode spike of yn is ~0.05
      // (paper Fig. 5(a)).
      spec.disruptions_per_hour = 3.0;
      spec.disruption_mean_s = 10.0;
      spec.disruption_max_s = 18.0;
      spec.disruption_p = 0.3;
      spec.expected_syn_ack_per_period = 206.0;
      spec.expected_c = 0.0526;
      break;
    case SiteId::kUnc:
      // OC-12 campus uplink, half hour, unidirectional capture pair.
      // Calibrated so K-bar ~ 2114/period and c ~ 0.05, which reproduces
      // Table 2's f_min = 37 SYN/s and its detection delays (DESIGN.md §5).
      spec.duration = util::SimTime::minutes(30);
      spec.bidirectional = false;
      spec.outbound_rate = 105.7;
      spec.inbound_rate = 60.0;
      spec.onoff_sources = 60;
      spec.handshake.no_answer_probability = 0.047;
      spec.disruptions_per_hour = 2.0;
      spec.disruption_mean_s = 20.0;
      spec.disruption_max_s = 30.0;
      spec.disruption_p = 0.35;
      spec.expected_syn_ack_per_period = 2114.0;
      spec.expected_c = 0.0494;
      break;
    case SiteId::kAuckland:
      // Medium-size university access link, three hours, unidirectional.
      // Calibrated so K-bar ~ 107/period, giving Table 3's f_min = 1.75.
      spec.duration = util::SimTime::hours(3);
      spec.bidirectional = false;
      spec.outbound_rate = 4.4;
      spec.inbound_rate = 3.0;
      spec.onoff_sources = 20;
      spec.handshake.no_answer_probability = 0.02;
      // Calibrated so the largest normal-mode spike of yn is ~0.26
      // (paper Fig. 5(c)).
      spec.disruptions_per_hour = 2.0;
      spec.disruption_mean_s = 22.0;
      spec.disruption_max_s = 32.0;
      spec.disruption_p = 0.33;
      spec.expected_syn_ack_per_period = 88.0;
      spec.expected_c = 0.0204;
      break;
  }
  return spec;
}

std::unique_ptr<ArrivalModel> make_arrival_model(ArrivalKind kind,
                                                 double rate_per_second,
                                                 int onoff_sources) {
  if (!(rate_per_second > 0.0)) {
    throw std::invalid_argument("make_arrival_model: rate must be positive");
  }
  switch (kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(rate_per_second);
    case ArrivalKind::kMmpp:
      // Quiet state at half rate, busy state at double rate; stationary
      // mean equals the requested rate (sojourns 60 s / 30 s).
      return std::make_unique<MmppArrivals>(0.5 * rate_per_second,
                                            2.0 * rate_per_second, 60.0,
                                            30.0);
    case ArrivalKind::kParetoOnOff: {
      // Duty cycle 1/3 (mean ON 40 s, OFF 80 s); per-source ON rate chosen
      // so the superposed mean is the requested rate.
      ParetoOnOffArrivals::Params p;
      p.sources = onoff_sources;
      p.mean_on_s = 40.0;
      p.mean_off_s = 80.0;
      p.pareto_shape = 1.5;
      p.per_source_on_rate =
          rate_per_second * 3.0 / static_cast<double>(onoff_sources);
      return std::make_unique<ParetoOnOffArrivals>(p);
    }
    case ArrivalKind::kWeibull:
      // Shape < 1: heavy-tailed gaps, clustered arrivals.
      return std::make_unique<WeibullRenewalArrivals>(rate_per_second, 0.6);
  }
  throw std::invalid_argument("make_arrival_model: unknown kind");
}

ConnectionTrace generate_site_trace(const SiteSpec& spec,
                                    std::uint64_t seed) {
  util::Rng out_rng = util::Rng::child(seed, 1);
  const std::unique_ptr<ArrivalModel> out_model = make_arrival_model(
      spec.arrival_kind, spec.outbound_rate, spec.onoff_sources);
  const LossProcess out_loss = LossProcess::with_random_disruptions(
      spec.handshake.no_answer_probability, spec.duration,
      spec.disruptions_per_hour, spec.disruption_mean_s, spec.disruption_p,
      out_rng, spec.disruption_max_s);
  ConnectionTrace trace =
      generate_trace(*out_model, spec.duration, spec.handshake, out_loss,
                     Direction::kOutbound, out_rng);

  if (spec.inbound_rate > 0.0) {
    util::Rng in_rng = util::Rng::child(seed, 2);
    const std::unique_ptr<ArrivalModel> in_model = make_arrival_model(
        spec.arrival_kind, spec.inbound_rate, spec.onoff_sources);
    const LossProcess in_loss = LossProcess::with_random_disruptions(
        spec.handshake.no_answer_probability, spec.duration,
        spec.disruptions_per_hour, spec.disruption_mean_s,
        spec.disruption_p, in_rng, spec.disruption_max_s);
    ConnectionTrace inbound =
        generate_trace(*in_model, spec.duration, spec.handshake, in_loss,
                       Direction::kInbound, in_rng);
    trace = merge_traces(std::move(trace), std::move(inbound));
  }
  return trace;
}

ConnectionTrace generate_flash_crowd(const SiteSpec& spec,
                                     util::SimTime start,
                                     util::SimTime duration,
                                     double multiplier, std::uint64_t seed) {
  if (multiplier <= 1.0) {
    throw std::invalid_argument(
        "generate_flash_crowd: multiplier must exceed 1");
  }
  if (start < util::SimTime::zero() || duration <= util::SimTime::zero() ||
      start + duration > spec.duration) {
    throw std::invalid_argument(
        "generate_flash_crowd: surge window outside the trace");
  }
  // The surge adds (multiplier - 1) times the base rate on top of the
  // background the caller already has.
  util::Rng rng = util::Rng::child(seed, 0xf1a5);
  const PoissonArrivals surge(spec.outbound_rate * (multiplier - 1.0));
  ConnectionTrace trace = generate_trace(surge, duration, spec.handshake,
                                         Direction::kOutbound, rng);
  // Shift the window into place and stretch the trace to full length.
  for (Handshake& hs : trace.handshakes) {
    for (util::SimTime& at : hs.syn_times) at += start;
    if (hs.syn_ack_time) *hs.syn_ack_time += start;
  }
  trace.duration = spec.duration;
  return trace;
}

}  // namespace syndog::trace
