#include "syndog/trace/periods.hpp"

#include <stdexcept>

namespace syndog::trace {

namespace {
std::vector<std::int64_t> sum_vectors(const std::vector<std::int64_t>& a,
                                      const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}
}  // namespace

std::vector<std::int64_t> PeriodSeries::syn_both_directions() const {
  return sum_vectors(out_syn, in_syn);
}

std::vector<std::int64_t> PeriodSeries::syn_ack_both_directions() const {
  return sum_vectors(in_syn_ack, out_syn_ack);
}

void PeriodSeries::add_outbound_syns(const std::vector<std::int64_t>& extra) {
  if (extra.size() != out_syn.size()) {
    throw std::invalid_argument("add_outbound_syns: size mismatch");
  }
  for (std::size_t i = 0; i < extra.size(); ++i) out_syn[i] += extra[i];
}

std::vector<double> PeriodSeries::to_double(
    const std::vector<std::int64_t>& xs) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = static_cast<double>(xs[i]);
  }
  return out;
}

PeriodSeries extract_periods(const ConnectionTrace& trace,
                             util::SimTime period) {
  if (period <= util::SimTime::zero()) {
    throw std::invalid_argument("extract_periods: period must be positive");
  }
  PeriodSeries series;
  series.period = period;
  const auto num_periods =
      static_cast<std::size_t>(trace.duration / period);
  series.out_syn.assign(num_periods, 0);
  series.in_syn_ack.assign(num_periods, 0);
  series.in_syn.assign(num_periods, 0);
  series.out_syn_ack.assign(num_periods, 0);

  const auto bucket_of = [&](util::SimTime at) -> std::ptrdiff_t {
    if (at < util::SimTime::zero()) return -1;
    const auto idx = static_cast<std::size_t>(at / period);
    return idx < num_periods ? static_cast<std::ptrdiff_t>(idx) : -1;
  };

  for (const Handshake& hs : trace.handshakes) {
    // An outbound connection's SYNs leave the stub (counted by the
    // outbound sniffer) and its SYN/ACK returns (inbound sniffer); an
    // inbound connection is the mirror image.
    auto& syn_counts = hs.direction == Direction::kOutbound ? series.out_syn
                                                            : series.in_syn;
    auto& ack_counts = hs.direction == Direction::kOutbound
                           ? series.in_syn_ack
                           : series.out_syn_ack;
    for (util::SimTime at : hs.syn_times) {
      const std::ptrdiff_t b = bucket_of(at);
      if (b >= 0) ++syn_counts[static_cast<std::size_t>(b)];
    }
    if (hs.syn_ack_time) {
      const std::ptrdiff_t b = bucket_of(*hs.syn_ack_time);
      if (b >= 0) ++ack_counts[static_cast<std::size_t>(b)];
    }
  }
  return series;
}

std::vector<std::int64_t> bucket_times(const std::vector<util::SimTime>& times,
                                       util::SimTime period,
                                       std::size_t num_periods) {
  if (period <= util::SimTime::zero()) {
    throw std::invalid_argument("bucket_times: period must be positive");
  }
  std::vector<std::int64_t> out(num_periods, 0);
  for (util::SimTime at : times) {
    if (at < util::SimTime::zero()) continue;
    const auto idx = static_cast<std::size_t>(at / period);
    if (idx < num_periods) ++out[idx];
  }
  return out;
}

}  // namespace syndog::trace
