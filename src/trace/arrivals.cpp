#include "syndog/trace/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace syndog::trace {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}
}  // namespace

// --- PoissonArrivals -------------------------------------------------------

PoissonArrivals::PoissonArrivals(double rate_per_second)
    : rate_(rate_per_second) {
  require_positive(rate_, "PoissonArrivals: rate");
}

std::vector<util::SimTime> PoissonArrivals::generate(util::SimTime duration,
                                                     util::Rng& rng) const {
  std::vector<util::SimTime> out;
  out.reserve(static_cast<std::size_t>(rate_ * duration.to_seconds() * 1.1) +
              16);
  double t = 0.0;
  const double end = duration.to_seconds();
  while (true) {
    t += rng.exponential_mean(1.0 / rate_);
    if (t >= end) break;
    out.push_back(util::SimTime::from_seconds(t));
  }
  return out;
}

// --- MmppArrivals ----------------------------------------------------------

MmppArrivals::MmppArrivals(double rate0, double rate1, double mean_sojourn0_s,
                           double mean_sojourn1_s)
    : rate0_(rate0), rate1_(rate1), sojourn0_(mean_sojourn0_s),
      sojourn1_(mean_sojourn1_s) {
  require_positive(rate0_, "MmppArrivals: rate0");
  require_positive(rate1_, "MmppArrivals: rate1");
  require_positive(sojourn0_, "MmppArrivals: mean_sojourn0");
  require_positive(sojourn1_, "MmppArrivals: mean_sojourn1");
}

std::vector<util::SimTime> MmppArrivals::generate(util::SimTime duration,
                                                  util::Rng& rng) const {
  std::vector<util::SimTime> out;
  const double end = duration.to_seconds();
  double t = 0.0;
  int state = rng.bernoulli(sojourn1_ / (sojourn0_ + sojourn1_)) ? 1 : 0;
  while (t < end) {
    const double sojourn =
        rng.exponential_mean(state == 0 ? sojourn0_ : sojourn1_);
    const double segment_end = std::min(end, t + sojourn);
    const double rate = state == 0 ? rate0_ : rate1_;
    double at = t;
    while (true) {
      at += rng.exponential_mean(1.0 / rate);
      if (at >= segment_end) break;
      out.push_back(util::SimTime::from_seconds(at));
    }
    t = segment_end;
    state = 1 - state;
  }
  return out;
}

double MmppArrivals::mean_rate() const {
  // Stationary state probabilities are proportional to the mean sojourns.
  return (rate0_ * sojourn0_ + rate1_ * sojourn1_) / (sojourn0_ + sojourn1_);
}

// --- ParetoOnOffArrivals ---------------------------------------------------

ParetoOnOffArrivals::ParetoOnOffArrivals(Params params) : params_(params) {
  if (params_.sources <= 0) {
    throw std::invalid_argument("ParetoOnOff: sources must be positive");
  }
  require_positive(params_.per_source_on_rate, "ParetoOnOff: on rate");
  if (!(params_.pareto_shape > 1.0)) {
    throw std::invalid_argument(
        "ParetoOnOff: shape must exceed 1 (finite mean)");
  }
  require_positive(params_.mean_on_s, "ParetoOnOff: mean_on");
  require_positive(params_.mean_off_s, "ParetoOnOff: mean_off");
}

double ParetoOnOffArrivals::xm_for_mean(double mean, double shape) {
  // Pareto mean = shape*xm/(shape-1)  =>  xm = mean*(shape-1)/shape.
  return mean * (shape - 1.0) / shape;
}

std::vector<util::SimTime> ParetoOnOffArrivals::generate(
    util::SimTime duration, util::Rng& rng) const {
  std::vector<util::SimTime> out;
  const double end = duration.to_seconds();
  const double xm_on = xm_for_mean(params_.mean_on_s, params_.pareto_shape);
  const double xm_off = xm_for_mean(params_.mean_off_s, params_.pareto_shape);

  for (int s = 0; s < params_.sources; ++s) {
    // Start each source at a random phase: ON with the stationary
    // probability, partway through the current period.
    const double p_on =
        params_.mean_on_s / (params_.mean_on_s + params_.mean_off_s);
    bool on = rng.bernoulli(p_on);
    double t = -rng.uniform() *
               (on ? params_.mean_on_s : params_.mean_off_s);
    while (t < end) {
      const double len = rng.pareto(params_.pareto_shape, on ? xm_on
                                                             : xm_off);
      const double segment_end = std::min(end, t + len);
      if (on) {
        double at = std::max(t, 0.0);
        while (true) {
          at += rng.exponential_mean(1.0 / params_.per_source_on_rate);
          if (at >= segment_end) break;
          out.push_back(util::SimTime::from_seconds(at));
        }
      }
      t += len;
      on = !on;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double ParetoOnOffArrivals::mean_rate() const {
  const double p_on =
      params_.mean_on_s / (params_.mean_on_s + params_.mean_off_s);
  return params_.sources * p_on * params_.per_source_on_rate;
}

// --- WeibullRenewalArrivals --------------------------------------------------

WeibullRenewalArrivals::WeibullRenewalArrivals(double rate_per_second,
                                               double shape)
    : rate_(rate_per_second), shape_(shape) {
  require_positive(rate_, "WeibullRenewal: rate");
  require_positive(shape_, "WeibullRenewal: shape");
  // Weibull mean = scale * Gamma(1 + 1/shape); choose scale for mean 1/rate.
  scale_ = (1.0 / rate_) / std::tgamma(1.0 + 1.0 / shape_);
}

std::vector<util::SimTime> WeibullRenewalArrivals::generate(
    util::SimTime duration, util::Rng& rng) const {
  std::vector<util::SimTime> out;
  const double end = duration.to_seconds();
  double t = 0.0;
  while (true) {
    t += rng.weibull(shape_, scale_);
    if (t >= end) break;
    out.push_back(util::SimTime::from_seconds(t));
  }
  return out;
}

// --- DiurnalModulation -------------------------------------------------------

DiurnalModulation::DiurnalModulation(
    std::shared_ptr<const ArrivalModel> inner, double amplitude,
    util::SimTime period)
    : inner_(std::move(inner)), amplitude_(amplitude), period_(period) {
  if (!inner_) {
    throw std::invalid_argument("DiurnalModulation: inner model required");
  }
  if (!(amplitude_ >= 0.0 && amplitude_ < 1.0)) {
    throw std::invalid_argument("DiurnalModulation: amplitude in [0,1)");
  }
  if (period_ <= util::SimTime::zero()) {
    throw std::invalid_argument("DiurnalModulation: period must be positive");
  }
}

std::vector<util::SimTime> DiurnalModulation::generate(
    util::SimTime duration, util::Rng& rng) const {
  // Thinning: keep an arrival at time t with probability
  // (1 + A*sin(2*pi*t/P)) / (1 + A), so the inner model's rate is the peak.
  const std::vector<util::SimTime> base = inner_->generate(duration, rng);
  std::vector<util::SimTime> out;
  out.reserve(base.size());
  const double period_s = period_.to_seconds();
  for (util::SimTime at : base) {
    const double phase = 2.0 * std::numbers::pi * at.to_seconds() / period_s;
    const double accept =
        (1.0 + amplitude_ * std::sin(phase)) / (1.0 + amplitude_);
    if (rng.uniform() < accept) out.push_back(at);
  }
  return out;
}

double DiurnalModulation::mean_rate() const {
  // Over whole periods the sine averages out; thinning scales by 1/(1+A).
  return inner_->mean_rate() / (1.0 + amplitude_);
}

}  // namespace syndog::trace
