#include "syndog/trace/render.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndog::trace {

namespace {

constexpr std::uint16_t kServerPorts[] = {80, 443, 25, 110, 21, 22, 53, 8080};

struct Endpoints {
  net::Ipv4Address client_ip;
  net::Ipv4Address server_ip;
  net::MacAddress client_mac;  ///< MAC on the stub side of the frame
  net::MacAddress server_mac;
  std::uint16_t client_port;
  std::uint16_t server_port;
};

/// Picks addresses for one handshake. The stub endpoint is the client for
/// outbound connections and the server for inbound ones.
Endpoints pick_endpoints(const Handshake& hs, const RenderConfig& cfg,
                         util::Rng& rng) {
  const std::uint32_t stub_host = static_cast<std::uint32_t>(
      rng.uniform_int(1, cfg.stub_hosts));
  const std::uint32_t inet_host = static_cast<std::uint32_t>(
      rng.uniform_int(1, cfg.internet_hosts));
  const net::Ipv4Address stub_ip = cfg.stub_prefix.host(stub_host);
  const net::Ipv4Address inet_ip = cfg.internet_prefix.host(inet_host);

  Endpoints ep;
  ep.client_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  ep.server_port = kServerPorts[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kServerPorts) - 1))];
  if (hs.direction == Direction::kOutbound) {
    ep.client_ip = stub_ip;
    ep.server_ip = inet_ip;
    ep.client_mac = net::MacAddress::for_host(stub_host);
    ep.server_mac = cfg.router_mac;
  } else {
    ep.client_ip = inet_ip;
    ep.server_ip = stub_ip;
    ep.client_mac = cfg.router_mac;
    ep.server_mac = net::MacAddress::for_host(stub_host);
  }
  return ep;
}

}  // namespace

std::vector<TimedPacket> render_trace(const ConnectionTrace& trace,
                                      const RenderConfig& config) {
  if (config.stub_hosts == 0 || config.internet_hosts == 0) {
    throw std::invalid_argument("render_trace: need at least one host");
  }
  util::Rng rng{config.seed};
  std::vector<TimedPacket> out;
  out.reserve(trace.total_syns() + 2 * trace.total_syn_acks());

  for (const Handshake& hs : trace.handshakes) {
    const Endpoints ep = pick_endpoints(hs, config, rng);
    const std::uint32_t client_isn = rng.next_u32();
    const std::uint32_t server_isn = rng.next_u32();

    net::TcpPacketSpec spec;
    spec.src_mac = ep.client_mac;
    spec.dst_mac = ep.server_mac;
    spec.src_ip = ep.client_ip;
    spec.dst_ip = ep.server_ip;
    spec.src_port = ep.client_port;
    spec.dst_port = ep.server_port;
    spec.seq = client_isn;
    for (util::SimTime at : hs.syn_times) {
      out.push_back({at, net::make_syn(spec)});
    }

    if (hs.syn_ack_time) {
      net::TcpPacketSpec reply;
      reply.src_mac = ep.server_mac;
      reply.dst_mac = ep.client_mac;
      reply.src_ip = ep.server_ip;
      reply.dst_ip = ep.client_ip;
      reply.src_port = ep.server_port;
      reply.dst_port = ep.client_port;
      reply.seq = server_isn;
      reply.ack = client_isn + 1;
      out.push_back({*hs.syn_ack_time, net::make_syn_ack(reply)});

      if (config.emit_final_ack) {
        net::TcpPacketSpec ack = spec;
        ack.flags = net::TcpFlags::ack_only();
        ack.seq = client_isn + 1;
        ack.ack = server_isn + 1;
        // The ACK leaves the client half an RTT after the SYN/ACK arrives;
        // reuse the SYN->SYN/ACK gap as the RTT estimate.
        const util::SimTime rtt = *hs.syn_ack_time - hs.syn_times.back();
        out.push_back({*hs.syn_ack_time + util::SimTime{rtt.ns() / 2},
                       net::make_tcp_packet(ack)});
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const TimedPacket& a, const TimedPacket& b) {
              return a.at < b.at;
            });
  return out;
}

std::vector<TimedPacket> render_attack(
    const std::vector<util::SimTime>& syn_times,
    const AttackRenderConfig& config) {
  if (config.attacker_hosts.empty()) {
    throw std::invalid_argument("render_attack: need at least one attacker");
  }
  util::Rng rng{config.seed};
  std::vector<TimedPacket> out;
  out.reserve(syn_times.size());
  const std::uint64_t pool = config.spoof_pool.size();

  for (util::SimTime at : syn_times) {
    const std::uint32_t attacker = config.attacker_hosts[
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.attacker_hosts.size()) - 1))];
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(attacker);
    spec.dst_mac = config.router_mac;
    // Spoofed, unreachable source: the victim's SYN/ACKs go nowhere, so no
    // RST ever resets the half-open connection (paper §1).
    spec.src_ip = config.spoof_pool.host(static_cast<std::uint32_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(pool - 2))));
    spec.dst_ip = config.victim;
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    spec.dst_port = config.victim_port;
    spec.seq = rng.next_u32();
    out.push_back({at, net::make_syn(spec)});
  }
  return out;
}

std::vector<TimedPacket> merge_packets(std::vector<TimedPacket> a,
                                       std::vector<TimedPacket> b) {
  std::vector<TimedPacket> out;
  out.reserve(a.size() + b.size());
  std::merge(std::make_move_iterator(a.begin()),
             std::make_move_iterator(a.end()),
             std::make_move_iterator(b.begin()),
             std::make_move_iterator(b.end()), std::back_inserter(out),
             [](const TimedPacket& x, const TimedPacket& y) {
               return x.at < y.at;
             });
  return out;
}

}  // namespace syndog::trace
