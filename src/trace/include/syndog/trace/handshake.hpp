// TCP three-way-handshake outcome model.
//
// For every connection attempt, this decides what the *leaf router* sees:
// which SYN (re)transmissions cross it and whether/when a SYN/ACK comes
// back. The paper attributes SYN–SYN/ACK discrepancy to two causes — SYN
// requests dropped by overloaded servers, and SYNs lost on a congested
// forwarding path — both of which collapse, from the router's viewpoint,
// into "this transmission produced no SYN/ACK", modeled here as a
// per-transmission no-answer probability.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "syndog/trace/arrivals.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::trace {

/// Direction of a connection relative to the stub network.
enum class Direction : std::uint8_t {
  kOutbound = 0,  ///< client inside the stub, server on the Internet
  kInbound = 1,   ///< client on the Internet, server inside the stub
};

struct HandshakeParams {
  /// Probability that one SYN transmission goes unanswered (path loss or
  /// server-overload drop).
  double no_answer_probability = 0.05;
  /// Retransmissions after the initial SYN (2 => the paper's "failure of
  /// two retransmissions", ~75 s half-open lifetime).
  int max_retransmissions = 2;
  /// First retransmission timeout; doubles each retry (3 s, 6 s, ...).
  double initial_rto_s = 3.0;
  /// Lognormal RTT of the SYN -> SYN/ACK pair, parameterized by median and
  /// dispersion (sigma of the underlying normal).
  double rtt_median_s = 0.120;
  double rtt_sigma = 0.35;

  void validate() const;
};

/// What the leaf router records for one connection attempt.
struct Handshake {
  Direction direction = Direction::kOutbound;
  /// Every SYN transmission crossing the router (initial + retransmissions),
  /// ascending.
  std::vector<util::SimTime> syn_times;
  /// The SYN/ACK crossing the router in the reverse direction, if the
  /// handshake was ever answered.
  std::optional<util::SimTime> syn_ack_time;

  [[nodiscard]] bool answered() const { return syn_ack_time.has_value(); }
  [[nodiscard]] util::SimTime first_syn() const { return syn_times.front(); }
};

/// A generated background trace: all handshakes of one site, one direction.
struct ConnectionTrace {
  util::SimTime duration;
  std::vector<Handshake> handshakes;  ///< sorted by first SYN time

  [[nodiscard]] std::size_t attempts() const { return handshakes.size(); }
  [[nodiscard]] std::size_t total_syns() const;
  [[nodiscard]] std::size_t total_syn_acks() const;
};

/// Time-varying no-answer probability: the base rate plus transient
/// elevated windows (remote outages, congestion events, flash crowds
/// hitting dead servers). These windows are what produces the small
/// isolated spikes of {yn} the paper observes under normal operation
/// (Fig. 5) — without them a well-provisioned site never accumulates.
class LossProcess {
 public:
  explicit LossProcess(double base_probability);

  /// Adds one elevated window; overlapping windows take the max.
  void add_window(util::SimTime start, util::SimTime duration,
                  double probability);

  /// No-answer probability in effect at `at`.
  [[nodiscard]] double at(util::SimTime at) const;
  [[nodiscard]] double base() const { return base_; }
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }

  /// Poisson-placed disruption windows over [0, duration): on average
  /// `events_per_hour` events of exponential mean length
  /// `mean_event_seconds` (truncated at `max_event_seconds`; 0 = no cap),
  /// each raising the probability to `event_p`. The cap bounds how much
  /// the CUSUM statistic can accumulate across one event, which is what
  /// keeps normal-operation spikes below the flooding threshold.
  [[nodiscard]] static LossProcess with_random_disruptions(
      double base_probability, util::SimTime duration,
      double events_per_hour, double mean_event_seconds, double event_p,
      util::Rng& rng, double max_event_seconds = 0.0);

 private:
  struct Window {
    util::SimTime start;
    util::SimTime end;
    double probability;
  };
  double base_;
  std::vector<Window> windows_;  ///< sorted by start
};

/// Expands arrival times into handshakes. SYN/ACKs may land after
/// `duration`; they are kept (period extraction clips as needed).
[[nodiscard]] ConnectionTrace generate_trace(const ArrivalModel& arrivals,
                                             util::SimTime duration,
                                             const HandshakeParams& params,
                                             Direction direction,
                                             util::Rng& rng);

/// As above, with a time-varying no-answer probability; each SYN
/// transmission consults `loss.at()` at its own emission time (so a
/// retransmission during an outage fails with the elevated probability).
[[nodiscard]] ConnectionTrace generate_trace(const ArrivalModel& arrivals,
                                             util::SimTime duration,
                                             const HandshakeParams& params,
                                             const LossProcess& loss,
                                             Direction direction,
                                             util::Rng& rng);

/// Merges two traces (e.g. outbound + inbound of a bidirectional site).
/// Durations must match.
[[nodiscard]] ConnectionTrace merge_traces(ConnectionTrace a,
                                           ConnectionTrace b);

/// Closed-form calibration helpers for the no-answer model with
/// per-transmission loss p and R retransmissions:
///   expected SYNs per attempt      = 1 + p + ... + p^R
///   P(attempt ever answered)       = 1 - p^(R+1)
///   c = E[Delta]/E[SYNACK]         = (sum_{k=1..R+1} p^k) / (1 - p^(R+1))
[[nodiscard]] double expected_syns_per_attempt(double p, int retx);
[[nodiscard]] double answer_probability(double p, int retx);
[[nodiscard]] double normalized_difference_mean(double p, int retx);

}  // namespace syndog::trace
