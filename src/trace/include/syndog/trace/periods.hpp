// Per-observation-period count extraction.
//
// SYN-dog's sniffers reduce a packet stream to four counters per period
// t0: outgoing SYNs, incoming SYN/ACKs (the pair the detector uses at the
// first mile), and the mirror pair for inbound connections. This header
// performs the same reduction directly on ConnectionTrace objects — the
// trace-driven-simulation path of the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/trace/handshake.hpp"
#include "syndog/util/time.hpp"

namespace syndog::trace {

struct PeriodSeries {
  util::SimTime period;  ///< t0
  /// One entry per observation period, index n = [n*t0, (n+1)*t0).
  std::vector<std::int64_t> out_syn;
  std::vector<std::int64_t> in_syn_ack;
  std::vector<std::int64_t> in_syn;
  std::vector<std::int64_t> out_syn_ack;

  [[nodiscard]] std::size_t size() const { return out_syn.size(); }

  /// Totals across directions (what the LBL/Harvard bidirectional figures
  /// plot: "SYN" and "SYN/ACK" collected from both directions).
  [[nodiscard]] std::vector<std::int64_t> syn_both_directions() const;
  [[nodiscard]] std::vector<std::int64_t> syn_ack_both_directions() const;

  /// Adds `extra` SYNs to the outbound-SYN counter of each period
  /// (attack-traffic injection); sizes must match.
  void add_outbound_syns(const std::vector<std::int64_t>& extra);

  [[nodiscard]] static std::vector<double> to_double(
      const std::vector<std::int64_t>& xs);
};

/// Buckets a trace's router events into periods of length t0 over
/// [0, trace.duration). SYN/ACKs landing past the end are dropped, matching
/// a finite capture.
[[nodiscard]] PeriodSeries extract_periods(const ConnectionTrace& trace,
                                           util::SimTime period);

/// Buckets raw event times (e.g. flood SYN emissions) into periods aligned
/// with a series of `num_periods` periods of length `period`.
[[nodiscard]] std::vector<std::int64_t> bucket_times(
    const std::vector<util::SimTime>& times, util::SimTime period,
    std::size_t num_periods);

}  // namespace syndog::trace
