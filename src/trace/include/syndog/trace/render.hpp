// Rendering a logical trace as timestamped packets.
//
// ConnectionTrace records only what the detector needs (SYN/SYN-ACK times
// and directions); this module expands it into full Ethernet/IPv4/TCP
// packets — addresses, ports, sequence numbers, final ACKs — so the same
// workload can be written to pcap, replayed through the simulator, or fed
// to the frame-level classifier. The expansion is deterministic in the
// seed.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/trace/handshake.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::trace {

struct TimedPacket {
  util::SimTime at;
  net::Packet packet;
};

struct RenderConfig {
  /// Addresses of hosts inside the stub network.
  net::Ipv4Prefix stub_prefix =
      *net::Ipv4Prefix::parse("10.1.0.0/16");
  /// Addresses representing the rest of the Internet.
  net::Ipv4Prefix internet_prefix =
      *net::Ipv4Prefix::parse("128.0.0.0/8");
  std::uint32_t stub_hosts = 250;
  std::uint32_t internet_hosts = 4096;
  /// MAC of the leaf router's intranet-facing interface. Frames leaving
  /// the stub carry (host MAC -> router MAC); frames entering carry
  /// (router MAC -> host MAC) — what a tap at the leaf router captures.
  net::MacAddress router_mac = net::MacAddress::for_host(0xffffff);
  std::uint64_t seed = 1;
  /// Emit the client's final handshake ACK (one RTT/2 after the SYN/ACK).
  bool emit_final_ack = true;
};

/// Expands a background trace into a time-sorted packet sequence.
[[nodiscard]] std::vector<TimedPacket> render_trace(
    const ConnectionTrace& trace, const RenderConfig& config);

/// Renders attack SYNs: spoofed source addresses drawn from the given
/// pool prefix (unreachable space), fixed victim, source MACs of the
/// `attacker_hosts` compromised stub machines. Times must be sorted.
struct AttackRenderConfig {
  net::Ipv4Prefix spoof_pool = *net::Ipv4Prefix::parse("240.0.0.0/8");
  net::Ipv4Address victim{198, 51, 100, 10};
  std::uint16_t victim_port = 80;
  std::vector<std::uint32_t> attacker_hosts = {7};  ///< stub host indices
  net::MacAddress router_mac = net::MacAddress::for_host(0xffffff);
  std::uint64_t seed = 99;
};

[[nodiscard]] std::vector<TimedPacket> render_attack(
    const std::vector<util::SimTime>& syn_times,
    const AttackRenderConfig& config);

/// Merges packet sequences into one time-sorted sequence.
[[nodiscard]] std::vector<TimedPacket> merge_packets(
    std::vector<TimedPacket> a, std::vector<TimedPacket> b);

}  // namespace syndog::trace
