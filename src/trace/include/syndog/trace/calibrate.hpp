// Site calibration from observed counts.
//
// Turns per-period SYN / SYN-ACK counts — from any capture or live
// counters — into (a) a statistical site profile, (b) detector
// parameters recommended by the same c + k*sigma rule AdaptiveSynDog
// learns online, and (c) a synthetic SiteSpec whose generated traces
// match the observed level, imbalance, and burstiness. This is how a
// deployment bootstraps SYN-dog (and this repository's experiments) from
// its *own* traffic instead of the paper's four sites.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/trace/site.hpp"
#include "syndog/util/time.hpp"

namespace syndog::trace {

struct SiteProfile {
  std::size_t periods = 0;
  util::SimTime period = kObservationPeriod;
  double k_bar = 0.0;      ///< mean SYN/ACKs per period
  double k_stddev = 0.0;
  double k_cv = 0.0;       ///< burstiness of the SYN/ACK level
  double c = 0.0;          ///< mean normalized difference E[(S-A)/A]
  double x_sigma = 0.0;    ///< stddev of the normalized difference
  /// Recommended detector parameters: a = clamp(c + 6*sigma, .05, .35),
  /// N = 3a (the design rule of paper §3.2 / AdaptiveSynDog).
  double recommended_a = 0.35;
  double recommended_threshold = 1.05;
  /// Eq. (8) floors under the recommended and universal parameters.
  double floor_recommended = 0.0;
  double floor_universal = 0.0;
};

/// Profiles parallel per-period count series (sizes must match, >= 2).
[[nodiscard]] SiteProfile profile_counts(
    const std::vector<std::int64_t>& syns,
    const std::vector<std::int64_t>& syn_acks,
    util::SimTime period = kObservationPeriod);

/// Builds a synthetic SiteSpec replaying the profile's statistics:
/// matching K-bar (via the outbound rate and the loss probability that
/// reproduces c) and approximating the burstiness via the ON/OFF source
/// count (relative fluctuation ~ 1/sqrt(sources)). `duration` bounds the
/// generated traces.
[[nodiscard]] SiteSpec spec_from_profile(const SiteProfile& profile,
                                         util::SimTime duration);

}  // namespace syndog::trace
