// Synthetic site presets standing in for the paper's four trace sets.
//
// The original captures (LBL 1994, Harvard 1997, UNC 2000, Auckland 2000)
// are not redistributable, so each preset is calibrated to the statistics
// the paper's figures and tables imply — see DESIGN.md §5 for the
// derivation. What the detector consumes is per-period SYN / SYN-ACK
// counts, so matching K-bar (mean SYN/ACKs per period), the normal-mode
// normalized difference c, duration, directionality, and count burstiness
// reproduces the detector-relevant behaviour of the originals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "syndog/trace/arrivals.hpp"
#include "syndog/trace/handshake.hpp"
#include "syndog/trace/periods.hpp"

namespace syndog::trace {

enum class SiteId : std::uint8_t { kLbl, kHarvard, kUnc, kAuckland };

/// Which arrival process generates connection starts; the ablation bench
/// sweeps this to demonstrate model-insensitivity (paper §3.2).
enum class ArrivalKind : std::uint8_t { kPoisson, kMmpp, kParetoOnOff, kWeibull };

[[nodiscard]] std::string_view to_string(SiteId site);
[[nodiscard]] std::string_view to_string(ArrivalKind kind);

struct SiteSpec {
  std::string name;
  util::SimTime duration;
  /// Bidirectional sites (LBL, Harvard) carry client traffic in both
  /// directions and the paper plots both directions' SYN / SYN/ACK
  /// combined; unidirectional pairs (UNC, Auckland) are plotted as
  /// outgoing-SYN vs incoming-SYN/ACK.
  bool bidirectional = false;
  double outbound_rate = 1.0;  ///< mean outbound connection attempts /s
  double inbound_rate = 0.0;   ///< mean inbound connection attempts /s
  ArrivalKind arrival_kind = ArrivalKind::kParetoOnOff;
  /// ON/OFF source count for the Pareto model: fewer sources = burstier
  /// per-period counts (relative fluctuation ~ 1/sqrt(sources)).
  int onoff_sources = 50;
  HandshakeParams handshake;
  /// Transient disruption events (remote outages / congestion windows):
  /// Poisson rate, mean length, and the elevated no-answer probability in
  /// effect during one. These produce the rare small {yn} spikes of
  /// Fig. 5; magnitudes are calibrated per site in site.cpp.
  double disruptions_per_hour = 0.0;
  double disruption_mean_s = 20.0;
  double disruption_max_s = 40.0;
  double disruption_p = 0.5;

  /// Calibration targets implied by the paper (see DESIGN.md §5); tests
  /// check generated traces stay near them.
  double expected_syn_ack_per_period = 0.0;  ///< K-bar at t0 = 20 s
  double expected_c = 0.0;                   ///< E[(SYN-SYNACK)/K]
};

/// The calibrated preset for each site.
[[nodiscard]] SiteSpec site_spec(SiteId site);

/// Builds the arrival model a spec (or an ablation override) asks for,
/// with the given mean rate.
[[nodiscard]] std::unique_ptr<ArrivalModel> make_arrival_model(
    ArrivalKind kind, double rate_per_second, int onoff_sources);

/// Generates the full background trace of a site: outbound connections,
/// plus inbound ones when the site carries them. Deterministic in `seed`.
[[nodiscard]] ConnectionTrace generate_site_trace(const SiteSpec& spec,
                                                  std::uint64_t seed);

/// The paper's observation period.
inline constexpr util::SimTime kObservationPeriod = util::SimTime::seconds(20);

/// A flash crowd: a surge of *legitimate* connections (every SYN earns
/// its SYN/ACK) at `multiplier`x the site's base outbound rate during
/// [start, start+duration). Because both counters rise together, the
/// normalized difference stays near c and SYN-dog must stay quiet — the
/// discrimination a raw SYN-rate threshold cannot make. (The flash-crowd
/// bench also shows the one caveat: an extreme, instant surge transiently
/// inflates Xn until the K estimate catches up.)
/// The returned trace covers [0, spec.duration) with activity only inside
/// the surge window; merge it with the background trace.
[[nodiscard]] ConnectionTrace generate_flash_crowd(const SiteSpec& spec,
                                                   util::SimTime start,
                                                   util::SimTime duration,
                                                   double multiplier,
                                                   std::uint64_t seed);

}  // namespace syndog::trace
