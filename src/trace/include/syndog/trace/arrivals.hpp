// TCP connection-arrival models.
//
// The paper stresses (§3.2) that there is no consensus on modeling TCP
// connection arrivals — Poisson vs self-similar — and chooses a
// non-parametric detector precisely so the answer doesn't matter. We
// implement several models spanning that disagreement; the ablation bench
// verifies SYN-dog behaves the same under all of them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::trace {

/// Generates the start times of TCP connection attempts on [0, duration).
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  /// Returned times are sorted ascending.
  [[nodiscard]] virtual std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const = 0;
  /// Long-run mean arrival rate in connections/second (for calibration).
  [[nodiscard]] virtual double mean_rate() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Homogeneous Poisson process.
class PoissonArrivals final : public ArrivalModel {
 public:
  explicit PoissonArrivals(double rate_per_second);

  [[nodiscard]] std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const override;
  [[nodiscard]] double mean_rate() const override { return rate_; }
  [[nodiscard]] std::string_view name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Two-state Markov-modulated Poisson process: rate r0 while in state 0,
/// r1 in state 1, exponential sojourn times. Captures minute-scale
/// burstiness (busy/quiet alternation).
class MmppArrivals final : public ArrivalModel {
 public:
  MmppArrivals(double rate0, double rate1, double mean_sojourn0_s,
               double mean_sojourn1_s);

  [[nodiscard]] std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string_view name() const override { return "mmpp"; }

 private:
  double rate0_;
  double rate1_;
  double sojourn0_;
  double sojourn1_;
};

/// Superposition of ON/OFF sources with Pareto-distributed ON and OFF
/// durations (shape in (1,2)), the standard construction of self-similar
/// traffic (Willinger et al.). Each source emits Poisson arrivals at
/// `per_source_on_rate` while ON.
class ParetoOnOffArrivals final : public ArrivalModel {
 public:
  struct Params {
    int sources = 50;
    double per_source_on_rate = 1.0;  ///< conn/s while ON
    double pareto_shape = 1.5;        ///< alpha in (1,2): heavy tail
    double mean_on_s = 10.0;
    double mean_off_s = 30.0;
  };
  explicit ParetoOnOffArrivals(Params params);

  [[nodiscard]] std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string_view name() const override {
    return "pareto-onoff";
  }

  /// Pareto xm giving the requested mean for the configured shape.
  [[nodiscard]] static double xm_for_mean(double mean, double shape);

 private:
  Params params_;
};

/// Renewal process with Weibull inter-arrivals; shape < 1 yields bursty,
/// long-range-flavored gaps (Feldmann's TCP arrival fits).
class WeibullRenewalArrivals final : public ArrivalModel {
 public:
  WeibullRenewalArrivals(double rate_per_second, double shape);

  [[nodiscard]] std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const override;
  [[nodiscard]] double mean_rate() const override { return rate_; }
  [[nodiscard]] std::string_view name() const override {
    return "weibull-renewal";
  }

 private:
  double rate_;
  double shape_;
  double scale_;  ///< derived so the mean inter-arrival is 1/rate
};

/// Wraps another model with sinusoidal time-of-day modulation via thinning:
/// instantaneous rate = base(t) * (1 + amplitude * sin(2*pi*t/period)).
/// The inner model is generated at peak rate and arrivals are thinned.
class DiurnalModulation final : public ArrivalModel {
 public:
  DiurnalModulation(std::shared_ptr<const ArrivalModel> inner,
                    double amplitude, util::SimTime period);

  [[nodiscard]] std::vector<util::SimTime> generate(
      util::SimTime duration, util::Rng& rng) const override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string_view name() const override { return "diurnal"; }

 private:
  std::shared_ptr<const ArrivalModel> inner_;
  double amplitude_;
  util::SimTime period_;
};

}  // namespace syndog::trace
