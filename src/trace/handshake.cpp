#include "syndog/trace/handshake.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace syndog::trace {

void HandshakeParams::validate() const {
  if (!(no_answer_probability >= 0.0 && no_answer_probability < 1.0)) {
    throw std::invalid_argument(
        "HandshakeParams: no_answer_probability in [0,1)");
  }
  if (max_retransmissions < 0 || max_retransmissions > 10) {
    throw std::invalid_argument(
        "HandshakeParams: max_retransmissions in [0,10]");
  }
  if (!(initial_rto_s > 0.0) || !(rtt_median_s > 0.0) || !(rtt_sigma >= 0.0)) {
    throw std::invalid_argument("HandshakeParams: bad timing parameters");
  }
}

std::size_t ConnectionTrace::total_syns() const {
  std::size_t n = 0;
  for (const Handshake& hs : handshakes) n += hs.syn_times.size();
  return n;
}

std::size_t ConnectionTrace::total_syn_acks() const {
  std::size_t n = 0;
  for (const Handshake& hs : handshakes) n += hs.answered() ? 1 : 0;
  return n;
}

LossProcess::LossProcess(double base_probability) : base_(base_probability) {
  if (!(base_ >= 0.0 && base_ < 1.0)) {
    throw std::invalid_argument("LossProcess: base probability in [0,1)");
  }
}

void LossProcess::add_window(util::SimTime start, util::SimTime duration,
                             double probability) {
  if (duration <= util::SimTime::zero() ||
      !(probability >= 0.0 && probability < 1.0)) {
    throw std::invalid_argument("LossProcess: bad window");
  }
  windows_.push_back(Window{start, start + duration, probability});
  std::sort(windows_.begin(), windows_.end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
}

double LossProcess::at(util::SimTime at) const {
  double p = base_;
  for (const Window& w : windows_) {
    if (w.start > at) break;
    if (at < w.end) p = std::max(p, w.probability);
  }
  return p;
}

LossProcess LossProcess::with_random_disruptions(
    double base_probability, util::SimTime duration, double events_per_hour,
    double mean_event_seconds, double event_p, util::Rng& rng,
    double max_event_seconds) {
  LossProcess loss(base_probability);
  if (events_per_hour <= 0.0) return loss;
  const double mean_gap_s = 3600.0 / events_per_hour;
  double t = rng.exponential_mean(mean_gap_s);
  const double end = duration.to_seconds();
  while (t < end) {
    double len = std::max(rng.exponential_mean(mean_event_seconds), 0.5);
    if (max_event_seconds > 0.0) len = std::min(len, max_event_seconds);
    loss.add_window(util::SimTime::from_seconds(t),
                    util::SimTime::from_seconds(len), event_p);
    t += len + rng.exponential_mean(mean_gap_s);
  }
  return loss;
}

ConnectionTrace generate_trace(const ArrivalModel& arrivals,
                               util::SimTime duration,
                               const HandshakeParams& params,
                               Direction direction, util::Rng& rng) {
  return generate_trace(arrivals, duration, params,
                        LossProcess{params.no_answer_probability}, direction,
                        rng);
}

ConnectionTrace generate_trace(const ArrivalModel& arrivals,
                               util::SimTime duration,
                               const HandshakeParams& params,
                               const LossProcess& loss, Direction direction,
                               util::Rng& rng) {
  params.validate();
  ConnectionTrace trace;
  trace.duration = duration;
  const std::vector<util::SimTime> starts = arrivals.generate(duration, rng);
  trace.handshakes.reserve(starts.size());

  const double mu = std::log(params.rtt_median_s);
  for (util::SimTime start : starts) {
    Handshake hs;
    hs.direction = direction;
    double rto = params.initial_rto_s;
    util::SimTime at = start;
    for (int attempt = 0; attempt <= params.max_retransmissions; ++attempt) {
      hs.syn_times.push_back(at);
      if (!rng.bernoulli(loss.at(at))) {
        const double rtt = rng.lognormal(mu, params.rtt_sigma);
        hs.syn_ack_time = at + util::SimTime::from_seconds(rtt);
        break;
      }
      at += util::SimTime::from_seconds(rto);
      rto *= 2.0;
    }
    trace.handshakes.push_back(std::move(hs));
  }
  return trace;
}

ConnectionTrace merge_traces(ConnectionTrace a, ConnectionTrace b) {
  if (a.duration != b.duration) {
    throw std::invalid_argument("merge_traces: duration mismatch");
  }
  ConnectionTrace out;
  out.duration = a.duration;
  out.handshakes.reserve(a.handshakes.size() + b.handshakes.size());
  std::merge(std::make_move_iterator(a.handshakes.begin()),
             std::make_move_iterator(a.handshakes.end()),
             std::make_move_iterator(b.handshakes.begin()),
             std::make_move_iterator(b.handshakes.end()),
             std::back_inserter(out.handshakes),
             [](const Handshake& x, const Handshake& y) {
               return x.first_syn() < y.first_syn();
             });
  return out;
}

double expected_syns_per_attempt(double p, int retx) {
  double sum = 0.0;
  double pk = 1.0;
  for (int k = 0; k <= retx; ++k) {
    sum += pk;
    pk *= p;
  }
  return sum;
}

double answer_probability(double p, int retx) {
  return 1.0 - std::pow(p, retx + 1);
}

double normalized_difference_mean(double p, int retx) {
  const double answered = answer_probability(p, retx);
  if (answered <= 0.0) return std::numeric_limits<double>::infinity();
  return (expected_syns_per_attempt(p, retx) - answered) / answered;
}

}  // namespace syndog::trace
