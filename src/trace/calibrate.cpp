#include "syndog/trace/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "syndog/stats/online.hpp"

namespace syndog::trace {

namespace {

/// Inverts c = (p + p^2 + p^3) / (1 - p^3) for p by bisection.
double loss_for_c(double c) {
  if (c <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = 0.9;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (normalized_difference_mean(mid, 2) < c) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

SiteProfile profile_counts(const std::vector<std::int64_t>& syns,
                           const std::vector<std::int64_t>& syn_acks,
                           util::SimTime period) {
  if (syns.size() != syn_acks.size()) {
    throw std::invalid_argument("profile_counts: series size mismatch");
  }
  if (syns.size() < 2) {
    throw std::invalid_argument("profile_counts: need at least 2 periods");
  }
  if (period <= util::SimTime::zero()) {
    throw std::invalid_argument("profile_counts: period must be positive");
  }

  stats::OnlineStats k_stats;
  stats::OnlineStats x_stats;
  for (std::size_t i = 0; i < syns.size(); ++i) {
    k_stats.add(static_cast<double>(syn_acks[i]));
    const double k_ref =
        std::max(1.0, static_cast<double>(syn_acks[i]));
    x_stats.add(static_cast<double>(syns[i] - syn_acks[i]) / k_ref);
  }

  SiteProfile profile;
  profile.periods = syns.size();
  profile.period = period;
  profile.k_bar = k_stats.mean();
  profile.k_stddev = k_stats.stddev();
  profile.k_cv = k_stats.cv();
  profile.c = x_stats.mean();
  profile.x_sigma = x_stats.stddev();
  profile.recommended_a =
      std::clamp(profile.c + 6.0 * profile.x_sigma, 0.05, 0.35);
  profile.recommended_threshold = 3.0 * profile.recommended_a;
  profile.floor_recommended = (profile.recommended_a - profile.c) *
                              profile.k_bar / period.to_seconds();
  profile.floor_universal =
      (0.35 - profile.c) * profile.k_bar / period.to_seconds();
  return profile;
}

SiteSpec spec_from_profile(const SiteProfile& profile,
                           util::SimTime duration) {
  if (profile.k_bar <= 0.0) {
    throw std::invalid_argument("spec_from_profile: empty profile");
  }
  if (duration < profile.period) {
    throw std::invalid_argument(
        "spec_from_profile: duration shorter than one period");
  }
  SiteSpec spec;
  spec.name = "calibrated";
  spec.duration = duration;
  spec.bidirectional = false;
  spec.inbound_rate = 0.0;

  // Loss probability reproducing the observed normalized difference,
  // then the attempt rate reproducing the observed SYN/ACK level.
  const double p = loss_for_c(std::max(profile.c, 0.0));
  spec.handshake.no_answer_probability = p;
  spec.outbound_rate = profile.k_bar /
                       (profile.period.to_seconds() *
                        answer_probability(p, 2));

  // ON/OFF source count approximating the observed burstiness: with duty
  // cycle 1/3 the superposition's level fluctuates with cv ~ sqrt(2/N),
  // on top of ~1/sqrt(K) Poisson noise.
  const double poisson_var = 1.0 / profile.k_bar;
  const double source_var =
      std::max(profile.k_cv * profile.k_cv - poisson_var, 1e-4);
  spec.onoff_sources = static_cast<int>(
      std::clamp(2.0 / source_var, 4.0, 500.0));

  spec.disruptions_per_hour = 0.0;  // disruptions are site-specific noise
  spec.expected_syn_ack_per_period = profile.k_bar;
  spec.expected_c = profile.c;
  return spec;
}

}  // namespace syndog::trace
