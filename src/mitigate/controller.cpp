#include "syndog/mitigate/controller.hpp"

#include <algorithm>

#include "syndog/core/locator.hpp"

namespace syndog::mitigate {

std::uint64_t mac_to_u64(net::MacAddress mac) {
  std::uint64_t v = 0;
  for (const std::uint8_t b : mac.bytes()) v = (v << 8) | b;
  return v;
}

MitigationController::MitigationController(core::SynDogAgent& agent,
                                           sim::LeafRouter& router,
                                           MitigationPolicy policy)
    : agent_(agent), stub_prefix_(router.stub_prefix()),
      policy_(policy) {
  policy_.validate();
  release_threshold_ =
      policy_.release_fraction * agent_.detector().params().threshold;
  if (!policy_.enabled()) return;  // empty policy: install nothing
  agent_.add_period_callback(
      [this](const core::PeriodReport& report, core::AgentHealth health,
             util::SimTime now) { on_period(report, health, now); });
  router.set_egress_policer(
      [this](util::SimTime now, const net::Packet& packet) {
        return police(now, packet);
      });
}

void MitigationController::attach_observer(obs::EventTracer* tracer,
                                           obs::Registry& registry) {
  tracer_ = tracer;
  registry_ = &registry;
}

void MitigationController::add_edge_listener(EdgeListener listener) {
  if (listener) edge_listeners_.push_back(std::move(listener));
}

Stage MitigationController::stage_of(net::MacAddress mac) const {
  const auto it = targets_.find(mac);
  return it == targets_.end() ? Stage::kObserve : it->second.stage;
}

Stage MitigationController::aggregate_stage() const {
  Stage worst = Stage::kObserve;
  for (const auto& [mac, target] : targets_) {
    worst = std::max(worst, target.stage);
  }
  return worst;
}

void MitigationController::count(obs::Counter*& slot, const char* name) {
  if (slot == nullptr && registry_ != nullptr) {
    slot = &registry_->counter(std::string("mitigate.") + name);
  }
  if (slot != nullptr) slot->add();
}

void MitigationController::transition(util::SimTime now, net::MacAddress mac,
                                      Target& target, Stage to,
                                      EdgeReason reason) {
  const Stage from = target.stage;
  target.stage = to;
  switch (reason) {
    case EdgeReason::kEngage:
      ++stats_.engagements;
      count(engagements_counter_, "engagements");
      break;
    case EdgeReason::kEscalate:
      ++stats_.escalations;
      count(escalations_counter_, "escalations");
      break;
    case EdgeReason::kRelease:
      ++stats_.releases;
      count(releases_counter_, "releases");
      break;
    case EdgeReason::kProbePassed:
      ++stats_.releases;
      count(releases_counter_, "releases");
      break;
    case EdgeReason::kProbeFailed:
      ++stats_.probe_failures;
      count(probe_failures_counter_, "probe_failures");
      break;
  }
  if (to == Stage::kQuarantine) ++stats_.quarantine_entries;
  if (to == Stage::kObserve) ++stats_.full_releases;
  if (tracer_ != nullptr) {
    tracer_->record(now, obs::MitigationEdge{
                             mac_to_u64(mac), static_cast<std::uint8_t>(from),
                             static_cast<std::uint8_t>(to),
                             static_cast<std::uint8_t>(reason)});
  }
  const StageEdge edge{now, mac, from, to, reason};
  for (const EdgeListener& listener : edge_listeners_) listener(edge);
}

void MitigationController::refresh_targets() {
  for (const core::Suspect& suspect : agent_.locator().suspects()) {
    if (suspect.spoofed_syns < policy_.min_spoofed_evidence) continue;
    if (targets_.size() >= policy_.max_targets &&
        !targets_.contains(suspect.mac)) {
      continue;  // suspects() is ranked, so the cap keeps the worst
    }
    targets_.try_emplace(suspect.mac);
  }
}

void MitigationController::on_period(const core::PeriodReport& report,
                                     core::AgentHealth health,
                                     util::SimTime now) {
  const bool trusted =
      !policy_.require_healthy || health == core::AgentHealth::kHealthy;

  if (report.alarm && !trusted) {
    // Degraded evidence (post-outage quarantine, collapse fallback, gap
    // accounting): never engage on it, and don't let it advance streaks.
    ++stats_.vetoed_alarm_periods;
    count(vetoed_counter_, "vetoed_alarm_periods");
    return;
  }

  if (report.alarm) {
    refresh_targets();
    for (auto& [mac, target] : targets_) {
      ++target.alarm_streak;
      target.quiet_streak = 0;
      target.clean_periods = 0;
      if (target.stage == Stage::kObserve) {
        if (target.alarm_streak >= policy_.engage_after) {
          if (target.engage_count > 0) {
            target.backoff =
                std::min(target.backoff * 2, policy_.backoff_max);
          }
          ++target.engage_count;
          if (first_stage() == Stage::kRateLimit) {
            target.bucket.emplace(policy_.rate_limit_syn_per_s,
                                  policy_.rate_limit_burst, now);
          }
          transition(now, mac, target, first_stage(), EdgeReason::kEngage);
        }
      } else if (target.stage == Stage::kRateLimit) {
        if (target.probe_remaining > 0) {
          // Alarm during probation: the source was released too early.
          target.probe_remaining = 0;
          target.backoff = std::min(target.backoff * 2, policy_.backoff_max);
          target.bucket.reset();
          transition(now, mac, target, Stage::kQuarantine,
                     EdgeReason::kProbeFailed);
        } else if (policy_.quarantine_enabled &&
                   target.alarm_streak >=
                       policy_.engage_after + policy_.escalate_after) {
          target.bucket.reset();
          transition(now, mac, target, Stage::kQuarantine,
                     EdgeReason::kEscalate);
        }
      }
    }
    return;
  }

  // No alarm this period. A period counts toward release only once the
  // statistic has decayed below the release threshold — hysteresis, so a
  // y hovering just under N cannot ping-pong the stage.
  const bool quiet = report.y < release_threshold_;
  for (auto& [mac, target] : targets_) {
    target.alarm_streak = 0;
    if (!quiet) {
      target.quiet_streak = 0;
      continue;
    }
    ++target.quiet_streak;
    if (target.stage == Stage::kQuarantine) {
      if (target.quiet_streak >= policy_.release_after * target.backoff) {
        target.quiet_streak = 0;
        if (policy_.rate_limit_enabled) {
          target.probe_remaining = policy_.probe_periods;
          target.bucket.emplace(policy_.rate_limit_syn_per_s,
                                policy_.rate_limit_burst, now);
          transition(now, mac, target, Stage::kRateLimit,
                     EdgeReason::kRelease);
          if (target.probe_remaining == 0) continue;  // plain rate-limit
        } else {
          transition(now, mac, target, Stage::kObserve,
                     EdgeReason::kRelease);
        }
      }
    } else if (target.stage == Stage::kRateLimit) {
      if (target.probe_remaining > 0) {
        if (--target.probe_remaining == 0) {
          target.quiet_streak = 0;
          target.bucket.reset();
          transition(now, mac, target, Stage::kObserve,
                     EdgeReason::kProbePassed);
        }
      } else if (target.quiet_streak >=
                 policy_.release_after * target.backoff) {
        target.quiet_streak = 0;
        target.bucket.reset();
        transition(now, mac, target, Stage::kObserve, EdgeReason::kRelease);
      }
    } else {
      ++target.clean_periods;
      if (target.backoff > 1 &&
          target.clean_periods % policy_.backoff_decay_after == 0) {
        target.backoff = std::max<std::int64_t>(1, target.backoff / 2);
      }
    }
  }
}

bool MitigationController::police(util::SimTime now,
                                  const net::Packet& packet) {
  if (targets_.empty()) return false;
  if (!packet.tcp || !packet.is_syn()) return false;
  const auto it = targets_.find(packet.eth.src);
  if (it == targets_.end()) return false;
  Target& target = it->second;
  if (target.stage == Stage::kObserve) return false;
  if (target.stage == Stage::kRateLimit) {
    if (target.bucket && target.bucket->try_consume(now)) {
      ++stats_.throttled_syns;
      count(throttled_counter_, "throttled_syns");
      return false;
    }
  }
  // Quarantined, or rate-limited with no token left: drop, and account
  // the collateral honestly — an in-prefix source address is (or at
  // least claims to be) a legitimate station's traffic.
  if (stub_prefix_.contains(packet.ip.src)) {
    ++stats_.dropped_legit_syns;
    count(dropped_legit_counter_, "dropped_legit_syns");
    // Collateral correction: this SYN was already tapped but will never
    // draw a SYN/ACK because *we* dropped it. Without the deduction the
    // detector reads the throttle's own collateral as unanswered-SYN
    // evidence and the statistic can stay pinned above the release
    // threshold indefinitely (mitigation-induced alarm lock-in). Spoofed
    // drops are deliberately NOT discounted — a throttled flood must
    // keep banking alarm evidence so escalation and release hysteresis
    // see the attack, not the throttle.
    agent_.discount_outbound_syns();
  } else {
    ++stats_.dropped_attack_syns;
    count(dropped_attack_counter_, "dropped_attack_syns");
  }
  return true;
}

}  // namespace syndog::mitigate
