#include "syndog/mitigate/recorder.hpp"

#include "syndog/core/fleet.hpp"

namespace syndog::mitigate {

MitigationRecorder::MitigationRecorder(MitigationController& controller)
    : controller_(controller) {
  controller_.add_edge_listener(
      [this](const MitigationController::StageEdge& edge) { on_edge(edge); });
}

void MitigationRecorder::attach_sink(telemetry::TelemetrySink& sink,
                                     std::string_view name,
                                     std::uint32_t as_number) {
  sink_ = &sink;
  const std::uint32_t agent = sink.register_agent(name, as_number);
  series_ =
      sink.series_id(agent, sink.metric_id(core::kFleetMetricMitigation));
}

util::SimTime MitigationRecorder::seconds_in(Stage stage,
                                             util::SimTime now) const {
  util::SimTime total = stage_time_[static_cast<std::size_t>(stage)];
  if (stage == aggregate_ && now > aggregate_since_) {
    total = total + (now - aggregate_since_);
  }
  return total;
}

void MitigationRecorder::on_edge(
    const MitigationController::StageEdge& edge) {
  edges_.push_back(edge);
  if (!first_engaged_at_ && edge.to != Stage::kObserve) {
    first_engaged_at_ = edge.at;
  }
  if (!first_quarantined_at_ && edge.to == Stage::kQuarantine) {
    first_quarantined_at_ = edge.at;
  }
  // The listener runs after the controller applied the transition, so
  // aggregate_stage() reflects the new per-target stages.
  const Stage aggregate = controller_.aggregate_stage();
  if (aggregate == aggregate_) return;
  if (edge.at > aggregate_since_) {
    auto& slot = stage_time_[static_cast<std::size_t>(aggregate_)];
    slot = slot + (edge.at - aggregate_since_);
  }
  aggregate_ = aggregate;
  aggregate_since_ = edge.at;
  if (aggregate == Stage::kObserve) fully_released_at_ = edge.at;
  if (sink_ != nullptr) {
    sink_->push(series_, edge.at,
                static_cast<double>(static_cast<std::uint8_t>(aggregate)));
  }
}

}  // namespace syndog::mitigate
