// Alarm-driven mitigation controller.
//
// Subscribes to a core::SynDogAgent's period stream and drives the
// MitigationPolicy state machine per flooding source (MAC station, the
// locator's evidence unit), enforcing it with an egress policer on the
// sim::LeafRouter: rate-limited sources pass their SYNs through a token
// bucket, quarantined sources have their SYNs dropped. Non-SYN segments
// are never touched, so established connections survive mitigation.
//
// Trust model: only *healthy* alarm periods drive engagement (when
// policy.require_healthy, the default). The agent's degradation layer
// already withholds alarm callbacks during post-blind quarantine, but the
// period stream still reports alarm=true with health=degraded — the
// controller vetoes those, so a chaos window (tap outage, asymmetric
// route) can never quarantine a station. Discarded periods (blind,
// collapse-absorbed) produce no period callback at all and therefore
// neither engage nor release anything.
//
// An empty policy installs no hooks: construction with
// MitigationPolicy{} leaves the agent and router byte-identical to a run
// without a controller.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "syndog/core/agent.hpp"
#include "syndog/mitigate/policy.hpp"
#include "syndog/mitigate/token_bucket.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/util/time.hpp"

namespace syndog::mitigate {

/// Collateral and decision accounting; every field also lands in lazy
/// "mitigate.*" counters once attach_observer is called.
struct ControllerStats {
  std::uint64_t engagements = 0;       ///< observe -> first enabled stage
  std::uint64_t escalations = 0;       ///< rate-limit -> quarantine
  std::uint64_t quarantine_entries = 0;///< edges entering quarantine
  std::uint64_t releases = 0;          ///< downward stage edges
  std::uint64_t full_releases = 0;     ///< edges arriving back at observe
  std::uint64_t probe_failures = 0;
  std::uint64_t vetoed_alarm_periods = 0;  ///< alarms ignored: not healthy
  std::uint64_t throttled_syns = 0;    ///< SYNs consumed a token and passed
  std::uint64_t dropped_attack_syns = 0;   ///< dropped, spoofed source
  std::uint64_t dropped_legit_syns = 0;    ///< dropped, in-prefix source
};

class MitigationController {
 public:
  /// One stage transition for one policed source.
  struct StageEdge {
    util::SimTime at;
    net::MacAddress target;
    Stage from = Stage::kObserve;
    Stage to = Stage::kObserve;
    EdgeReason reason = EdgeReason::kEngage;
  };
  using EdgeListener = std::function<void(const StageEdge&)>;

  /// Hooks `agent`'s period stream and installs the egress policer on
  /// `router`; both must outlive the controller. A policy with no stage
  /// enabled installs neither hook (the empty-policy no-op invariant).
  MitigationController(core::SynDogAgent& agent, sim::LeafRouter& router,
                       MitigationPolicy policy);

  MitigationController(const MitigationController&) = delete;
  MitigationController& operator=(const MitigationController&) = delete;

  /// Attaches telemetry (both optional; must outlive the controller).
  /// Stage edges are recorded as obs::MitigationEdge events and
  /// "mitigate.*" counters — created lazily, only once a decision
  /// actually happens, so an engagement-free run leaves the registry
  /// untouched.
  void attach_observer(obs::EventTracer* tracer, obs::Registry& registry);

  /// Appends a stage-edge subscriber (MitigationRecorder uses this).
  void add_edge_listener(EdgeListener listener);

  [[nodiscard]] const MitigationPolicy& policy() const { return policy_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  /// Stage of one station (kObserve when untracked).
  [[nodiscard]] Stage stage_of(net::MacAddress mac) const;
  /// Most severe stage across all tracked targets (the telemetry
  /// "mitigation" series value).
  [[nodiscard]] Stage aggregate_stage() const;
  [[nodiscard]] std::size_t target_count() const { return targets_.size(); }

 private:
  struct Target {
    Stage stage = Stage::kObserve;
    std::int64_t alarm_streak = 0;
    std::int64_t quiet_streak = 0;
    std::int64_t probe_remaining = 0;  ///< > 0: on probation at rate-limit
    std::int64_t backoff = 1;          ///< release-streak multiplier
    std::int64_t clean_periods = 0;    ///< at observe, for backoff decay
    std::int64_t engage_count = 0;
    std::optional<TokenBucket> bucket;
  };

  void on_period(const core::PeriodReport& report, core::AgentHealth health,
                 util::SimTime now);
  /// Egress policer: true = drop this packet.
  bool police(util::SimTime now, const net::Packet& packet);
  void refresh_targets();
  void transition(util::SimTime now, net::MacAddress mac, Target& target,
                  Stage to, EdgeReason reason);
  [[nodiscard]] Stage first_stage() const {
    return policy_.rate_limit_enabled ? Stage::kRateLimit
                                      : Stage::kQuarantine;
  }
  void count(obs::Counter*& slot, const char* name);

  core::SynDogAgent& agent_;
  net::Ipv4Prefix stub_prefix_;
  MitigationPolicy policy_;
  double release_threshold_ = 0.0;  ///< release_fraction * N
  ControllerStats stats_;
  // std::map: iterated every period; MacAddress orders via <=> and the
  // deterministic order keeps stage-edge sequences reproducible.
  std::map<net::MacAddress, Target> targets_;
  std::vector<EdgeListener> edge_listeners_;

  // Telemetry (optional; see attach_observer). Counters are lazy.
  obs::EventTracer* tracer_ = nullptr;
  obs::Registry* registry_ = nullptr;
  obs::Counter* engagements_counter_ = nullptr;
  obs::Counter* escalations_counter_ = nullptr;
  obs::Counter* releases_counter_ = nullptr;
  obs::Counter* probe_failures_counter_ = nullptr;
  obs::Counter* vetoed_counter_ = nullptr;
  obs::Counter* dropped_attack_counter_ = nullptr;
  obs::Counter* dropped_legit_counter_ = nullptr;
  obs::Counter* throttled_counter_ = nullptr;
};

/// Packs a MAC into the 48-bit integer obs::MitigationEdge carries.
[[nodiscard]] std::uint64_t mac_to_u64(net::MacAddress mac);

}  // namespace syndog::mitigate
