// Mitigation timeline and collateral recorder.
//
// Subscribes to a MitigationController's stage edges and keeps the
// operator-facing accounting: when mitigation first engaged, when the
// flood's last target was fully released (time-to-mitigate /
// time-to-full-recovery), and how long the stub spent at each aggregate
// stage. attach_sink() streams the aggregate stage into the fleet
// telemetry schema (core::kFleetMetricMitigation), so syndog_fleetctl can
// roll mitigation timelines up next to the alarm timelines they answer.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "syndog/mitigate/controller.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/util/time.hpp"

namespace syndog::mitigate {

class MitigationRecorder {
 public:
  /// Subscribes to `controller` (which must outlive the recorder).
  explicit MitigationRecorder(MitigationController& controller);

  MitigationRecorder(const MitigationRecorder&) = delete;
  MitigationRecorder& operator=(const MitigationRecorder&) = delete;

  /// Registers `name` with the sink (must outlive the recorder) and
  /// pushes one sample per aggregate-stage change under the
  /// core::kFleetMetricMitigation metric.
  void attach_sink(telemetry::TelemetrySink& sink, std::string_view name,
                   std::uint32_t as_number);

  /// First observe -> mitigating edge, if any (time-to-mitigate is this
  /// minus the attack onset the caller knows).
  [[nodiscard]] std::optional<util::SimTime> first_engaged_at() const {
    return first_engaged_at_;
  }
  [[nodiscard]] std::optional<util::SimTime> first_quarantined_at() const {
    return first_quarantined_at_;
  }
  /// Most recent return of the *aggregate* stage to observe — with all
  /// targets released, the stub is fully recovered.
  [[nodiscard]] std::optional<util::SimTime> fully_released_at() const {
    return fully_released_at_;
  }
  /// True while any target sits above observe.
  [[nodiscard]] bool mitigating() const {
    return aggregate_ != Stage::kObserve;
  }

  /// Sim time spent with the aggregate stage at `stage`, evaluated at
  /// `now` (includes the still-open interval).
  [[nodiscard]] util::SimTime seconds_in(Stage stage,
                                         util::SimTime now) const;

  /// Every stage edge seen, in order.
  [[nodiscard]] const std::vector<MitigationController::StageEdge>& edges()
      const {
    return edges_;
  }

 private:
  void on_edge(const MitigationController::StageEdge& edge);

  MitigationController& controller_;
  std::vector<MitigationController::StageEdge> edges_;
  Stage aggregate_ = Stage::kObserve;
  util::SimTime aggregate_since_;
  std::array<util::SimTime, 3> stage_time_{};
  std::optional<util::SimTime> first_engaged_at_;
  std::optional<util::SimTime> first_quarantined_at_;
  std::optional<util::SimTime> fully_released_at_;

  telemetry::TelemetrySink* sink_ = nullptr;
  std::uint32_t series_ = 0;
};

}  // namespace syndog::mitigate
