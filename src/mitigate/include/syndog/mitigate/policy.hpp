// Staged mitigation policy (ROADMAP item 3; paper §1's localization
// claim, finally acted on).
//
// When a first-mile SYN-dog alarms, the leaf router knows which stations
// are emitting spoofed-source SYNs (core::SourceLocator). The response is
// a per-source staged state machine:
//
//   observe ── engage ──> rate-limit ── escalate ──> quarantine
//      ^                     │  ^                        │
//      └──── probe passed ───┘  └──── release (probe) ───┘
//
// with hysteresis on every transition (consecutive-period streaks, not
// single edges) and exponential re-arm backoff on re-engagement, mirroring
// the agent health machine's tap-outage quarantine pattern — a flapping or
// degraded detector cannot oscillate the throttle.
//
// MitigationPolicy holds every knob. A default-constructed policy is
// *empty*: no stage is enabled, and a MitigationController built from it
// installs no hooks at all — the run is byte-identical to one without a
// controller (the fault-subsystem invariant).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace syndog::mitigate {

/// Per-source response stage, ordered by severity. The numeric values are
/// the telemetry encoding (core::kFleetMetricMitigation samples).
enum class Stage : std::uint8_t {
  kObserve = 0,    ///< listed as a suspect; traffic untouched
  kRateLimit = 1,  ///< SYNs pass through a token bucket
  kQuarantine = 2, ///< SYNs dropped outright
};

[[nodiscard]] constexpr const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kObserve: return "observe";
    case Stage::kRateLimit: return "rate-limit";
    case Stage::kQuarantine: return "quarantine";
  }
  return "?";
}

/// Why a stage transition happened (exported in obs::MitigationEdge).
enum class EdgeReason : std::uint8_t {
  kEngage = 0,       ///< observe -> first enabled stage (alarm streak)
  kEscalate = 1,     ///< rate-limit -> quarantine (alarm persisted)
  kRelease = 2,      ///< one stage down (quiet streak completed)
  kProbePassed = 3,  ///< probation at rate-limit ended quiet -> observe
  kProbeFailed = 4,  ///< alarm during probation -> re-quarantine
};

[[nodiscard]] constexpr const char* to_string(EdgeReason reason) {
  switch (reason) {
    case EdgeReason::kEngage: return "engage";
    case EdgeReason::kEscalate: return "escalate";
    case EdgeReason::kRelease: return "release";
    case EdgeReason::kProbePassed: return "probe-passed";
    case EdgeReason::kProbeFailed: return "probe-failed";
  }
  return "?";
}

struct MitigationPolicy {
  /// Stage enablement. Both false (the default) = empty policy: the
  /// controller installs nothing and the run is a byte-exact no-op.
  /// rate_limit only: engage throttles, never drops. quarantine only:
  /// engage drops directly (no intermediate throttle stage).
  bool rate_limit_enabled = false;
  bool quarantine_enabled = false;

  /// Consecutive *trusted* alarm periods before a suspect leaves observe
  /// (trusted = the agent reported the period healthy when
  /// require_healthy is set).
  std::int64_t engage_after = 1;
  /// Further consecutive alarm periods at rate-limit before escalating
  /// to quarantine.
  std::int64_t escalate_after = 3;

  /// Token bucket for the rate-limit stage, applied per source MAC to
  /// its outbound SYNs only (non-SYN segments always pass, so
  /// established connections survive the throttle). The default sits
  /// below a classic victim's half-open budget (128 slots / 75 s ~ 1.7
  /// slots/s), so a throttled flood can no longer keep a backlog full.
  double rate_limit_syn_per_s = 1.0;
  double rate_limit_burst = 4.0;

  /// A no-alarm period counts toward release only when the CUSUM has
  /// genuinely decayed: y < release_fraction * N. (Right below N the
  /// statistic is one bad period away from re-alarming.)
  double release_fraction = 0.5;
  /// Quiet periods (scaled by the per-target backoff multiplier) per
  /// downward stage step.
  std::int64_t release_after = 3;
  /// Probation length at rate-limit after leaving quarantine: this many
  /// further quiet periods before the source returns to observe. An
  /// alarm during probation is a probe failure -> immediate
  /// re-quarantine and backoff doubling.
  std::int64_t probe_periods = 2;

  /// Re-arm backoff: each re-engagement or probe failure doubles the
  /// target's release-streak multiplier, up to backoff_max; it halves
  /// back after backoff_decay_after consecutive clean periods at
  /// observe. (The agent health machine's quarantine backoff, applied to
  /// the response side.)
  std::int64_t backoff_max = 8;
  std::int64_t backoff_decay_after = 8;

  /// A locator suspect becomes a target only with at least this many
  /// spoofed SYNs on record — stations that never spoofed are not
  /// throttled on the strength of someone else's alarm.
  std::uint64_t min_spoofed_evidence = 1;
  /// Cap on concurrently tracked targets (oldest evidence wins: the
  /// locator ranks by spoofed count, so the cap keeps the worst).
  std::size_t max_targets = 64;
  /// Only act on periods the agent reports healthy. Degraded evidence
  /// (post-outage quarantine, SYN/ACK collapse, gap accounting) can
  /// alarm spuriously; a policy that trusts it will throttle innocents
  /// on a faulted tap.
  bool require_healthy = true;

  /// True when any stage is enabled; false = the empty no-op policy.
  [[nodiscard]] bool enabled() const {
    return rate_limit_enabled || quarantine_enabled;
  }

  void validate() const {
    if (engage_after < 1 || escalate_after < 1) {
      throw std::invalid_argument(
          "MitigationPolicy: engage/escalate streaks must be >= 1");
    }
    if (rate_limit_enabled &&
        !(rate_limit_syn_per_s > 0.0 && rate_limit_burst >= 1.0)) {
      throw std::invalid_argument(
          "MitigationPolicy: token bucket needs rate > 0 and burst >= 1");
    }
    if (!(release_fraction > 0.0 && release_fraction <= 1.0)) {
      throw std::invalid_argument(
          "MitigationPolicy: release_fraction in (0, 1]");
    }
    if (release_after < 1 || probe_periods < 0) {
      throw std::invalid_argument(
          "MitigationPolicy: release_after >= 1, probe_periods >= 0");
    }
    if (backoff_max < 1 || backoff_decay_after < 1) {
      throw std::invalid_argument(
          "MitigationPolicy: backoff knobs must be >= 1");
    }
    if (max_targets < 1) {
      throw std::invalid_argument("MitigationPolicy: max_targets >= 1");
    }
  }

  /// The full staged response: observe -> rate-limit -> quarantine.
  [[nodiscard]] static MitigationPolicy staged_defaults() {
    MitigationPolicy p;
    p.rate_limit_enabled = true;
    p.quarantine_enabled = true;
    return p;
  }
  /// Throttle but never drop (conservative collateral profile).
  [[nodiscard]] static MitigationPolicy rate_limit_only() {
    MitigationPolicy p;
    p.rate_limit_enabled = true;
    return p;
  }
  /// Drop on engagement, no intermediate throttle (fastest mitigation,
  /// worst false-positive cost).
  [[nodiscard]] static MitigationPolicy quarantine_only() {
    MitigationPolicy p;
    p.quarantine_enabled = true;
    return p;
  }
};

}  // namespace syndog::mitigate
