// Deterministic token bucket on the DES clock.
//
// Refill is computed from elapsed sim time at each consume attempt — no
// timers, no wall clock — so identical packet arrival sequences make
// identical pass/drop decisions regardless of host load.
#pragma once

#include <algorithm>

#include "syndog/util/time.hpp"

namespace syndog::mitigate {

class TokenBucket {
 public:
  /// Starts full (burst tokens) at `now`. rate_per_s > 0, burst >= 1 are
  /// the caller's contract (MitigationPolicy::validate enforces it).
  TokenBucket(double rate_per_s, double burst, util::SimTime now)
      : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst), last_(now) {}

  /// Refills for the time elapsed since the last call, then takes one
  /// token if available. Returns true when the packet may pass.
  [[nodiscard]] bool try_consume(util::SimTime now) {
    if (now > last_) {
      tokens_ = std::min(burst_,
                         tokens_ + rate_per_s_ * (now - last_).to_seconds());
      last_ = now;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_per_s_;
  double burst_;
  double tokens_;
  util::SimTime last_;
};

}  // namespace syndog::mitigate
