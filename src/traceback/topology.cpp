#include "syndog/traceback/topology.hpp"

#include <stdexcept>

namespace syndog::traceback {

RouterId AttackTopology::add_router(RouterId next_hop) {
  Router r;
  r.id = static_cast<RouterId>(routers_.size());
  r.next_hop = next_hop;
  r.distance_to_victim =
      next_hop == kNoRouter ? 1 : routers_[next_hop].distance_to_victim + 1;
  max_depth_ = std::max(max_depth_, r.distance_to_victim);
  routers_.push_back(r);
  return r.id;
}

AttackTopology AttackTopology::chain(int depth) {
  if (depth < 1) {
    throw std::invalid_argument("AttackTopology::chain: depth must be >= 1");
  }
  AttackTopology topo;
  RouterId prev = kNoRouter;
  for (int d = 0; d < depth; ++d) {
    prev = topo.add_router(prev);
  }
  topo.leaves_.push_back(prev);
  return topo;
}

AttackTopology AttackTopology::random(int leaf_paths, int min_depth,
                                      int max_depth, util::Rng& rng) {
  if (leaf_paths < 1 || min_depth < 1 || max_depth < min_depth) {
    throw std::invalid_argument("AttackTopology::random: bad parameters");
  }
  AttackTopology topo;
  // First path: a straight chain.
  {
    const int depth =
        static_cast<int>(rng.uniform_int(min_depth, max_depth));
    RouterId prev = kNoRouter;
    for (int d = 0; d < depth; ++d) prev = topo.add_router(prev);
    topo.leaves_.push_back(prev);
  }
  // Subsequent paths branch off an existing router at a random point.
  for (int p = 1; p < leaf_paths; ++p) {
    const RouterId junction = static_cast<RouterId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.routers_.size()) -
                               1));
    const int total_depth =
        static_cast<int>(rng.uniform_int(min_depth, max_depth));
    const int extra =
        std::max(1, total_depth - topo.routers_[junction].distance_to_victim);
    RouterId prev = junction;
    for (int d = 0; d < extra; ++d) prev = topo.add_router(prev);
    topo.leaves_.push_back(prev);
  }
  return topo;
}

const AttackTopology::Router& AttackTopology::router(RouterId id) const {
  return routers_.at(id);
}

std::vector<RouterId> AttackTopology::path_from(RouterId leaf) const {
  std::vector<RouterId> path;
  RouterId at = leaf;
  while (at != kNoRouter) {
    path.push_back(at);
    at = routers_.at(at).next_hop;
  }
  return path;
}

}  // namespace syndog::traceback
