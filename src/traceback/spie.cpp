#include "syndog/traceback/spie.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::traceback {

BloomFilter::BloomFilter(std::size_t bits, int hash_count)
    : bits_(bits, false), hash_count_(hash_count) {
  if (bits == 0 || hash_count < 1 || hash_count > 16) {
    throw std::invalid_argument("BloomFilter: bad geometry");
  }
}

std::size_t BloomFilter::bit_index(std::uint64_t digest, int round) const {
  // Kirsch-Mitzenmacher double hashing from two SplitMix64 streams.
  const std::uint64_t h1 = util::splitmix64(digest);
  const std::uint64_t h2 = util::splitmix64(digest ^ 0x9e3779b97f4a7c15ULL);
  return static_cast<std::size_t>(
      (h1 + static_cast<std::uint64_t>(round) * (h2 | 1)) % bits_.size());
}

void BloomFilter::insert(std::uint64_t digest) {
  for (int r = 0; r < hash_count_; ++r) {
    bits_[bit_index(digest, r)] = true;
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(std::uint64_t digest) const {
  for (int r = 0; r < hash_count_; ++r) {
    if (!bits_[bit_index(digest, r)]) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (const bool b : bits_) set += b ? 1 : 0;
  return static_cast<double>(set) / static_cast<double>(bits_.size());
}

double BloomFilter::expected_false_positive_rate() const {
  return std::pow(fill_ratio(), hash_count_);
}

void BloomFilter::clear() {
  bits_.assign(bits_.size(), false);
  inserted_ = 0;
}

SpieSystem::SpieSystem(const AttackTopology& topology, Params params)
    : topology_(topology), params_(params) {
  filters_.reserve(topology.router_count());
  children_.resize(topology.router_count());
  for (RouterId id = 0; id < topology.router_count(); ++id) {
    filters_.emplace_back(params_.bits_per_router, params_.hash_count);
    const RouterId parent = topology.router(id).next_hop;
    if (parent == kNoRouter) {
      roots_.push_back(id);
    } else {
      children_[parent].push_back(id);
    }
  }
}

std::uint64_t SpieSystem::forward_attack_packet(RouterId leaf,
                                                util::Rng& rng) {
  const std::uint64_t digest = rng.next_u64();
  for (const RouterId hop : topology_.path_from(leaf)) {
    filters_[hop].insert(digest);
  }
  return digest;
}

void SpieSystem::forward_cross_traffic(RouterId router,
                                       std::uint64_t digest) {
  filters_.at(router).insert(digest);
}

std::vector<RouterId> SpieSystem::trace(std::uint64_t digest) const {
  std::vector<RouterId> on_path;
  std::vector<RouterId> frontier;
  for (const RouterId root : roots_) {
    if (filters_[root].maybe_contains(digest)) frontier.push_back(root);
  }
  while (!frontier.empty()) {
    const RouterId at = frontier.back();
    frontier.pop_back();
    on_path.push_back(at);
    for (const RouterId child : children_[at]) {
      if (filters_[child].maybe_contains(digest)) {
        frontier.push_back(child);
      }
    }
  }
  return on_path;
}

std::size_t SpieSystem::total_state_bytes() const {
  return filters_.size() * (params_.bits_per_router / 8);
}

}  // namespace syndog::traceback
