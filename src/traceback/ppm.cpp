#include "syndog/traceback/ppm.hpp"

#include <cmath>
#include <stdexcept>

namespace syndog::traceback {

PpmMarker::PpmMarker(double marking_probability) : p_(marking_probability) {
  if (!(p_ > 0.0 && p_ < 1.0)) {
    throw std::invalid_argument("PpmMarker: probability in (0,1)");
  }
}

void PpmMarker::process(Mark& mark, RouterId router, util::Rng& rng) const {
  if (rng.bernoulli(p_)) {
    // Start a fresh edge sample at this router.
    mark.edge_start = router;
    mark.edge_end = kNoRouter;
    mark.distance = 0;
    return;
  }
  if (mark.valid()) {
    if (mark.distance == 0 && mark.edge_end == kNoRouter) {
      mark.edge_end = router;  // complete the edge started one hop back
    }
    ++mark.distance;
  }
}

void PpmCollector::observe(const Mark& mark) {
  ++packets_;
  if (!mark.valid()) return;
  ++marked_;
  // distance counts hops since the marking router; the edge (start,end)
  // lies distance-1 .. distance hops from the victim (end == kNoRouter
  // means the marking router is the victim's direct neighbor).
  edges_by_distance_[mark.distance].insert(
      Edge{mark.edge_start, mark.edge_end});
}

std::size_t PpmCollector::distinct_edges() const {
  std::size_t n = 0;
  for (const auto& [distance, edges] : edges_by_distance_) {
    n += edges.size();
  }
  return n;
}

bool PpmCollector::covers_path(const std::vector<RouterId>& path) const {
  // The true path leaf-first is path[0] (farthest) ... path.back() (the
  // victim's neighbor). A packet marked at path[i] is completed by
  // path[i+1] and then travels the remaining hops, arriving with
  // distance n-1-i and edge (path[i], path[i+1]); a mark from the last
  // hop arrives with distance 0 and an unfinished edge.
  const std::size_t n = path.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = edges_by_distance_.find(static_cast<int>(n - 1 - i));
    if (it == edges_by_distance_.end()) return false;
    const RouterId start = path[i];
    const RouterId end = i + 1 < n ? path[i + 1] : kNoRouter;
    if (!it->second.contains(Edge{start, end})) return false;
  }
  return true;
}

std::optional<std::vector<RouterId>> PpmCollector::reconstruct_chain()
    const {
  std::vector<RouterId> path;  // victim-neighbor first
  RouterId expect = kNoRouter;
  for (int d = 0; ; ++d) {
    const auto it = edges_by_distance_.find(d);
    if (it == edges_by_distance_.end()) break;
    // A clean chain has exactly one edge per distance whose end matches
    // the previously discovered start.
    const Edge* match = nullptr;
    for (const Edge& e : it->second) {
      if (d == 0 ? e.end == kNoRouter : e.end == expect) {
        if (match != nullptr) return std::nullopt;  // ambiguous
        match = &e;
      }
    }
    if (match == nullptr) return std::nullopt;
    path.push_back(match->start);
    expect = match->start;
  }
  if (path.empty()) return std::nullopt;
  // Return leaf-first like AttackTopology::path_from.
  return std::vector<RouterId>(path.rbegin(), path.rend());
}

double PpmCollector::expected_packets_bound(double p, int hops) {
  if (!(p > 0.0 && p < 1.0) || hops < 1) {
    throw std::invalid_argument("expected_packets_bound: bad arguments");
  }
  return std::log(static_cast<double>(hops)) /
         (p * std::pow(1.0 - p, hops - 1));
}

std::optional<std::uint64_t> packets_until_traced(
    const AttackTopology& topology, RouterId leaf, double marking_p,
    util::Rng& rng, std::uint64_t max_packets) {
  const std::vector<RouterId> path = topology.path_from(leaf);
  const PpmMarker marker(marking_p);
  PpmCollector collector;
  for (std::uint64_t sent = 1; sent <= max_packets; ++sent) {
    Mark mark;
    for (const RouterId hop : path) {
      marker.process(mark, hop, rng);
    }
    collector.observe(mark);
    // Covering checks are cheap only every so often on long runs.
    if (sent % 64 == 0 || sent < 64) {
      if (collector.covers_path(path)) return sent;
    }
  }
  return std::nullopt;
}

}  // namespace syndog::traceback
