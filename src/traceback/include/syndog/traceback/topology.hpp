// Attack-path topology for IP traceback experiments.
//
// SYN-dog's headline advantage (paper §1) is locating flooding sources
// *without resorting to expensive IP traceback*. To quantify "expensive",
// this module provides the substrate traceback schemes run on: a router
// topology with attack paths from spoofing sources to a victim, over
// which we implement probabilistic packet marking (Savage et al.,
// SIGCOMM'00 [23]) and hash-based SPIE (Snoeren et al., SIGCOMM'01 [27]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "syndog/util/rng.hpp"

namespace syndog::traceback {

using RouterId = std::uint32_t;
inline constexpr RouterId kNoRouter = UINT32_MAX;

/// A reverse-tree topology rooted at the victim: every router has one
/// next hop toward the victim, attackers sit behind leaf routers.
class AttackTopology {
 public:
  struct Router {
    RouterId id = kNoRouter;
    RouterId next_hop = kNoRouter;  ///< toward the victim; kNoRouter at root
    int distance_to_victim = 0;     ///< hops to the victim
  };

  /// Builds a random tree with `leaf_paths` distinct attacker paths of
  /// length uniform in [min_depth, max_depth] hops; paths share suffixes
  /// near the victim like real Internet routes (a new path branches off
  /// an existing one at a random hop).
  static AttackTopology random(int leaf_paths, int min_depth, int max_depth,
                               util::Rng& rng);

  /// Single linear path of `depth` hops (the classic analysis setting).
  static AttackTopology chain(int depth);

  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] const Router& router(RouterId id) const;
  /// Leaf routers with an attacker behind them.
  [[nodiscard]] const std::vector<RouterId>& attacker_leaves() const {
    return leaves_;
  }
  /// Path from a leaf to the victim: ordered router ids, leaf first.
  [[nodiscard]] std::vector<RouterId> path_from(RouterId leaf) const;
  [[nodiscard]] int max_depth() const { return max_depth_; }

 private:
  RouterId add_router(RouterId next_hop);

  std::vector<Router> routers_;
  std::vector<RouterId> leaves_;
  int max_depth_ = 0;
};

}  // namespace syndog::traceback
