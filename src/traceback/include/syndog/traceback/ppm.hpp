// Probabilistic packet marking (Savage, Wetherall, Karlin, Anderson —
// "Practical Network Support for IP Traceback", SIGCOMM 2000; paper
// ref [23]), edge-sampling variant.
//
// Every router, with probability p, overwrites the packet's mark with
// itself and distance 0; a router seeing distance 0 completes the edge;
// everyone else increments the distance. The victim reconstructs the
// attack path from collected (edge, distance) samples — after enough
// packets: the classic bound is E[packets] <= ln(d) / (p * (1-p)^(d-1))
// for a path of d hops. That "enough packets" (thousands, and only
// *during* the attack) is precisely the cost SYN-dog's source-side
// deployment avoids.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "syndog/traceback/topology.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::traceback {

/// The marking fields a router scribbles into (in reality squeezed into
/// the IP identification field; modeled here as a struct).
struct Mark {
  RouterId edge_start = kNoRouter;
  RouterId edge_end = kNoRouter;  ///< kNoRouter while the edge is half-built
  int distance = 0;
  [[nodiscard]] bool valid() const { return edge_start != kNoRouter; }
};

/// Per-router edge-sampling step.
class PpmMarker {
 public:
  explicit PpmMarker(double marking_probability);

  /// Applies router `router`'s marking decision to the packet's mark.
  void process(Mark& mark, RouterId router, util::Rng& rng) const;
  [[nodiscard]] double probability() const { return p_; }

 private:
  double p_;
};

/// Victim-side collection and path reconstruction.
class PpmCollector {
 public:
  /// Records the mark of one received attack packet (unmarked packets
  /// are counted but contribute nothing).
  void observe(const Mark& mark);

  [[nodiscard]] std::uint64_t packets_observed() const { return packets_; }
  [[nodiscard]] std::uint64_t marked_packets() const { return marked_; }
  [[nodiscard]] std::size_t distinct_edges() const;

  /// True when the collected edges contain every edge of `path`
  /// (leaf-first router list, as AttackTopology::path_from returns).
  [[nodiscard]] bool covers_path(const std::vector<RouterId>& path) const;

  /// Reconstructs a single linear path by chaining edges from distance 0
  /// upward; nullopt while edges are missing or ambiguous.
  [[nodiscard]] std::optional<std::vector<RouterId>> reconstruct_chain()
      const;

  /// Savage et al.'s expected-packet bound for full reconstruction of a
  /// d-hop path with marking probability p.
  [[nodiscard]] static double expected_packets_bound(double p, int hops);

 private:
  struct Edge {
    RouterId start;
    RouterId end;
    auto operator<=>(const Edge&) const = default;
  };
  std::map<int, std::set<Edge>> edges_by_distance_;
  std::uint64_t packets_ = 0;
  std::uint64_t marked_ = 0;
};

/// Runs the full loop: attack packets flow from `leaf` to the victim
/// through `topology` with per-router marking, until the collector can
/// cover the true path (or `max_packets` is hit). Returns the number of
/// packets the victim needed, or nullopt on budget exhaustion.
[[nodiscard]] std::optional<std::uint64_t> packets_until_traced(
    const AttackTopology& topology, RouterId leaf, double marking_p,
    util::Rng& rng, std::uint64_t max_packets = 2'000'000);

}  // namespace syndog::traceback
