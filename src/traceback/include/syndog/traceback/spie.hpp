// Hash-based IP traceback — SPIE (Snoeren et al., "Hash-Based IP
// Traceback", SIGCOMM 2001; paper ref [27]).
//
// Every router keeps a Bloom-filter digest of every packet it forwards
// during a time window. Given one attack packet, the victim's query
// walks the topology away from itself: a router is on the packet's path
// if its digest table (probably) contains the packet. Single-packet
// traceback — but at the price of per-packet state at *every* router
// (the antithesis of SYN-dog's two counters at one router) and a false
// positive rate that grows as the filters fill.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/traceback/topology.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::traceback {

/// Standard Bloom filter over 64-bit packet digests.
class BloomFilter {
 public:
  BloomFilter(std::size_t bits, int hash_count);

  void insert(std::uint64_t digest);
  [[nodiscard]] bool maybe_contains(std::uint64_t digest) const;
  [[nodiscard]] std::size_t bit_count() const { return bits_.size(); }
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }
  /// Fraction of bits set; drives the false-positive rate
  /// (~ fill^hash_count).
  [[nodiscard]] double fill_ratio() const;
  [[nodiscard]] double expected_false_positive_rate() const;
  void clear();

 private:
  [[nodiscard]] std::size_t bit_index(std::uint64_t digest, int round) const;

  std::vector<bool> bits_;
  int hash_count_;
  std::uint64_t inserted_ = 0;
};

/// The deployed system: one digest table per router in the topology.
class SpieSystem {
 public:
  struct Params {
    std::size_t bits_per_router = 1 << 18;
    int hash_count = 4;
  };

  SpieSystem(const AttackTopology& topology, Params params);

  /// Records a packet traveling from `leaf` to the victim (digested at
  /// every router on the path). Returns the digest for later queries.
  std::uint64_t forward_attack_packet(RouterId leaf, util::Rng& rng);
  /// Records unrelated cross traffic at one router (fills its filter).
  void forward_cross_traffic(RouterId router, std::uint64_t digest);

  /// Traceback query: routers whose digest tables contain the packet,
  /// discovered by walking from the victim outward (children checked
  /// only when their parent matched, as in SPIE). Returns victim-
  /// neighbor-first order; false positives may add spurious branches.
  [[nodiscard]] std::vector<RouterId> trace(std::uint64_t digest) const;

  [[nodiscard]] const BloomFilter& router_filter(RouterId id) const {
    return filters_.at(id);
  }
  /// Total digest-table memory across all routers, in bytes.
  [[nodiscard]] std::size_t total_state_bytes() const;

 private:
  const AttackTopology& topology_;
  Params params_;
  std::vector<BloomFilter> filters_;
  std::vector<std::vector<RouterId>> children_;  ///< reverse adjacency
  std::vector<RouterId> roots_;                  ///< victim's neighbors
};

}  // namespace syndog::traceback
