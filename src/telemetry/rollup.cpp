#include "syndog/telemetry/rollup.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "syndog/obs/json.hpp"

namespace syndog::telemetry {
namespace {

/// AS number for an agent index; truncated files can carry samples for
/// agents missing from the dictionary — those group under AS 0.
std::uint32_t as_of(const TsfReader& reader, std::uint32_t agent) {
  if (agent < reader.agents().size()) return reader.agents()[agent].as_number;
  return 0;
}

}  // namespace

AlarmTimeline alarm_timeline(const TsfReader& reader,
                             std::string_view metric) {
  AlarmTimeline out;
  const std::int64_t metric_idx = reader.find_metric(metric);
  if (metric_idx < 0) return out;
  for (std::uint32_t sid = 0; sid < reader.series().size(); ++sid) {
    const TsfSeries& s = reader.series()[sid];
    if (s.metric != static_cast<std::uint32_t>(metric_idx)) continue;
    bool state = false;
    bool alarmed = false;
    for (const TsfSample& sample : reader.samples(sid)) {
      const bool raised = sample.value != 0.0;
      if (raised == state) continue;
      state = raised;
      out.edges.push_back(
          AlarmEdge{as_of(reader, s.agent), s.agent, sample.at, raised});
      if (raised) {
        ++out.rising_edges;
        alarmed = true;
      }
    }
    if (alarmed) ++out.agents_alarmed;
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const AlarmEdge& a, const AlarmEdge& b) {
              return std::tuple(a.as_number, a.agent, a.at.ns(), a.raised) <
                     std::tuple(b.as_number, b.agent, b.at.ns(), b.raised);
            });
  return out;
}

StageTimeline stage_timeline(const TsfReader& reader,
                             std::string_view metric) {
  StageTimeline out;
  const std::int64_t metric_idx = reader.find_metric(metric);
  if (metric_idx < 0) return out;
  for (std::uint32_t sid = 0; sid < reader.series().size(); ++sid) {
    const TsfSeries& s = reader.series()[sid];
    if (s.metric != static_cast<std::uint32_t>(metric_idx)) continue;
    double state = 0.0;
    bool mitigated = false;
    for (const TsfSample& sample : reader.samples(sid)) {
      if (sample.value == state) continue;
      out.edges.push_back(StageEdge{as_of(reader, s.agent), s.agent,
                                    sample.at, state, sample.value});
      if (state == 0.0) {
        ++out.engagements;
        mitigated = true;
      }
      if (sample.value == 2.0) ++out.quarantines;
      state = sample.value;
    }
    if (mitigated) ++out.agents_mitigating;
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const StageEdge& a, const StageEdge& b) {
              return std::tuple(a.as_number, a.agent, a.at.ns(), a.to) <
                     std::tuple(b.as_number, b.agent, b.at.ns(), b.to);
            });
  return out;
}

std::optional<util::SimTime> first_alarm(const AlarmTimeline& timeline,
                                         std::uint32_t agent) {
  std::optional<util::SimTime> best;
  for (const AlarmEdge& e : timeline.edges) {
    if (e.agent != agent || !e.raised) continue;
    if (!best || e.at < *best) best = e.at;
  }
  return best;
}

std::vector<DriftPoint> metric_drift(const TsfReader& reader,
                                     std::string_view metric,
                                     util::SimTime bucket,
                                     std::optional<std::uint32_t> as_filter) {
  std::vector<DriftPoint> out;
  const std::int64_t metric_idx = reader.find_metric(metric);
  if (metric_idx < 0 || bucket.ns() <= 0) return out;
  struct Acc {
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::uint64_t n = 0;
  };
  std::map<std::int64_t, Acc> drift_buckets;
  for (std::uint32_t sid = 0; sid < reader.series().size(); ++sid) {
    const TsfSeries& s = reader.series()[sid];
    if (s.metric != static_cast<std::uint32_t>(metric_idx)) continue;
    if (as_filter && as_of(reader, s.agent) != *as_filter) continue;
    for (const TsfSample& sample : reader.samples(sid)) {
      Acc& acc = drift_buckets[sample.at.ns() / bucket.ns()];
      acc.sum += sample.value;
      acc.min = std::min(acc.min, sample.value);
      acc.max = std::max(acc.max, sample.value);
      ++acc.n;
    }
  }
  out.reserve(drift_buckets.size());
  for (const auto& [idx, acc] : drift_buckets) {
    out.push_back(DriftPoint{bucket * idx, acc.sum / static_cast<double>(acc.n),
                             acc.min, acc.max, acc.n});
  }
  return out;
}

std::vector<HealthSummary> health_summary(const TsfReader& reader,
                                          std::string_view metric) {
  std::map<std::uint32_t, HealthSummary> by_as;
  for (std::uint32_t agent = 0; agent < reader.agents().size(); ++agent) {
    HealthSummary& sum = by_as[reader.agents()[agent].as_number];
    sum.as_number = reader.agents()[agent].as_number;
    ++sum.agents;
  }
  const std::int64_t metric_idx = reader.find_metric(metric);
  std::map<std::uint32_t, double> last_state;  // agent -> last health value
  if (metric_idx >= 0) {
    for (std::uint32_t sid = 0; sid < reader.series().size(); ++sid) {
      const TsfSeries& s = reader.series()[sid];
      if (s.metric != static_cast<std::uint32_t>(metric_idx)) continue;
      double state = 0.0;
      bool any = false;
      std::uint64_t transitions = 0;
      for (const TsfSample& sample : reader.samples(sid)) {
        if (!any || sample.value != state) ++transitions;
        state = sample.value;
        any = true;
      }
      if (!any) continue;
      last_state[s.agent] = state;
      by_as[as_of(reader, s.agent)].transitions += transitions;
    }
  }
  for (std::uint32_t agent = 0; agent < reader.agents().size(); ++agent) {
    HealthSummary& sum = by_as[reader.agents()[agent].as_number];
    const auto it = last_state.find(agent);
    const double state = it == last_state.end() ? 0.0 : it->second;
    if (state == 0.0) {
      ++sum.healthy;
    } else if (state == 1.0) {
      ++sum.degraded;
    } else {
      ++sum.blind;
    }
  }
  std::vector<HealthSummary> out;
  out.reserve(by_as.size());
  for (const auto& [as_number, sum] : by_as) out.push_back(sum);
  return out;
}

std::string alarm_timeline_csv(const TsfReader& reader,
                               const AlarmTimeline& timeline) {
  std::string out = "as,agent,t_s,edge\n";
  for (const AlarmEdge& e : timeline.edges) {
    out += obs::json_number(std::uint64_t{e.as_number});
    out.push_back(',');
    if (e.agent < reader.agents().size()) {
      out += reader.agents()[e.agent].name;
    } else {
      out += "agent#" + obs::json_number(std::uint64_t{e.agent});
    }
    out.push_back(',');
    out += obs::json_number(e.at.to_seconds());
    out.push_back(',');
    out += e.raised ? "raise" : "clear";
    out.push_back('\n');
  }
  return out;
}

std::string stage_timeline_csv(const TsfReader& reader,
                               const StageTimeline& timeline) {
  // Stage names match mitigate::to_string(Stage); telemetry sits below
  // mitigate in the layering DAG, so the mapping is duplicated here and
  // unexpected values fall back to their numeric form.
  const auto stage_name = [](double stage) -> std::string {
    if (stage == 0.0) return "observe";
    if (stage == 1.0) return "rate-limit";
    if (stage == 2.0) return "quarantine";
    return obs::json_number(stage);
  };
  std::string out = "as,agent,t_s,from,to\n";
  for (const StageEdge& e : timeline.edges) {
    out += obs::json_number(std::uint64_t{e.as_number});
    out.push_back(',');
    if (e.agent < reader.agents().size()) {
      out += reader.agents()[e.agent].name;
    } else {
      out += "agent#" + obs::json_number(std::uint64_t{e.agent});
    }
    out.push_back(',');
    out += obs::json_number(e.at.to_seconds());
    out.push_back(',');
    out += stage_name(e.from);
    out.push_back(',');
    out += stage_name(e.to);
    out.push_back('\n');
  }
  return out;
}

std::string drift_csv(const std::vector<DriftPoint>& points) {
  std::string out = "bucket_t_s,mean,min,max,samples\n";
  for (const DriftPoint& p : points) {
    out += obs::json_number(p.bucket_start.to_seconds());
    out.push_back(',');
    out += obs::json_number(p.mean);
    out.push_back(',');
    out += obs::json_number(p.min);
    out.push_back(',');
    out += obs::json_number(p.max);
    out.push_back(',');
    out += obs::json_number(p.samples);
    out.push_back('\n');
  }
  return out;
}

std::string health_csv(const std::vector<HealthSummary>& summaries) {
  std::string out = "as,agents,healthy,degraded,blind,transitions\n";
  for (const HealthSummary& s : summaries) {
    out += obs::json_number(std::uint64_t{s.as_number});
    out.push_back(',');
    out += obs::json_number(s.agents);
    out.push_back(',');
    out += obs::json_number(s.healthy);
    out.push_back(',');
    out += obs::json_number(s.degraded);
    out.push_back(',');
    out += obs::json_number(s.blind);
    out.push_back(',');
    out += obs::json_number(s.transitions);
    out.push_back('\n');
  }
  return out;
}

std::string fleet_summary_json(const TsfReader& reader) {
  util::SimTime begin = util::SimTime::max();
  util::SimTime end = util::SimTime::zero();
  std::uint64_t samples = 0;
  for (std::uint32_t sid = 0; sid < reader.series().size(); ++sid) {
    for (const TsfSample& s : reader.samples(sid)) {
      begin = std::min(begin, s.at);
      end = std::max(end, s.at);
      ++samples;
    }
  }
  std::map<std::uint32_t, std::uint64_t> fleet;  // AS -> agent count
  for (const TsfAgent& a : reader.agents()) ++fleet[a.as_number];

  std::string out = "{\"format\":\"syndog-tsf/1\",\"read_end\":";
  out += obs::json_string(to_string(reader.end()));
  out += ",\"dictionaries\":";
  out += reader.has_dictionaries() ? "true" : "false";
  out += ",\"agents\":" + obs::json_number(std::uint64_t{reader.agents().size()});
  out += ",\"series\":" + obs::json_number(std::uint64_t{reader.series().size()});
  out += ",\"samples\":" + obs::json_number(samples);
  out += ",\"blocks\":" + obs::json_number(reader.blocks_read());
  out += ",\"span_s\":{\"begin\":";
  out += obs::json_number(samples == 0 ? 0.0 : begin.to_seconds());
  out += ",\"end\":";
  out += obs::json_number(samples == 0 ? 0.0 : end.to_seconds());
  out += "},\"metrics\":[";
  for (std::size_t i = 0; i < reader.metrics().size(); ++i) {
    if (i != 0) out.push_back(',');
    out += obs::json_string(reader.metrics()[i]);
  }
  out += "],\"fleet\":{";
  bool first = true;
  for (const auto& [as_number, count] : fleet) {
    if (!first) out.push_back(',');
    first = false;
    out += obs::json_string(obs::json_number(std::uint64_t{as_number}));
    out.push_back(':');
    out += obs::json_number(count);
  }
  out += "}}";
  return out;
}

}  // namespace syndog::telemetry
