#include "syndog/telemetry/tsf.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace syndog::telemetry {
namespace {

constexpr char kHeaderMagic[4] = {'S', 'T', 'F', '1'};
constexpr char kBlockMagic[4] = {'B', 'L', 'K', '1'};
constexpr char kTrailerMagic[4] = {'S', 'T', 'F', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kBlockHeaderSize = 20;
constexpr std::size_t kTrailerSize = 16;
// A truncated or garbled block header could carry an absurd series id;
// refuse to size reader state past this instead of allocating gigabytes.
constexpr std::uint32_t kMaxSeriesId = 1u << 20;

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint32_t hash = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Cursor over an in-memory byte range; every read reports underflow
/// instead of running past the end.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] bool varint(std::uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t byte = *p++;
      out |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;  // over-long encoding
  }

  [[nodiscard]] bool f64(double& out) {
    if (end - p < 8) return false;
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) bits = bits << 8 | p[i];
    p += 8;
    out = std::bit_cast<double>(bits);
    return true;
  }

  [[nodiscard]] bool str(std::string& out) {
    std::uint64_t len = 0;
    if (!varint(len)) return false;
    if (static_cast<std::uint64_t>(end - p) < len) return false;
    out.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(len));
    p += len;
    return true;
  }
};

}  // namespace

std::string_view to_string(ReadEnd end) {
  switch (end) {
    case ReadEnd::kEof:
      return "eof";
    case ReadEnd::kTruncated:
      return "truncated";
  }
  return "unknown";
}

// ---------------------------------------------------------------- writer

TsfWriter::TsfWriter(std::ostream& out, std::size_t block_capacity)
    : out_(out), block_capacity_(block_capacity == 0 ? 1 : block_capacity) {
  // Worst case per block: header + 10-byte varint per timestamp + raw
  // doubles. Sized once; flush_block never grows it.
  scratch_.reserve(kBlockHeaderSize + block_capacity_ * 18 + 16);
  std::uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kHeaderMagic, 4);
  put_u32(header + 4, kVersion);
  put_u32(header + 8, static_cast<std::uint32_t>(block_capacity_));
  put_u32(header + 12, 0);
  out_.write(reinterpret_cast<const char*>(header), kHeaderSize);
}

TsfWriter::~TsfWriter() {
  if (!finished_) finish();
}

std::uint32_t TsfWriter::add_agent(std::string_view name,
                                   std::uint32_t as_number) {
  if (finished_) throw std::logic_error("TsfWriter: add_agent after finish");
  agents_.push_back(TsfAgent{std::string(name), as_number});
  return static_cast<std::uint32_t>(agents_.size() - 1);
}

std::uint32_t TsfWriter::add_metric(std::string_view name) {
  if (finished_) throw std::logic_error("TsfWriter: add_metric after finish");
  metrics_.emplace_back(name);
  return static_cast<std::uint32_t>(metrics_.size() - 1);
}

std::uint32_t TsfWriter::open_series(std::uint32_t agent,
                                     std::uint32_t metric) {
  if (finished_) throw std::logic_error("TsfWriter: open_series after finish");
  if (agent >= agents_.size() || metric >= metrics_.size()) {
    throw std::out_of_range("TsfWriter: open_series on unregistered id");
  }
  Series s;
  s.agent = agent;
  s.metric = metric;
  s.ts.reserve(block_capacity_);
  s.values.reserve(block_capacity_);
  series_.push_back(std::move(s));
  return static_cast<std::uint32_t>(series_.size() - 1);
}

void TsfWriter::append(std::uint32_t series, util::SimTime at, double value) {
  if (finished_) throw std::logic_error("TsfWriter: append after finish");
  if (series >= series_.size()) {
    throw std::out_of_range("TsfWriter: append to unopened series");
  }
  Series& s = series_[series];
  s.ts.push_back(at.ns());
  s.values.push_back(value);
  ++s.total;
  ++samples_;
  if (s.ts.size() >= block_capacity_) flush_block(series);
}

void TsfWriter::flush_block(std::uint32_t series_id) {
  Series& s = series_[series_id];
  if (s.ts.empty()) return;
  const auto count = static_cast<std::uint32_t>(s.ts.size());
  scratch_.clear();
  scratch_.resize(kBlockHeaderSize);  // header back-patched below
  // Timestamps: first absolute, then deltas — each block decodes on its
  // own so truncation costs only the damaged suffix.
  std::int64_t prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    put_varint(scratch_, zigzag(s.ts[i] - prev));
    prev = s.ts[i];
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto bits = std::bit_cast<std::uint64_t>(s.values[i]);
    for (int b = 0; b < 8; ++b) {
      scratch_.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
    }
  }
  const auto payload_len =
      static_cast<std::uint32_t>(scratch_.size() - kBlockHeaderSize);
  std::memcpy(scratch_.data(), kBlockMagic, 4);
  put_u32(scratch_.data() + 4, series_id);
  put_u32(scratch_.data() + 8, count);
  put_u32(scratch_.data() + 12, payload_len);
  put_u32(scratch_.data() + 16,
          fnv1a(scratch_.data() + kBlockHeaderSize, payload_len));
  out_.write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  ++blocks_;
  s.ts.clear();
  s.values.clear();
}

void TsfWriter::finish() {
  if (finished_) return;
  for (std::uint32_t i = 0; i < series_.size(); ++i) flush_block(i);
  std::vector<std::uint8_t> footer;
  put_varint(footer, agents_.size());
  for (const TsfAgent& a : agents_) {
    put_varint(footer, a.name.size());
    footer.insert(footer.end(), a.name.begin(), a.name.end());
    put_varint(footer, a.as_number);
  }
  put_varint(footer, metrics_.size());
  for (const std::string& m : metrics_) {
    put_varint(footer, m.size());
    footer.insert(footer.end(), m.begin(), m.end());
  }
  put_varint(footer, series_.size());
  for (const Series& s : series_) {
    put_varint(footer, s.agent);
    put_varint(footer, s.metric);
    put_varint(footer, s.total);
  }
  put_varint(footer, samples_);
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  std::uint8_t trailer[kTrailerSize] = {};
  put_u32(trailer, static_cast<std::uint32_t>(footer.size()));
  put_u32(trailer + 4, fnv1a(footer.data(), footer.size()));
  put_u32(trailer + 8, static_cast<std::uint32_t>(blocks_));
  std::memcpy(trailer + 12, kTrailerMagic, 4);
  out_.write(reinterpret_cast<const char*>(trailer), kTrailerSize);
  out_.flush();
  finished_ = true;
}

// ---------------------------------------------------------------- reader

TsfReader::TsfReader(std::istream& in) {
  std::string buf;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    buf.append(chunk, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
  }
  if (buf.size() < kHeaderSize ||
      std::memcmp(buf.data(), kHeaderMagic, 4) != 0) {
    throw std::runtime_error("tsf: not a syndog-tsf stream (bad magic)");
  }
  const std::uint32_t version =
      get_u32(reinterpret_cast<const std::uint8_t*>(buf.data()) + 4);
  if (version != kVersion) {
    throw std::runtime_error("tsf: unsupported version " +
                             std::to_string(version));
  }
  parse(buf);
}

const std::vector<TsfSample>& TsfReader::samples(
    std::uint32_t series_id) const {
  static const std::vector<TsfSample> kEmpty;
  if (series_id >= samples_.size()) return kEmpty;
  return samples_[series_id];
}

std::int64_t TsfReader::find_metric(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i] == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

bool TsfReader::parse_footer(const std::string& buf, std::size_t payload_begin,
                             std::size_t payload_len) {
  const auto* base = reinterpret_cast<const std::uint8_t*>(buf.data());
  Cursor cur{base + payload_begin, base + payload_begin + payload_len};
  std::uint64_t n = 0;
  if (!cur.varint(n) || n > kMaxSeriesId) return false;
  std::vector<TsfAgent> agents(static_cast<std::size_t>(n));
  for (TsfAgent& a : agents) {
    std::uint64_t as_number = 0;
    if (!cur.str(a.name) || !cur.varint(as_number)) return false;
    a.as_number = static_cast<std::uint32_t>(as_number);
  }
  if (!cur.varint(n) || n > kMaxSeriesId) return false;
  std::vector<std::string> metrics(static_cast<std::size_t>(n));
  for (std::string& m : metrics) {
    if (!cur.str(m)) return false;
  }
  if (!cur.varint(n) || n > kMaxSeriesId) return false;
  std::vector<TsfSeries> series(static_cast<std::size_t>(n));
  for (TsfSeries& s : series) {
    std::uint64_t agent = 0;
    std::uint64_t metric = 0;
    if (!cur.varint(agent) || !cur.varint(metric) || !cur.varint(s.samples)) {
      return false;
    }
    if (agent >= agents.size() || metric >= metrics.size()) return false;
    s.agent = static_cast<std::uint32_t>(agent);
    s.metric = static_cast<std::uint32_t>(metric);
  }
  std::uint64_t total = 0;
  if (!cur.varint(total) || cur.p != cur.end) return false;
  agents_ = std::move(agents);
  metrics_ = std::move(metrics);
  series_ = std::move(series);
  has_dictionaries_ = true;
  return true;
}

void TsfReader::parse(const std::string& buf) {
  const auto* base = reinterpret_cast<const std::uint8_t*>(buf.data());
  // Locate the footer first (from the fixed-size trailer at EOF) so the
  // block scan knows where data ends; a missing or corrupt footer leaves
  // the scan running to EOF and the verdict at kTruncated.
  bool footer_ok = false;
  std::size_t blocks_end = buf.size();
  std::uint32_t footer_blocks = 0;
  if (buf.size() >= kHeaderSize + kTrailerSize &&
      std::memcmp(buf.data() + buf.size() - 4, kTrailerMagic, 4) == 0) {
    const std::size_t trailer_at = buf.size() - kTrailerSize;
    const std::uint32_t footer_len = get_u32(base + trailer_at);
    const std::uint32_t footer_crc = get_u32(base + trailer_at + 4);
    footer_blocks = get_u32(base + trailer_at + 8);
    if (footer_len <= trailer_at - kHeaderSize) {
      const std::size_t payload_begin = trailer_at - footer_len;
      if (fnv1a(base + payload_begin, footer_len) == footer_crc &&
          parse_footer(buf, payload_begin, footer_len)) {
        footer_ok = true;
        blocks_end = payload_begin;
      }
    }
  }
  if (has_dictionaries_) samples_.resize(series_.size());

  bool damaged = false;
  std::size_t pos = kHeaderSize;
  while (pos + kBlockHeaderSize <= blocks_end &&
         std::memcmp(buf.data() + pos, kBlockMagic, 4) == 0) {
    const std::uint32_t series_id = get_u32(base + pos + 4);
    const std::uint32_t count = get_u32(base + pos + 8);
    const std::uint32_t payload_len = get_u32(base + pos + 12);
    const std::uint32_t crc = get_u32(base + pos + 16);
    if (series_id >= kMaxSeriesId || count == 0 ||
        payload_len > blocks_end - pos - kBlockHeaderSize ||
        fnv1a(base + pos + kBlockHeaderSize, payload_len) != crc) {
      damaged = true;  // cut mid-write or bit-flipped: drop this suffix
      break;
    }
    Cursor cur{base + pos + kBlockHeaderSize,
               base + pos + kBlockHeaderSize + payload_len};
    std::vector<TsfSample> decoded(count);
    std::int64_t prev = 0;
    bool ok = true;
    for (std::uint32_t i = 0; i < count && ok; ++i) {
      std::uint64_t zz = 0;
      ok = cur.varint(zz);
      if (ok) {
        prev += unzigzag(zz);
        decoded[i].at = util::SimTime::nanoseconds(prev);
      }
    }
    for (std::uint32_t i = 0; i < count && ok; ++i) {
      ok = cur.f64(decoded[i].value);
    }
    if (!ok || cur.p != cur.end) {
      damaged = true;  // payload does not decode to exactly `count` samples
      break;
    }
    if (series_id >= samples_.size()) samples_.resize(series_id + 1);
    auto& dst = samples_[series_id];
    dst.insert(dst.end(), decoded.begin(), decoded.end());
    total_samples_ += count;
    ++blocks_;
    pos += kBlockHeaderSize + payload_len;
  }
  if (pos != blocks_end) damaged = true;  // garbage tail before the footer

  if (footer_ok) {
    // The footer's promises double as an integrity cross-check: a valid
    // footer over a damaged block region must still read as truncated.
    if (blocks_ != footer_blocks) damaged = true;
    for (std::size_t i = 0; i < series_.size() && !damaged; ++i) {
      const std::uint64_t got =
          i < samples_.size() ? samples_[i].size() : std::size_t{0};
      if (got != series_[i].samples) damaged = true;
    }
  } else {
    // No dictionaries: synthesize a directory from what was recovered so
    // callers can still iterate series by id.
    series_.resize(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      series_[i].agent = std::numeric_limits<std::uint32_t>::max();
      series_[i].metric = std::numeric_limits<std::uint32_t>::max();
      series_[i].samples = samples_[i].size();
    }
  }
  if (samples_.size() < series_.size()) samples_.resize(series_.size());
  end_ = footer_ok && !damaged ? ReadEnd::kEof : ReadEnd::kTruncated;
}

}  // namespace syndog::telemetry
