// Bounded multi-producer / single-consumer queue of POD samples.
//
// The fleet-telemetry seam between the DES hot path and the aggregation
// consumer thread (docs/OBSERVABILITY.md §Fleet telemetry). Producers are
// the per-agent wiring in src/core: push() must never block the event
// loop, so the queue is a fixed ring of slots claimed with one CAS
// (Vyukov's bounded-queue algorithm) and a full queue fails the push
// instead of waiting — the caller counts the drop. The single consumer
// (telemetry::TelemetrySink's drain thread, or the same thread in the
// deterministic inline mode) pops in FIFO order; with one producer thread
// the global order is exactly the push order, which is what makes the
// threaded drain byte-identical to the inline reference.
//
// All slots are allocated once at construction and recycled forever.
// syndog-lint: hotpath-file -- steady state must not allocate; see
// `syndog_lint --explain hotpath.allocation`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace syndog::telemetry {

/// Bounded MPMC ring (used as MPSC throughout the tree). `T` must be
/// trivially copyable: slots are plain overwrites, never constructions.
template <typename T>
class SampleQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SampleQueue slots are raw copies");

 public:
  /// Rounds `capacity` up to a power of two (minimum 2) and allocates all
  /// slots up front — the only allocation the queue ever performs.
  explicit SampleQueue(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SampleQueue: capacity must be positive");
    }
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    cells_ = std::vector<Cell>(pow2);
    mask_ = pow2 - 1;
    for (std::size_t i = 0; i < pow2; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

  /// Occupied slots; exact only when producers and consumer are quiescent.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Enqueues one sample; returns false (without blocking or spinning
  /// unboundedly) when the queue is full. Safe from any number of threads.
  [[nodiscard]] bool try_push(const T& value) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq) -
                        static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry at the new head.
      } else if (diff < 0) {
        return false;  // full: the slot still holds an unconsumed sample
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues one sample into `out`; returns false when empty. Single
  /// consumer only.
  [[nodiscard]] bool try_pop(T& out) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
    const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<std::int64_t>(seq) -
                      static_cast<std::int64_t>(pos + 1);
    if (diff < 0) return false;  // producer has not published this slot yet
    out = cell.value;
    cell.sequence.store(pos + cells_.size(), std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so concurrent
  /// push/pop does not false-share (same discipline as ingest::FrameRing).
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to claim
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to read
};

}  // namespace syndog::telemetry
