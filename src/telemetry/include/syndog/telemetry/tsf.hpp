// syndog-tsf/1 — compact append-only columnar time-series container.
//
// The on-disk shape of a fleet telemetry campaign (docs/OBSERVABILITY.md
// §Fleet telemetry has the full byte-level spec):
//
//     [header 16B] [block]* [footer payload] [trailer 16B]
//
// Samples are grouped per series (one series = one agent × one metric)
// into fixed-capacity blocks; each block stores zigzag-varint
// delta-encoded sim timestamps followed by raw little-endian doubles,
// guarded by an FNV-1a checksum. Dictionaries (agent names + AS numbers,
// metric names, per-series totals) live in a footer written once at
// finish() so the data path stays append-only. Like the pcap readers, the
// reader is truncation-tolerant: a cut-off or garbage tail costs only the
// damaged suffix, and `ReadEnd` reports how the stream ended instead of
// throwing away the intact prefix.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/util/time.hpp"

namespace syndog::telemetry {

/// How a telemetry stream ended — mirrors pcap::ReadEnd (telemetry does
/// not link against the capture layer, hence its own copy).
enum class ReadEnd : std::uint8_t {
  kEof,        ///< clean: every block intact and the footer verified
  kTruncated,  ///< damaged or cut mid-write; intact prefix was recovered
};

[[nodiscard]] std::string_view to_string(ReadEnd end);

/// One decoded sample (reader side).
struct TsfSample {
  util::SimTime at;
  double value = 0.0;
};

/// Agent dictionary entry: stub identity plus the AS it defends.
struct TsfAgent {
  std::string name;
  std::uint32_t as_number = 0;
};

/// Series directory entry: agent × metric with the footer's sample count.
struct TsfSeries {
  std::uint32_t agent = 0;   ///< index into agents()
  std::uint32_t metric = 0;  ///< index into metrics()
  std::uint64_t samples = 0; ///< count promised by the footer
};

/// Streaming writer. Register agents/metrics, open series, append
/// samples, then finish(); the footer is written exactly once. Appends
/// between block flushes touch only preallocated storage (the scratch
/// encode buffer is sized at open_series time), so the inline drain mode
/// stays off the allocator in steady state.
class TsfWriter {
 public:
  /// `block_capacity` = samples per block before a flush (min 1).
  explicit TsfWriter(std::ostream& out, std::size_t block_capacity = 512);
  ~TsfWriter();
  TsfWriter(const TsfWriter&) = delete;
  TsfWriter& operator=(const TsfWriter&) = delete;

  /// Dictionary registration; ids are dense and assigned in call order
  /// (that order is part of the byte-identity contract).
  std::uint32_t add_agent(std::string_view name, std::uint32_t as_number);
  std::uint32_t add_metric(std::string_view name);
  std::uint32_t open_series(std::uint32_t agent, std::uint32_t metric);

  /// Appends one sample to an open series; flushes a block when the
  /// series reaches block_capacity buffered samples.
  void append(std::uint32_t series, util::SimTime at, double value);

  /// Flushes every partial block (in series-id order), writes the footer
  /// and trailer, and flushes the stream. Idempotent.
  void finish();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::uint64_t samples_written() const { return samples_; }
  [[nodiscard]] std::uint64_t blocks_written() const { return blocks_; }

 private:
  struct Series {
    std::uint32_t agent = 0;
    std::uint32_t metric = 0;
    std::uint64_t total = 0;
    std::vector<std::int64_t> ts;
    std::vector<double> values;
  };

  void flush_block(std::uint32_t series_id);

  std::ostream& out_;
  std::size_t block_capacity_;
  std::vector<TsfAgent> agents_;
  std::vector<std::string> metrics_;
  std::vector<Series> series_;
  std::vector<std::uint8_t> scratch_;  ///< reusable block encode buffer
  std::uint64_t samples_ = 0;
  std::uint64_t blocks_ = 0;
  bool finished_ = false;
};

/// In-memory reader. Consumes the whole stream up front (campaign files
/// are megabytes, not gigabytes), validates header, blocks and footer,
/// and keeps every sample that survives. Never throws on damage past the
/// 16-byte header — damage downgrades end() to kTruncated instead.
class TsfReader {
 public:
  /// Throws std::runtime_error only when the stream is too short for the
  /// header or the magic is wrong (not a tsf file at all).
  explicit TsfReader(std::istream& in);

  [[nodiscard]] ReadEnd end() const { return end_; }
  /// False when the footer was missing or corrupt (agent/metric names
  /// unavailable; series still addressable by id).
  [[nodiscard]] bool has_dictionaries() const { return has_dictionaries_; }

  [[nodiscard]] const std::vector<TsfAgent>& agents() const { return agents_; }
  [[nodiscard]] const std::vector<std::string>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const std::vector<TsfSeries>& series() const {
    return series_;
  }
  /// Samples recovered for `series_id`, in append order. Ids beyond the
  /// directory (possible on truncated files) return an empty vector.
  [[nodiscard]] const std::vector<TsfSample>& samples(
      std::uint32_t series_id) const;

  /// Index of the metric named `name`, or -1 when absent.
  [[nodiscard]] std::int64_t find_metric(std::string_view name) const;

  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_; }

 private:
  void parse(const std::string& buf);
  bool parse_footer(const std::string& buf, std::size_t payload_begin,
                    std::size_t payload_len);

  ReadEnd end_ = ReadEnd::kTruncated;
  bool has_dictionaries_ = false;
  std::vector<TsfAgent> agents_;
  std::vector<std::string> metrics_;
  std::vector<TsfSeries> series_;
  std::vector<std::vector<TsfSample>> samples_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t blocks_ = 0;
};

}  // namespace syndog::telemetry
