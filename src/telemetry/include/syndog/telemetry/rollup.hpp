// Query/rollup layer over a decoded syndog-tsf/1 file.
//
// These are the operator-facing aggregations syndog_fleetctl exposes:
// per-AS alarm timelines, K̄ drift (bucketed mean/min/max of a metric),
// and fleet health summaries. All output orders are deterministic —
// sorted by AS number, agent id, then sim time — and the CSV/JSON
// renderers reuse the obs exporters' number formatting, so identical
// files roll up to byte-identical text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/time.hpp"

namespace syndog::telemetry {

/// One alarm transition (rising or falling edge of an "alarm" metric).
struct AlarmEdge {
  std::uint32_t as_number = 0;
  std::uint32_t agent = 0;  ///< index into reader.agents()
  util::SimTime at;
  bool raised = false;  ///< true = 0→1 edge, false = 1→0 edge
};

/// Fleet-wide alarm history, ordered by (AS, agent, time).
struct AlarmTimeline {
  std::vector<AlarmEdge> edges;
  std::uint64_t agents_alarmed = 0;  ///< agents with >= 1 rising edge
  std::uint64_t rising_edges = 0;
};

/// Extracts the alarm timeline for `metric` (0/1-valued series; samples
/// equal to the previous value are not edges). Agents start un-alarmed.
[[nodiscard]] AlarmTimeline alarm_timeline(const TsfReader& reader,
                                           std::string_view metric);

/// First rising edge per agent, or empty when the agent never alarmed.
[[nodiscard]] std::optional<util::SimTime> first_alarm(
    const AlarmTimeline& timeline, std::uint32_t agent);

/// One mitigation stage transition (samples of a "mitigation" metric
/// carry mitigate::Stage values: 0 observe, 1 rate-limit, 2 quarantine).
struct StageEdge {
  std::uint32_t as_number = 0;
  std::uint32_t agent = 0;  ///< index into reader.agents()
  util::SimTime at;
  double from = 0.0;
  double to = 0.0;
};

/// Fleet-wide mitigation history, ordered by (AS, agent, time).
struct StageTimeline {
  std::vector<StageEdge> edges;
  std::uint64_t agents_mitigating = 0;  ///< agents that ever left observe
  std::uint64_t engagements = 0;        ///< edges out of stage 0
  std::uint64_t quarantines = 0;        ///< edges into stage 2
};

/// Extracts the stage timeline for `metric` (stage-valued series; samples
/// equal to the previous value are not edges). Agents start at observe.
[[nodiscard]] StageTimeline stage_timeline(const TsfReader& reader,
                                           std::string_view metric);

/// One time bucket of a drift rollup.
struct DriftPoint {
  util::SimTime bucket_start;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t samples = 0;
};

/// Buckets every sample of `metric` (optionally restricted to one AS)
/// into `bucket` intervals and reports mean/min/max per bucket. Empty
/// buckets are omitted; points are ordered by bucket start.
[[nodiscard]] std::vector<DriftPoint> metric_drift(
    const TsfReader& reader, std::string_view metric, util::SimTime bucket,
    std::optional<std::uint32_t> as_filter = std::nullopt);

/// Per-AS health roll-up from a "health" metric whose samples are
/// core::AgentHealth values (0 healthy, 1 degraded, 2 blind). An agent's
/// state is its last sample; agents with no health samples count healthy.
struct HealthSummary {
  std::uint32_t as_number = 0;
  std::uint64_t agents = 0;
  std::uint64_t healthy = 0;
  std::uint64_t degraded = 0;
  std::uint64_t blind = 0;
  std::uint64_t transitions = 0;  ///< health samples that changed state
};

[[nodiscard]] std::vector<HealthSummary> health_summary(
    const TsfReader& reader, std::string_view metric);

/// CSV renderers (header row + one line per record, '\n' line ends).
[[nodiscard]] std::string alarm_timeline_csv(const TsfReader& reader,
                                             const AlarmTimeline& timeline);
[[nodiscard]] std::string stage_timeline_csv(const TsfReader& reader,
                                             const StageTimeline& timeline);
[[nodiscard]] std::string drift_csv(const std::vector<DriftPoint>& points);
[[nodiscard]] std::string health_csv(
    const std::vector<HealthSummary>& summaries);

/// Whole-file summary as a single deterministic JSON object (agent and
/// sample counts, per-AS fleet size, metric directory, read verdict).
[[nodiscard]] std::string fleet_summary_json(const TsfReader& reader);

}  // namespace syndog::telemetry
