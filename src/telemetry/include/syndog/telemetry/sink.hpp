// TelemetrySink — the fleet aggregation endpoint agents stream into.
//
// Producers (per-agent wiring in src/core, or anything else holding a
// series id) call push(); the sink appends the sample to a syndog-tsf/1
// stream through a TsfWriter. Two drain modes:
//
//   kInline   — push() appends synchronously on the caller's thread. The
//               deterministic reference: no threads, no queue.
//   kThreaded — push() enqueues into a bounded lock-free MPSC queue and a
//               dedicated consumer thread drains it (the COutput
//               consumer-thread pattern). Producers never block the DES
//               hot path: a full queue drops the sample and counts it in
//               stats().dropped — overflow is visible, never silent.
//
// Byte-identity contract: with a single producer and zero drops, the
// threaded drain writes a byte-identical file to the inline reference —
// the queue preserves push order, dictionary ids are assigned at
// registration time on the producer, and block flushes trigger on
// per-series sample counts, so thread interleaving never reaches the
// bytes. tests/telemetry_test.cpp holds this invariant.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/telemetry/queue.hpp"
#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/time.hpp"

namespace syndog::telemetry {

enum class DrainMode : std::uint8_t {
  kInline = 0,   ///< synchronous append; the deterministic reference
  kThreaded = 1, ///< bounded MPSC queue + consumer thread
};

[[nodiscard]] std::string_view to_string(DrainMode mode);

struct TelemetrySinkConfig {
  DrainMode mode = DrainMode::kInline;
  std::size_t queue_capacity = 1 << 16;  ///< samples (threaded mode only)
  std::size_t block_capacity = 512;      ///< samples per tsf block
};

/// Counters describing one sink's lifetime (all monotonic).
struct SinkStats {
  std::uint64_t pushed = 0;   ///< samples accepted (queued or appended)
  std::uint64_t dropped = 0;  ///< samples lost to a full queue
  std::uint64_t drained = 0;  ///< samples appended to the tsf stream
  std::uint64_t blocks = 0;   ///< tsf blocks written so far
};

class TelemetrySink {
 public:
  explicit TelemetrySink(std::ostream& out, TelemetrySinkConfig cfg = {});
  /// Finishes the stream if finish() was not called explicitly.
  ~TelemetrySink();
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Registration: ids are dense, assigned in call order (producer order
  /// is part of the byte-identity contract). Not hot-path — each call
  /// takes the writer lock and may allocate.
  std::uint32_t register_agent(std::string_view name, std::uint32_t as_number);
  /// Returns the metric's id, registering it on first use.
  std::uint32_t metric_id(std::string_view name);
  /// Returns the series id for agent × metric, opening it on first use.
  std::uint32_t series_id(std::uint32_t agent, std::uint32_t metric);

  /// Hot path. Threaded mode: one lock-free enqueue, zero allocations,
  /// never blocks (full queue → counted drop). Inline mode: synchronous
  /// append (allocation-free between block flushes).
  void push(std::uint32_t series, util::SimTime at, double value);

  /// Flattens an obs metrics snapshot through MetricsSnapshot::
  /// for_each_scalar and pushes one sample per scalar, timestamped `at`.
  /// Registers "counter.*" / "gauge.*" / "histogram.*" metrics on first
  /// use.
  void push_snapshot(std::uint32_t agent, util::SimTime at,
                     const obs::MetricsSnapshot& snapshot);

  /// Pushes the detector-relevant events retained by an obs tracer:
  /// PeriodRollover → "trace.syn"/"trace.syn_ack", CusumUpdate →
  /// "trace.k"/"trace.y", alarm edges → "trace.alarm" (1/0), health
  /// transitions → "trace.health". Other payloads are skipped.
  void push_trace(std::uint32_t agent, const obs::EventTracer& tracer);

  /// Drains everything, joins the consumer thread (threaded mode), writes
  /// the tsf footer and flushes the stream. Idempotent; push() after
  /// finish() throws.
  void finish();

  [[nodiscard]] SinkStats stats() const;
  [[nodiscard]] DrainMode mode() const { return cfg_.mode; }
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

 private:
  /// POD crossing the queue; 24 bytes, trivially copyable.
  struct Sample {
    std::uint32_t series = 0;
    std::int64_t at_ns = 0;
    double value = 0.0;
  };

  void consume();
  std::size_t drain_batch();

  TelemetrySinkConfig cfg_;
  mutable std::mutex writer_mutex_;  ///< guards writer_ + registration maps
  TsfWriter writer_;
  std::map<std::string, std::uint32_t, std::less<>> metric_ids_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
      series_ids_;
  SampleQueue<Sample> queue_;
  std::thread consumer_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> drained_{0};
};

}  // namespace syndog::telemetry
