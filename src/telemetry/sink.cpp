#include "syndog/telemetry/sink.hpp"

#include <chrono>
#include <stdexcept>
#include <variant>

namespace syndog::telemetry {

std::string_view to_string(DrainMode mode) {
  switch (mode) {
    case DrainMode::kInline:
      return "inline";
    case DrainMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

TelemetrySink::TelemetrySink(std::ostream& out, TelemetrySinkConfig cfg)
    : cfg_(cfg),
      writer_(out, cfg.block_capacity),
      queue_(cfg.mode == DrainMode::kThreaded ? cfg.queue_capacity : 2) {
  if (cfg_.mode == DrainMode::kThreaded) {
    consumer_ = std::thread([this] { consume(); });
  }
}

TelemetrySink::~TelemetrySink() { finish(); }

std::uint32_t TelemetrySink::register_agent(std::string_view name,
                                            std::uint32_t as_number) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return writer_.add_agent(name, as_number);
}

std::uint32_t TelemetrySink::metric_id(std::string_view name) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto it = metric_ids_.find(name);
  if (it != metric_ids_.end()) return it->second;
  const std::uint32_t id = writer_.add_metric(name);
  metric_ids_.emplace(std::string(name), id);
  return id;
}

std::uint32_t TelemetrySink::series_id(std::uint32_t agent,
                                       std::uint32_t metric) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto key = std::make_pair(agent, metric);
  const auto it = series_ids_.find(key);
  if (it != series_ids_.end()) return it->second;
  const std::uint32_t id = writer_.open_series(agent, metric);
  series_ids_.emplace(key, id);
  return id;
}

void TelemetrySink::push(std::uint32_t series, util::SimTime at,
                         double value) {
  if (finished_.load(std::memory_order_acquire)) {
    throw std::logic_error("TelemetrySink: push after finish");
  }
  if (cfg_.mode == DrainMode::kThreaded) {
    if (queue_.try_push(Sample{series, at.ns(), value})) {
      pushed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  writer_.append(series, at, value);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  drained_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetrySink::push_snapshot(std::uint32_t agent, util::SimTime at,
                                  const obs::MetricsSnapshot& snapshot) {
  snapshot.for_each_scalar([&](std::string_view name, double value) {
    push(series_id(agent, metric_id(name)), at, value);
  });
}

void TelemetrySink::push_trace(std::uint32_t agent,
                               const obs::EventTracer& tracer) {
  const std::uint32_t m_syn = metric_id("trace.syn");
  const std::uint32_t m_syn_ack = metric_id("trace.syn_ack");
  const std::uint32_t m_k = metric_id("trace.k");
  const std::uint32_t m_y = metric_id("trace.y");
  const std::uint32_t m_alarm = metric_id("trace.alarm");
  const std::uint32_t m_health = metric_id("trace.health");
  tracer.for_each([&](const obs::Event& ev) {
    if (const auto* roll = std::get_if<obs::PeriodRollover>(&ev.payload)) {
      push(series_id(agent, m_syn), ev.at, static_cast<double>(roll->syn));
      push(series_id(agent, m_syn_ack), ev.at,
           static_cast<double>(roll->syn_ack));
    } else if (const auto* cusum =
                   std::get_if<obs::CusumUpdate>(&ev.payload)) {
      push(series_id(agent, m_k), ev.at, cusum->k);
      push(series_id(agent, m_y), ev.at, cusum->y);
    } else if (std::get_if<obs::AlarmRaised>(&ev.payload) != nullptr) {
      push(series_id(agent, m_alarm), ev.at, 1.0);
    } else if (std::get_if<obs::AlarmCleared>(&ev.payload) != nullptr) {
      push(series_id(agent, m_alarm), ev.at, 0.0);
    } else if (const auto* health =
                   std::get_if<obs::HealthTransition>(&ev.payload)) {
      push(series_id(agent, m_health), ev.at,
           static_cast<double>(health->to));
    }
  });
}

std::size_t TelemetrySink::drain_batch() {
  // Bounded batch per lock hold so registration calls from the producer
  // are never starved behind a long drain.
  constexpr std::size_t kBatch = 1024;
  Sample s;
  std::size_t n = 0;
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  while (n < kBatch && queue_.try_pop(s)) {
    writer_.append(s.series, util::SimTime::nanoseconds(s.at_ns), s.value);
    ++n;
  }
  if (n != 0) drained_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void TelemetrySink::consume() {
  for (;;) {
    if (drain_batch() != 0) continue;
    if (stop_.load(std::memory_order_acquire)) {
      // stop_ is set after the last push; one more empty drain after
      // observing it means the queue is truly exhausted.
      if (drain_batch() == 0) return;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void TelemetrySink::finish() {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  if (consumer_.joinable()) {
    stop_.store(true, std::memory_order_release);
    consumer_.join();
  }
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  writer_.finish();
}

SinkStats TelemetrySink::stats() const {
  SinkStats s;
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.drained = drained_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  s.blocks = writer_.blocks_written();
  return s;
}

}  // namespace syndog::telemetry
