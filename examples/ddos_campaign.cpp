// Distributed campaign study (paper §4.2.3).
//
// A master spreads a V = 14,000 SYN/s aggregate flood (enough to disable
// a firewalled server [8]) evenly over A_s stub networks. Two views:
//
//  1. the defender's: as A_s grows, the per-stub rate f_i = V/A_s falls
//     toward each site's detection floor — the table shows how many
//     UNC- or Auckland-sized stubs the attacker must compromise before
//     SYN-dog stops seeing them (378 / ~8,000 in the paper);
//  2. the victim's: what the same aggregate does to a victim with a plain
//     backlog vs a SYN cache — and why those stateful defenses still
//     can't name the sources, while every participating stub's SYN-dog
//     can.
//
//   $ ddos_campaign
#include <cstdio>

#include "syndog/attack/campaign.hpp"
#include "syndog/core/mitigate.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/trace/site.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

/// Detection probability at one participating stub of a campaign spread
/// over `stubs` networks (a handful of trials).
double stub_detection_probability(const trace::SiteSpec& spec,
                                  const attack::CampaignSpec& campaign,
                                  int trials) {
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 500 + t),
        trace::kObservationPeriod);
    const attack::Campaign c(campaign, 900 + t);
    ps.add_outbound_syns(trace::bucket_times(c.flood_times_in_stub(0),
                                             ps.period, ps.size()));
    const auto reports = core::run_over_series(
        core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
    const std::int64_t onset = campaign.start / ps.period;
    const std::int64_t fend = std::min<std::int64_t>(
        (campaign.start + campaign.duration) / ps.period,
        static_cast<std::int64_t>(ps.size()) - 1);
    for (std::int64_t n = onset; n <= fend; ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++detected;
        break;
      }
    }
  }
  return static_cast<double>(detected) / trials;
}

}  // namespace

int main() {
  std::printf("=== the attacker's hiding trade-off ===\n");
  std::printf("aggregate V = 14,000 SYN/s spread over A_s stubs; one "
              "slave per stub\n\n");

  util::TextTable table({"A_s (stubs)", "f_i = V/A_s (SYN/s)",
                         "UNC stub detects", "Auckland stub detects"});
  trace::SiteSpec unc = trace::site_spec(trace::SiteId::kUnc);
  trace::SiteSpec auckland = trace::site_spec(trace::SiteId::kAuckland);
  // Shorten Auckland to its first hour to keep the demo quick.
  auckland.duration = util::SimTime::hours(1);

  for (const std::int64_t stubs : {100LL, 200LL, 378LL, 800LL, 4000LL,
                                   8000LL, 16000LL}) {
    attack::CampaignSpec campaign;
    campaign.aggregate_rate = attack::kFirewalledServerRate;
    campaign.stub_networks = stubs;
    campaign.start = util::SimTime::minutes(4);
    campaign.duration = util::SimTime::minutes(10);
    const double fi = campaign.per_stub_rate();
    const double p_unc = stub_detection_probability(unc, campaign, 5);
    const double p_auck =
        stub_detection_probability(auckland, campaign, 5);
    table.add_row({util::format_count(stubs), util::format_double(fi, 2),
                   util::format_double(p_unc, 2),
                   util::format_double(p_auck, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\npaper: hiding from UNC-sized stubs needs A_s > %lld; from\n"
      "Auckland-sized stubs A_s > %lld -- compromising hosts in that many\n"
      "distinct stub networks is the hard part (root access required).\n",
      static_cast<long long>(attack::max_hiding_stubs(
          attack::kFirewalledServerRate, 37.0)),
      static_cast<long long>(attack::max_hiding_stubs(
          attack::kFirewalledServerRate, 1.75)));

  // --- the victim's view --------------------------------------------------
  std::printf("\n=== meanwhile at the victim ===\n");
  std::printf("60 s of the aggregate flood vs a 1024-entry backlog, with "
              "~200 legitimate conn/s:\n\n");

  core::SynCache plain(1024);
  util::Rng rng(4242);
  std::uint64_t legit_total = 0;
  std::uint64_t legit_completed = 0;
  // Tick per millisecond: 14 spoofed SYNs + 0.2 legitimate ones.
  std::vector<std::pair<core::ConnKey, util::SimTime>> pending;
  for (int ms = 0; ms < 60000; ++ms) {
    const util::SimTime now = util::SimTime::milliseconds(ms);
    for (int i = 0; i < 14; ++i) {
      (void)plain.admit(core::ConnKey{net::Ipv4Address{rng.next_u32()},
                                      static_cast<std::uint16_t>(
                                          rng.uniform_int(1024, 65535)),
                                      80},
                        now);
    }
    if (rng.bernoulli(0.2)) {
      ++legit_total;
      const core::ConnKey key{net::Ipv4Address{0x0b000000u + rng.next_u32() %
                                               65536},
                              static_cast<std::uint16_t>(
                                  rng.uniform_int(1024, 65535)),
                              80};
      (void)plain.admit(key, now);
      pending.emplace_back(key, now + util::SimTime::milliseconds(120));
    }
    // Legitimate ACKs return one RTT later.
    while (!pending.empty() && pending.front().second <= now) {
      if (plain.complete(pending.front().first)) ++legit_completed;
      pending.erase(pending.begin());
    }
    (void)plain.expire(now, util::SimTime::seconds(75));
  }
  std::printf(
      "SYN cache (stateful): %llu admitted, %llu evicted; legitimate "
      "handshakes completed: %llu / %llu (%.1f%%)\n",
      static_cast<unsigned long long>(plain.stats().admitted),
      static_cast<unsigned long long>(plain.stats().evictions),
      static_cast<unsigned long long>(legit_completed),
      static_cast<unsigned long long>(legit_total),
      legit_total ? 100.0 * legit_completed / legit_total : 0.0);

  // SYN cookies keep zero state -- but pay per-SYN computation and still
  // learn nothing about where the flood comes from.
  core::SynCookieCodec codec(0x5ec2e7);
  std::uint64_t verified = 0;
  for (int i = 0; i < 100000; ++i) {
    const core::ConnKey key{net::Ipv4Address{rng.next_u32()},
                            static_cast<std::uint16_t>(
                                rng.uniform_int(1024, 65535)),
                            80};
    const std::uint32_t isn = rng.next_u32();
    const std::uint32_t cookie = codec.make(key, isn, 1);
    verified += codec.verify(key, isn, cookie, 1);
  }
  std::printf(
      "SYN cookies (stateless at the victim): %llu/100000 make+verify "
      "cycles ok -- but 14,000/s of them is pure overhead, and the victim\n"
      "still needs IP traceback to find the sources. SYN-dog at each leaf "
      "router names the slave's MAC directly.\n",
      static_cast<unsigned long long>(verified));
  return 0;
}
