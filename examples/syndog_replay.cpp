// Streaming SYN-dog replay, tcpreplay-style.
//
// Streams a capture — classic pcap or pcapng, any size — through the
// ingest pipeline in O(ring) memory and demultiplexes it onto per-stub
// SYN-dog agents: each --stubs prefix gets its own leaf router + agent
// pair driven by the capture's timestamps on a discrete-event clock, so
// period rollovers, CUSUM updates, and alarms land exactly where the
// simulated deployments put them.
//
//   $ syndog_replay capture.pcap                 # default stub 10.1.0.0/16
//   $ syndog_replay capture.pcapng --stubs 10.1.0.0/16,10.2.0.0/16
//   $ syndog_replay capture.pcap --pace 60       # 60x capture speed
//   $ syndog_replay capture.pcap --threads 4     # sharded parallel ingest
//   $ syndog_replay --gen demo.pcap              # write a demo capture
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/ingest/agent_demux.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/ingest/sharded.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"

using namespace syndog;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <capture.pcap|pcapng> [--pace X] [--threads N] "
               "[--stubs P1[,P2...]] [--default-stub N|none] "
               "[--dump-periods F]\n"
               "       %s --gen <out.pcap>\n"
               "  --pace X         throttle to X x capture speed "
               "(default: as fast as possible; incompatible with "
               "--threads > 1)\n"
               "  --threads N      shard ingest across N consumer threads "
               "(default 1 = single-threaded reference)\n"
               "  --stubs ...      comma-separated CIDR prefixes, one "
               "agent each (default 10.1.0.0/16)\n"
               "  --default-stub   stub index credited with frames "
               "matching no prefix ('none' to drop)\n"
               "  --dump-periods F write every stub's per-period table to "
               "F at full precision\n",
               argv0, argv0);
  return 2;
}

/// Same demo trace as examples/pcap_sniffer: a calibrated small site with
/// a spoofed flood from host 23 starting at minute 4.
void generate_demo_capture(const std::string& path) {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  spec.duration = util::SimTime::minutes(10);
  spec.outbound_rate = 10.0;
  spec.inbound_rate = 4.0;
  const trace::ConnectionTrace background =
      trace::generate_site_trace(spec, 7);

  trace::RenderConfig render_cfg;
  std::vector<trace::TimedPacket> packets =
      trace::render_trace(background, render_cfg);

  attack::FloodSpec flood;
  flood.rate = 40.0;
  flood.start = util::SimTime::minutes(4);
  flood.duration = util::SimTime::minutes(5);
  util::Rng rng(9);
  trace::AttackRenderConfig attack_cfg;
  attack_cfg.attacker_hosts = {23};
  packets = trace::merge_packets(
      std::move(packets),
      trace::render_attack(attack::generate_flood_times(flood, rng),
                           attack_cfg));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open " + path);
  pcap::Writer writer(file);
  for (const trace::TimedPacket& tp : packets) {
    writer.write(tp.at, net::encode_frame(tp.packet));
  }
  writer.flush();
  std::printf("generated %s: %llu frames, flood by host 23 from minute 4\n",
              path.c_str(),
              static_cast<unsigned long long>(writer.records_written()));
}

std::vector<ingest::StubSpec> parse_stubs(const std::string& arg) {
  std::vector<ingest::StubSpec> stubs;
  std::size_t begin = 0;
  while (begin <= arg.size()) {
    std::size_t comma = arg.find(',', begin);
    if (comma == std::string::npos) comma = arg.size();
    const std::string text = arg.substr(begin, comma - begin);
    const auto prefix = net::Ipv4Prefix::parse(text);
    if (!prefix) {
      throw std::runtime_error("bad stub prefix: '" + text + "'");
    }
    stubs.push_back(ingest::StubSpec{*prefix, text});
    begin = comma + 1;
  }
  return stubs;
}

/// One stub's replay outcome, independent of which ingest path produced it.
struct StubResult {
  std::string name;
  const std::vector<core::PeriodReport>* history = nullptr;
};

long long first_alarm_period(const std::vector<core::PeriodReport>& history) {
  for (const core::PeriodReport& r : history) {
    if (r.alarm) return static_cast<long long>(r.period_index);
  }
  return -1;
}

void print_stub_tables(const std::vector<StubResult>& results) {
  bool any_alarm = false;
  for (const StubResult& stub : results) {
    std::printf("\nstub %s: %zu periods observed\n", stub.name.c_str(),
                stub.history->size());
    std::printf("  n   SYN  SYN/ACK     Xn      yn\n");
    for (const core::PeriodReport& r : *stub.history) {
      std::printf("%3lld  %5lld  %5lld  %+.3f  %6.3f %s\n",
                  static_cast<long long>(r.period_index),
                  static_cast<long long>(r.syn_count),
                  static_cast<long long>(r.syn_ack_count), r.x, r.y,
                  r.alarm ? "ALARM" : "");
    }
    const long long alarm_period = first_alarm_period(*stub.history);
    if (alarm_period >= 0) {
      any_alarm = true;
      std::printf("  verdict: ALARMED at period %lld — SYN flooding "
                  "sources inside this stub\n",
                  alarm_period);
    } else {
      std::printf("  verdict: no flooding seen\n");
    }
  }
  std::printf("\ndetector %s\n",
              any_alarm ? "ALARMED" : "saw nothing suspicious");
}

/// Writes every stub's per-period table at full double precision, so two
/// runs agree on the file iff their detector trajectories are bit-identical
/// (the printed table rounds to 3 decimals and could mask a divergence).
void dump_periods(const std::string& dump_path,
                  const std::vector<StubResult>& results) {
  std::ofstream out(dump_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + dump_path);
  char line[160];
  for (const StubResult& stub : results) {
    out << "# stub " << stub.name << " periods=" << stub.history->size()
        << "\n";
    for (const core::PeriodReport& r : *stub.history) {
      std::snprintf(line, sizeof line, "%lld %lld %lld %.17g %.17g %d\n",
                    static_cast<long long>(r.period_index),
                    static_cast<long long>(r.syn_count),
                    static_cast<long long>(r.syn_ack_count), r.x, r.y,
                    r.alarm ? 1 : 0);
      out << line;
    }
  }
  if (!out.flush()) throw std::runtime_error("cannot write " + dump_path);
}

int replay(const std::string& path, double pace,
           const std::vector<ingest::StubSpec>& stubs, int default_stub,
           const std::string& dump_path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  ingest::ReplayConfig cfg;
  if (pace > 0.0) {
    cfg.clock = ingest::ReplayClock::kPaced;
    cfg.speed = pace;
  }
  ingest::ReplayEngine engine(file, cfg);

  ingest::DemuxOptions options;
  options.default_stub = default_stub;
  ingest::AgentDemux demux(engine.scheduler(), stubs,
                           core::SynDogParams::paper_defaults(), options);
  obs::Registry registry;
  demux.attach_observer(nullptr, registry);
  engine.attach_observer(registry);
  engine.add_sink(demux);

  std::printf("%s: %s stream, %zu stub agent(s)\n", path.c_str(),
              engine.pipeline().format() == ingest::CaptureFormat::kPcapng
                  ? "pcapng"
                  : "pcap",
              stubs.size());

  const ingest::PipelineStats& stats = engine.run();
  demux.close_final_period();

  std::printf("%llu records, %llu frames (%llu undecodable), %llu bytes%s\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.decode_failures),
              static_cast<unsigned long long>(stats.bytes),
              stats.truncated ? " -- capture ends mid-record" : "");
  if (demux.local_frames() != 0 || demux.unroutable_frames() != 0) {
    std::printf("%llu LAN-local frames, %llu unroutable\n",
                static_cast<unsigned long long>(demux.local_frames()),
                static_cast<unsigned long long>(demux.unroutable_frames()));
  }

  std::vector<StubResult> results;
  results.reserve(demux.stub_count());
  for (std::size_t i = 0; i < demux.stub_count(); ++i) {
    results.push_back(StubResult{demux.stub(i).name, &demux.agent(i).history()});
  }
  print_stub_tables(results);
  if (!dump_path.empty()) dump_periods(dump_path, results);
  return 0;
}

int replay_sharded(const std::string& path, std::size_t threads,
                   const std::vector<ingest::StubSpec>& stubs,
                   int default_stub, const std::string& dump_path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  ingest::ShardedConfig cfg;
  cfg.threads = threads;
  cfg.params = core::SynDogParams::paper_defaults();
  cfg.default_stub = default_stub;
  ingest::ShardedReplay sharded(file, stubs, cfg);
  obs::Registry registry;
  sharded.attach_observer(registry);

  std::printf("%s: %s stream, %zu stub agent(s), %zu ingest threads\n",
              path.c_str(),
              sharded.format() == ingest::CaptureFormat::kPcapng ? "pcapng"
                                                                 : "pcap",
              stubs.size(), threads);

  sharded.run();
  const ingest::PipelineStats& stats = sharded.stats();

  std::printf("%llu records, %llu frames (%llu undecodable), %llu bytes%s\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.decode_failures),
              static_cast<unsigned long long>(stats.bytes),
              stats.truncated ? " -- capture ends mid-record" : "");
  if (sharded.local_frames() != 0 || sharded.unroutable_frames() != 0) {
    std::printf("%llu LAN-local frames, %llu unroutable\n",
                static_cast<unsigned long long>(sharded.local_frames()),
                static_cast<unsigned long long>(sharded.unroutable_frames()));
  }

  std::vector<StubResult> results;
  results.reserve(sharded.stub_count());
  for (std::size_t i = 0; i < sharded.stub_count(); ++i) {
    results.push_back(StubResult{sharded.stub(i).name, &sharded.history(i)});
  }
  print_stub_tables(results);
  if (!dump_path.empty()) dump_periods(dump_path, results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string gen_path;
  std::string dump_path;
  std::string stubs_arg = "10.1.0.0/16";
  std::string default_stub_arg = "0";
  double pace = 0.0;
  long threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe) -- CLI arg parsing, pre-threads
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--pace") {
      pace = std::atof(value());
      if (!(pace > 0.0)) return usage(argv[0]);
    } else if (arg == "--threads") {
      threads = std::atol(value());
      if (threads < 1) return usage(argv[0]);
    } else if (arg == "--dump-periods") {
      dump_path = value();
      if (dump_path.empty()) return usage(argv[0]);
    } else if (arg == "--stubs") {
      stubs_arg = value();
    } else if (arg == "--default-stub") {
      default_stub_arg = value();
    } else if (arg == "--gen") {
      gen_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (!gen_path.empty()) {
      generate_demo_capture(gen_path);
      if (path.empty()) return 0;
    }
    if (path.empty()) return usage(argv[0]);
    if (threads > 1 && pace > 0.0) {
      std::fprintf(stderr,
                   "syndog_replay: --pace needs the single-threaded replay "
                   "clock; drop it or use --threads 1\n");
      return usage(argv[0]);
    }
    const std::vector<ingest::StubSpec> stubs = parse_stubs(stubs_arg);
    const int default_stub =
        default_stub_arg == "none" ? -1 : std::atoi(default_stub_arg.c_str());
    if (threads > 1) {
      return replay_sharded(path, static_cast<std::size_t>(threads), stubs,
                            default_stub, dump_path);
    }
    return replay(path, pace, stubs, default_stub, dump_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "syndog_replay: %s\n", e.what());
    return 1;
  }
}
