// Offline pcap analysis, libpcap-tool style.
//
// With no arguments, first *generates* a capture file: a calibrated
// synthetic leaf-router trace with a spoofed SYN flood mixed in, written
// as a standard .pcap (open it in tcpdump/wireshark if you like). Then —
// or directly on a pcap you pass as argv[1] — it replays the capture
// through the frame-level classifier, reconstructs the per-period
// SYN / SYN-ACK counters, and runs the SYN-dog CUSUM over them.
//
//   $ pcap_sniffer                # self-generate syndog_demo.pcap, analyze
//   $ pcap_sniffer capture.pcap   # analyze an existing Ethernet capture
//
// Analysis streams through ingest::ReplayEngine, so captures of any size
// run in O(ring) memory and pcapng works transparently; the per-period
// accounting below is byte-identical to the original whole-file loop.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "syndog/attack/flood.hpp"
#include "syndog/classify/segment.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"

using namespace syndog;

namespace {

std::string generate_demo_capture() {
  const std::string path = "syndog_demo.pcap";
  // A small site (~10 conn/s) for 10 minutes, flood at minute 4.
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  spec.duration = util::SimTime::minutes(10);
  spec.outbound_rate = 10.0;
  spec.inbound_rate = 4.0;
  const trace::ConnectionTrace background =
      trace::generate_site_trace(spec, 7);

  trace::RenderConfig render_cfg;
  std::vector<trace::TimedPacket> packets =
      trace::render_trace(background, render_cfg);

  attack::FloodSpec flood;
  flood.rate = 40.0;
  flood.start = util::SimTime::minutes(4);
  flood.duration = util::SimTime::minutes(5);
  util::Rng rng(9);
  trace::AttackRenderConfig attack_cfg;
  attack_cfg.attacker_hosts = {23};
  packets = trace::merge_packets(
      std::move(packets),
      trace::render_attack(attack::generate_flood_times(flood, rng),
                           attack_cfg));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  pcap::Writer writer(file);
  for (const trace::TimedPacket& tp : packets) {
    writer.write(tp.at, net::encode_frame(tp.packet));
  }
  std::printf("generated %s: %llu frames, flood by host 23 (%s) from "
              "minute 4\n\n",
              path.c_str(),
              static_cast<unsigned long long>(writer.records_written()),
              net::MacAddress::for_host(23).to_string().c_str());
  return path;
}

}  // namespace

/// Per-period SYN / SYN-ACK accounting over the replay stream: the same
/// sniffers, detector, and period boundaries as the original whole-file
/// loop, but fed frame-by-frame from the bounded ingest ring.
class AnalysisSink final : public ingest::ReplaySink {
 public:
  void on_frame(util::SimTime at, const ingest::Frame& frame) override {
    while (at >= period_end_) {
      close_period();
      period_end_ += t0_;
    }
    // Direction from addressing: frames sourced inside the stub (or
    // leaving it with a spoofed source) are outbound.
    const net::Packet& pkt = frame.packet;
    const bool outbound_dir =
        stub_.contains(pkt.ip.src) || !stub_.contains(pkt.ip.dst);
    mix_.add(outbound_dir ? outbound_.on_packet(pkt)
                          : inbound_.on_packet(pkt));
  }

  /// Closes the trailing partial period.
  void finish() { close_period(); }

  [[nodiscard]] bool alarmed() const { return alarmed_printed_; }
  [[nodiscard]] const classify::SegmentCounters& mix() const { return mix_; }

 private:
  void close_period() {
    const core::PeriodReport r = dog_.observe_period(
        static_cast<std::int64_t>(outbound_.harvest()),
        static_cast<std::int64_t>(inbound_.harvest()));
    std::printf("%3lld  %5lld  %5lld  %+.3f  %6.3f %s\n",
                static_cast<long long>(r.period_index),
                static_cast<long long>(r.syn_count),
                static_cast<long long>(r.syn_ack_count), r.x, r.y,
                r.alarm ? "ALARM" : "");
    if (r.alarm && !alarmed_printed_) {
      alarmed_printed_ = true;
      std::printf("      ^^^ SYN flooding sources inside this stub "
                  "network\n");
    }
  }

  net::Ipv4Prefix stub_ = *net::Ipv4Prefix::parse("10.1.0.0/16");
  core::Sniffer outbound_{core::SnifferRole::kOutbound};
  core::Sniffer inbound_{core::SnifferRole::kInbound};
  core::SynDog dog_{core::SynDogParams::paper_defaults()};
  classify::SegmentCounters mix_;
  util::SimTime t0_ = dog_.params().observation_period;
  util::SimTime period_end_ = t0_;
  bool alarmed_printed_ = false;
};

int analyze(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  ingest::ReplayEngine engine(file, {});
  AnalysisSink sink;
  engine.add_sink(sink);
  std::printf("%s: %s stream\n", path.c_str(),
              engine.pipeline().format() == ingest::CaptureFormat::kPcapng
                  ? "pcapng"
                  : "pcap");

  std::printf("\n  n   SYN  SYN/ACK     Xn      yn\n");
  const ingest::PipelineStats& stats = engine.run();
  sink.finish();
  if (stats.truncated) {
    std::fprintf(stderr, "warning: capture ends mid-record\n");
  }

  std::printf("\ntraffic mix: ");
  for (std::size_t k = 0; k < classify::kSegmentKindCount; ++k) {
    std::printf("%s=%llu ",
                std::string(classify::to_string(
                    static_cast<classify::SegmentKind>(k))).c_str(),
                static_cast<unsigned long long>(sink.mix().counts[k]));
  }
  std::printf("\n%llu records; detector %s\n",
              static_cast<unsigned long long>(stats.records),
              sink.alarmed() ? "ALARMED" : "saw nothing suspicious");
  return 0;
}

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : generate_demo_capture();
  try {
    return analyze(path);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
}
