// Fleet telemetry query tool: rolls up syndog-tsf/1 files.
//
// A fleet of SYN-dog stubs streams into one telemetry file (see
// core::FleetRecorder and docs/OBSERVABILITY.md §Fleet telemetry); this
// tool answers the operator questions over that file: which ASes
// alarmed and when, how the K-bar baseline drifted, and how healthy the
// fleet is. All output is deterministic — identical files print
// byte-identical text (tests/fleetctl_determinism.cmake pins this, and
// pins that --gen's inline and threaded drains write identical files).
//
//   $ syndog_fleetctl gen fleet.tsf           # write a demo campaign
//   $ syndog_fleetctl summary fleet.tsf       # whole-file JSON
//   $ syndog_fleetctl alarms fleet.tsf        # alarm timeline CSV
//   $ syndog_fleetctl kbar fleet.tsf --bucket-s 600 --as 64497
//   $ syndog_fleetctl drift fleet.tsf y       # any metric's drift
//   $ syndog_fleetctl health fleet.tsf        # per-AS health CSV
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "syndog/core/fleet.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/telemetry/rollup.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s gen <out.tsf> [--threaded]\n"
      "       %s summary <file.tsf>\n"
      "       %s alarms <file.tsf>\n"
      "       %s kbar <file.tsf> [--bucket-s N] [--as N]\n"
      "       %s drift <file.tsf> <metric> [--bucket-s N] [--as N]\n"
      "       %s health <file.tsf>\n"
      "       %s mitigation <file.tsf>\n"
      "  gen       write a deterministic demo fleet campaign\n"
      "  summary   whole-file JSON: dictionaries, spans, per-AS fleet\n"
      "  alarms    alarm edge timeline CSV, ordered by (AS, agent, t)\n"
      "  kbar      K-bar drift CSV (bucketed mean/min/max; default 1 h)\n"
      "  drift     same rollup for any metric in the file\n"
      "  health    per-AS health summary CSV\n"
      "  mitigation  stage edge timeline CSV (observe/rate-limit/"
      "quarantine)\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Demo campaign: 12 stubs in 3 ASes over ~3.3 h of sim time. Two stubs
/// of AS 64498 flood near the end (their alarms populate the timeline)
/// and two agents end the run in non-healthy states.
void generate_demo(const std::string& path, telemetry::DrainMode mode) {
  constexpr std::uint64_t kSeed = 20020816;
  constexpr int kAgents = 12;
  constexpr int kAgentsPerAs = 4;
  constexpr std::int64_t kPeriods = 600;
  constexpr std::int64_t kT0Seconds = 20;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  telemetry::TelemetrySinkConfig cfg;
  cfg.mode = mode;
  telemetry::TelemetrySink sink(out, cfg);
  {
    core::FleetRecorder fleet(sink, core::FleetRecorder::Cadence{5});
    core::SynDogParams params;
    params.observation_period = util::SimTime::seconds(kT0Seconds);
    for (int a = 0; a < kAgents; ++a) {
      char name[32];
      std::snprintf(name, sizeof name, "demo%02d", a);
      fleet.add_agent(name,
                      static_cast<std::uint32_t>(64496 + a / kAgentsPerAs),
                      params);
    }
    for (std::int64_t period = 0; period < kPeriods; ++period) {
      const util::SimTime at =
          util::SimTime::seconds(kT0Seconds * (period + 1));
      for (int a = 0; a < kAgents; ++a) {
        util::Rng rng = util::Rng::child(
            kSeed, static_cast<std::uint64_t>(a) * 100000 +
                       static_cast<std::uint64_t>(period));
        const double lambda = 40.0 + 5.0 * a;
        const std::int64_t syn_acks = rng.poisson(lambda);
        std::int64_t syns = syn_acks + rng.poisson(0.05 * lambda);
        // Stubs 8 and 9 (AS 64498) flood for the last 40 periods.
        if ((a == 8 || a == 9) && period >= kPeriods - 40) {
          syns += rng.poisson(3.0 * lambda);
        }
        fleet.observe(static_cast<std::size_t>(a), syns, syn_acks, at);
      }
    }
    // Fast-forward slots never change health on their own; stamp two
    // end-of-run states so the health rollup has something to say.
    const std::uint32_t health =
        sink.metric_id(core::kFleetMetricHealth);
    sink.push(sink.series_id(3, health),
              util::SimTime::seconds(kT0Seconds * kPeriods), 1.0);
    sink.push(sink.series_id(7, health),
              util::SimTime::seconds(kT0Seconds * kPeriods), 2.0);
    // Mirror what a mitigate::MitigationRecorder attached to stub 8's
    // controller would stream during its flood: engage -> quarantine ->
    // probe back through rate-limit -> release.
    const std::uint32_t mitigation =
        sink.metric_id(core::kFleetMetricMitigation);
    const std::int64_t flood_start = kPeriods - 40;
    const auto stamp = [&](std::int64_t period, double stage) {
      sink.push(sink.series_id(8, mitigation),
                util::SimTime::seconds(kT0Seconds * (period + 1)), stage);
    };
    stamp(flood_start + 1, 1.0);   // engage: rate-limit
    stamp(flood_start + 4, 2.0);   // escalate: quarantine
    stamp(kPeriods - 4, 1.0);      // staged release: probe at rate-limit
    stamp(kPeriods - 2, 0.0);      // probe passed: observe
  }
  sink.finish();
}

struct DriftArgs {
  util::SimTime bucket = util::SimTime::hours(1);
  std::optional<std::uint32_t> as_filter;
};

bool parse_drift_args(int argc, char** argv, int first, DriftArgs& out) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bucket-s" && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v <= 0) return false;
      out.bucket = util::SimTime::seconds(v);
    } else if (arg == "--as" && i + 1 < argc) {
      out.as_filter = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    if (cmd == "gen") {
      telemetry::DrainMode mode = telemetry::DrainMode::kInline;
      if (argc == 4 && std::strcmp(argv[3], "--threaded") == 0) {
        mode = telemetry::DrainMode::kThreaded;
      } else if (argc != 3) {
        return usage(argv[0]);
      }
      generate_demo(path, mode);
      std::printf("wrote %s (%s drain)\n", path.c_str(),
                  std::string(to_string(mode)).c_str());
      return 0;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv[0], path.c_str());
      return 1;
    }
    const telemetry::TsfReader reader(in);
    if (reader.end() == telemetry::ReadEnd::kTruncated) {
      std::fprintf(stderr,
                   "%s: warning: %s is truncated or damaged; rolling up "
                   "the intact prefix (%llu samples)\n",
                   argv[0], path.c_str(),
                   static_cast<unsigned long long>(reader.total_samples()));
    }

    if (cmd == "summary" && argc == 3) {
      std::printf("%s\n", telemetry::fleet_summary_json(reader).c_str());
      return 0;
    }
    if (cmd == "alarms" && argc == 3) {
      const auto timeline =
          telemetry::alarm_timeline(reader, core::kFleetMetricAlarm);
      std::fputs(telemetry::alarm_timeline_csv(reader, timeline).c_str(),
                 stdout);
      return 0;
    }
    if (cmd == "kbar" || cmd == "drift") {
      std::string metric(core::kFleetMetricK);
      int first = 3;
      if (cmd == "drift") {
        if (argc < 4) return usage(argv[0]);
        metric = argv[3];
        first = 4;
      }
      DriftArgs drift;
      if (!parse_drift_args(argc, argv, first, drift)) return usage(argv[0]);
      std::fputs(
          telemetry::drift_csv(telemetry::metric_drift(
                                   reader, metric, drift.bucket,
                                   drift.as_filter))
              .c_str(),
          stdout);
      return 0;
    }
    if (cmd == "mitigation" && argc == 3) {
      const auto timeline =
          telemetry::stage_timeline(reader, core::kFleetMetricMitigation);
      std::fputs(telemetry::stage_timeline_csv(reader, timeline).c_str(),
                 stdout);
      return 0;
    }
    if (cmd == "health" && argc == 3) {
      std::fputs(telemetry::health_csv(telemetry::health_summary(
                                           reader, core::kFleetMetricHealth))
                     .c_str(),
                 stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return usage(argv[0]);
}
