// syndog_tool — command-line front end to the library.
//
//   syndog_tool gen-trace [site=unc] [seed=42] [out=trace.pcap]
//                         [flood_rate=0] [flood_start_min=5]
//                         [format=pcap|pcapng]
//       render a calibrated synthetic leaf-router capture (optionally
//       with a spoofed flood mixed in) to a pcap file
//
//   syndog_tool analyze <file.pcap> [a=0.35] [N=1.05] [t0=20]
//                         [stub=10.1.0.0/16]
//       run the SYN-dog detector over an Ethernet capture and report
//       per-period statistics, alarms, and MAC suspects
//
//   syndog_tool sensitivity [site=unc] [seed=42]
//       estimate a site's K-bar, c, and the Eq. (8) detection floor,
//       plus the hiding capacity against V=14000 SYN/s campaigns
//
//   syndog_tool sweep [site=unc] [trials=10] [rates=30,40,60,90]
//       detection probability/delay table over flood rates
//
//   syndog_tool calibrate <capture> [stub=10.1.0.0/16] [t0=20]
//       derive a site profile (K-bar, c, burstiness, recommended
//       detector parameters) from any pcap/pcapng capture
//
// analyze and calibrate accept both classic pcap and pcapng files.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "syndog/attack/campaign.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/classify/segment.hpp"
#include "syndog/core/locator.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/detect/arl_bins.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/pcap/pcapng.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/trace/calibrate.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"
#include "syndog/util/config.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

trace::SiteId parse_site(const util::Config& cfg) {
  const std::string name = cfg.get_string("site", "unc");
  if (util::iequals(name, "lbl")) return trace::SiteId::kLbl;
  if (util::iequals(name, "harvard")) return trace::SiteId::kHarvard;
  if (util::iequals(name, "unc")) return trace::SiteId::kUnc;
  if (util::iequals(name, "auckland")) return trace::SiteId::kAuckland;
  throw std::invalid_argument("unknown site '" + name +
                              "' (lbl|harvard|unc|auckland)");
}

core::SynDogParams parse_params(const util::Config& cfg) {
  core::SynDogParams params = core::SynDogParams::paper_defaults();
  params.a = cfg.get_double("a", params.a);
  params.h = cfg.get_double("h", 2.0 * params.a);
  params.threshold = cfg.get_double("N", params.threshold);
  params.ewma_alpha = cfg.get_double("alpha", params.ewma_alpha);
  params.observation_period =
      util::SimTime::seconds(cfg.get_int("t0", 20));
  return params;
}

int cmd_gen_trace(const util::Config& cfg) {
  const trace::SiteSpec spec = trace::site_spec(parse_site(cfg));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const std::string out_path =
      cfg.get_string("out", util::strprintf("%s.pcap", spec.name.c_str()));

  std::vector<trace::TimedPacket> packets =
      trace::render_trace(trace::generate_site_trace(spec, seed),
                          trace::RenderConfig{});
  const double flood_rate = cfg.get_double("flood_rate", 0.0);
  if (flood_rate > 0.0) {
    attack::FloodSpec flood;
    flood.rate = flood_rate;
    flood.start =
        util::SimTime::minutes(cfg.get_int("flood_start_min", 5));
    flood.duration = util::SimTime::minutes(10);
    util::Rng rng(seed ^ 0xf1);
    packets = trace::merge_packets(
        std::move(packets),
        trace::render_attack(attack::generate_flood_times(flood, rng),
                             trace::AttackRenderConfig{}));
  }

  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const std::string format = cfg.get_string("format", "pcap");
  std::uint64_t written = 0;
  if (util::iequals(format, "pcapng")) {
    pcap::PcapngWriter writer(file);
    for (const trace::TimedPacket& tp : packets) {
      writer.write(tp.at, net::encode_frame(tp.packet));
    }
    written = writer.records_written();
  } else if (util::iequals(format, "pcap")) {
    pcap::Writer writer(file);
    for (const trace::TimedPacket& tp : packets) {
      writer.write(tp.at, net::encode_frame(tp.packet));
    }
    written = writer.records_written();
  } else {
    std::fprintf(stderr, "unknown format '%s' (pcap|pcapng)\n",
                 format.c_str());
    return 1;
  }
  std::printf("%s (%s): %llu frames, %s of %s traffic%s\n",
              out_path.c_str(), format.c_str(),
              static_cast<unsigned long long>(written),
              spec.duration.to_string().c_str(), spec.name.c_str(),
              flood_rate > 0.0
                  ? util::strprintf(" + %.0f SYN/s flood", flood_rate)
                        .c_str()
                  : "");
  return 0;
}

int cmd_analyze(const std::string& path, const util::Config& cfg) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const auto stub = net::Ipv4Prefix::parse(
      cfg.get_string("stub", "10.1.0.0/16"));
  if (!stub) {
    std::fprintf(stderr, "bad stub prefix\n");
    return 1;
  }

  const std::vector<pcap::Record> records = pcap::read_any_capture(file);
  const core::SynDogParams params = parse_params(cfg);
  core::SynDog dog(params);
  core::Sniffer outbound(core::SnifferRole::kOutbound);
  core::Sniffer inbound(core::SnifferRole::kInbound);
  core::SourceLocator locator(*stub);

  util::TextTable table({"period", "SYN", "SYN/ACK", "Xn", "yn", "alarm"});
  util::SimTime period_end = params.observation_period;
  int alarms = 0;
  const auto close_period = [&] {
    const core::PeriodReport r = dog.observe_period(
        static_cast<std::int64_t>(outbound.harvest()),
        static_cast<std::int64_t>(inbound.harvest()));
    alarms += r.alarm ? 1 : 0;
    table.add_row({std::to_string(r.period_index),
                   std::to_string(r.syn_count),
                   std::to_string(r.syn_ack_count),
                   util::format_double(r.x, 3),
                   util::format_double(r.y, 3), r.alarm ? "ALARM" : ""});
  };

  for (const pcap::Record& rec : records) {
    while (rec.timestamp >= period_end) {
      close_period();
      period_end += params.observation_period;
    }
    const auto pkt = net::decode_frame(rec.data);
    if (!pkt) continue;
    const bool out_dir =
        stub->contains(pkt->ip.src) || !stub->contains(pkt->ip.dst);
    if (out_dir) {
      outbound.on_frame(rec.data);
      locator.on_packet(rec.timestamp, *pkt);
    } else {
      inbound.on_frame(rec.data);
    }
  }
  close_period();

  std::printf("%s", table.to_string().c_str());
  std::printf("%d alarm period(s); K estimate %.1f; Eq. (8) floor %.2f "
              "SYN/s\n",
              alarms, dog.k(), dog.min_detectable_rate());
  if (alarms > 0) {
    std::printf("suspects (stations emitting spoofed-source SYNs):\n");
    for (const core::Suspect& s : locator.suspects()) {
      std::printf("  %s  spoofed=%llu total=%llu first=%s last=%s\n",
                  s.mac.to_string().c_str(),
                  static_cast<unsigned long long>(s.spoofed_syns),
                  static_cast<unsigned long long>(s.total_syns),
                  s.first_seen.to_string().c_str(),
                  s.last_seen.to_string().c_str());
    }
  }
  return alarms > 0 ? 2 : 0;  // distinct exit code when a flood was found
}

int cmd_sensitivity(const util::Config& cfg) {
  const trace::SiteSpec spec = trace::site_spec(parse_site(cfg));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const trace::PeriodSeries ps = trace::extract_periods(
      trace::generate_site_trace(spec, seed), trace::kObservationPeriod);
  stats::OnlineStats k;
  double delta = 0.0;
  double acks = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    k.add(static_cast<double>(ps.in_syn_ack[i]));
    delta += static_cast<double>(ps.out_syn[i] - ps.in_syn_ack[i]);
    acks += static_cast<double>(ps.in_syn_ack[i]);
  }
  const core::SynDogParams params = parse_params(cfg);
  const double c = acks > 0 ? delta / acks : 0.0;
  const double floor_c0 = core::SynDog::min_detectable_rate(
      params.a, 0.0, k.mean(), params.observation_period);
  std::printf(
      "%s: %zu periods, K-bar = %.1f +- %.1f per %lld s, c = %.4f\n"
      "Eq. (8) detection floor: %.2f SYN/s (conservative, c=0); %.2f "
      "using measured c\n"
      "hiding capacity vs V=14000 SYN/s: %lld stubs of this size\n",
      spec.name.c_str(), ps.size(), k.mean(), k.stddev(),
      static_cast<long long>(params.observation_period.to_seconds()), c,
      floor_c0,
      core::SynDog::min_detectable_rate(params.a, c, k.mean(),
                                        params.observation_period),
      static_cast<long long>(
          attack::max_hiding_stubs(attack::kFirewalledServerRate,
                                   floor_c0)));

  // False-alarm budget via the scaled-Poisson ARL (docs: arl.hpp). The
  // site's diurnal swing means one mean-rate ARL misleads: quiet hours
  // have small lambda, a heavier-tailed scaled Poisson, and a shorter
  // run length. Bin the realized per-period SYN/ACK counts into
  // quartiles, model each bin as Poisson(c * lambda_bin) scaled by an
  // adaptive K-bar ~ lambda_bin, and combine false-alarm *rates* (the
  // harmonic mean of the per-bin ARLs weighted by occupancy).
  if (c > 0.0) {
    std::vector<double> counts;
    counts.reserve(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (ps.in_syn_ack[i] > 0) {
        counts.push_back(static_cast<double>(ps.in_syn_ack[i]));
      }
    }
    detect::BinnedArlSpec bins_spec;
    bins_spec.c = c;
    bins_spec.offset = params.a;
    bins_spec.threshold = params.threshold;
    const detect::BinnedArlResult budget =
        detect::binned_poisson_arl(std::move(counts), k.mean(), bins_spec);
    if (!budget.bins.empty()) {
      const double t0_s = params.observation_period.to_seconds();
      util::TextTable arl_table(
          {"lambda bin", "mean SYN/ACK per t0", "ARL0 (periods)",
           "ARL0 (days)"});
      for (std::size_t b = 0; b < budget.bins.size(); ++b) {
        const detect::LambdaBinArl& bin = budget.bins[b];
        arl_table.add_row(
            {"q" + std::to_string(b + 1),
             util::format_double(bin.lambda, 1),
             util::format_double(bin.arl0, 0),
             util::format_double(bin.arl0 * t0_s / 86400.0, 1)});
      }
      std::printf("\nscaled-Poisson CUSUM false-alarm budget (a=%.2f, "
                  "N=%.2f):\n%s",
                  params.a, params.threshold, arl_table.to_string().c_str());
      std::printf(
          "mean-rate ARL0: %.0f periods (%.1f days); rate-averaged over "
          "bins: %.0f periods (%.1f days)\n"
          "the quiet-hour bins dominate the realized false-alarm rate -- "
          "size N for q1, not for the mean\n",
          budget.mean_rate_arl0, budget.mean_rate_arl0 * t0_s / 86400.0,
          budget.combined_arl0, budget.combined_arl0 * t0_s / 86400.0);
    }
  }
  return 0;
}

int cmd_sweep(const util::Config& cfg) {
  const trace::SiteSpec spec = trace::site_spec(parse_site(cfg));
  const int trials = static_cast<int>(cfg.get_int("trials", 10));
  const core::SynDogParams params = parse_params(cfg);
  std::vector<double> rates;
  for (const std::string& r :
       util::split(cfg.get_string("rates", "30,40,60,90"), ',')) {
    rates.push_back(std::stod(r));
  }

  util::TextTable table({"fi (SYN/s)", "detect prob", "mean delay [t0]",
                         "false alarms"});
  for (const double fi : rates) {
    int detected = 0;
    int false_alarms = 0;
    double delay_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
      trace::PeriodSeries ps = trace::extract_periods(
          trace::generate_site_trace(spec, 7000 + t),
          params.observation_period);
      util::Rng rng(8000 + t);
      attack::FloodSpec flood;
      flood.rate = fi;
      flood.start = util::SimTime::from_seconds(rng.uniform(
          180.0, std::max(200.0, spec.duration.to_seconds() - 660.0)));
      const auto times = attack::generate_flood_times(flood, rng);
      ps.add_outbound_syns(
          trace::bucket_times(times, ps.period, ps.size()));
      const auto reports =
          core::run_over_series(params, ps.out_syn, ps.in_syn_ack);
      const std::int64_t onset = flood.start / ps.period;
      const std::int64_t fend = std::min<std::int64_t>(
          (flood.start + flood.duration) / ps.period,
          static_cast<std::int64_t>(ps.size()) - 1);
      for (std::int64_t n = 0; n < onset; ++n) {
        false_alarms += reports[static_cast<std::size_t>(n)].alarm;
      }
      for (std::int64_t n = onset; n <= fend; ++n) {
        if (reports[static_cast<std::size_t>(n)].alarm) {
          ++detected;
          delay_sum += static_cast<double>(n - onset);
          break;
        }
      }
    }
    table.add_row({util::format_double(fi, 2),
                   util::format_double(
                       static_cast<double>(detected) / trials, 2),
                   detected ? util::format_double(delay_sum / detected, 2)
                            : "-",
                   std::to_string(false_alarms)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}


/// Derives a site profile from an arbitrary capture: per-period SYN and
/// SYN/ACK statistics, the normalized-difference mean c, and detector
/// parameters recommended by the same rules AdaptiveSynDog uses.
int cmd_calibrate(const std::string& path, const util::Config& cfg) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const auto stub =
      net::Ipv4Prefix::parse(cfg.get_string("stub", "10.1.0.0/16"));
  if (!stub) {
    std::fprintf(stderr, "bad stub prefix\n");
    return 1;
  }
  const util::SimTime t0 = util::SimTime::seconds(cfg.get_int("t0", 20));

  const std::vector<pcap::Record> records = pcap::read_any_capture(file);
  if (records.empty()) {
    std::fprintf(stderr, "%s: no packets\n", path.c_str());
    return 1;
  }

  // Bucket outgoing SYNs and incoming SYN/ACKs per period.
  std::vector<std::int64_t> syns;
  std::vector<std::int64_t> acks;
  for (const pcap::Record& rec : records) {
    const auto idx = static_cast<std::size_t>(rec.timestamp / t0);
    if (idx >= syns.size()) {
      syns.resize(idx + 1, 0);
      acks.resize(idx + 1, 0);
    }
    const auto kind = classify::classify_frame_fast(rec.data);
    if (kind != classify::SegmentKind::kSyn &&
        kind != classify::SegmentKind::kSynAck) {
      continue;
    }
    const auto pkt = net::decode_frame(rec.data);
    if (!pkt) continue;
    const bool out_dir =
        stub->contains(pkt->ip.src) || !stub->contains(pkt->ip.dst);
    if (kind == classify::SegmentKind::kSyn && out_dir) {
      ++syns[idx];
    } else if (kind == classify::SegmentKind::kSynAck && !out_dir) {
      ++acks[idx];
    }
  }

  const trace::SiteProfile profile =
      trace::profile_counts(syns, acks, t0);
  std::printf(
      "%s: %zu packets over %zu periods of %lld s\n"
      "  K-bar = %.1f +- %.1f SYN/ACKs per period (cv %.2f)\n"
      "  c = %.4f, sigma(Xn) = %.4f\n"
      "recommended detector parameters (c + 6 sigma rule, N = 3a):\n"
      "  a = %.3f  N = %.3f  -> detection floor %.2f SYN/s\n"
      "universal parameters would give a floor of %.2f SYN/s\n",
      path.c_str(), records.size(), profile.periods,
      static_cast<long long>(t0.to_seconds()), profile.k_bar,
      profile.k_stddev, profile.k_cv, profile.c, profile.x_sigma,
      profile.recommended_a, profile.recommended_threshold,
      profile.floor_recommended, profile.floor_universal);
  const trace::SiteSpec rebuilt = trace::spec_from_profile(
      profile, t0 * static_cast<std::int64_t>(profile.periods));
  std::printf(
      "synthetic twin: outbound_rate=%.2f conn/s, loss p=%.4f, "
      "onoff_sources=%d\n(use these SiteSpec fields to regenerate "
      "matching workloads)\n",
      rebuilt.outbound_rate, rebuilt.handshake.no_answer_probability,
      rebuilt.onoff_sources);
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: syndog_tool <command> [key=value ...]\n"
      "  gen-trace    [site= seed= out= flood_rate= flood_start_min=]\n"
      "  analyze <pcap> [a= N= t0= alpha= stub=]\n"
      "  sensitivity  [site= seed= a= t0=]\n"
      "  sweep        [site= trials= rates= a= N= t0=]\n"
      "  calibrate <capture> [stub= t0=]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 64;
  }
  try {
    const std::string command = argv[1];
    if (command == "gen-trace") {
      return cmd_gen_trace(util::Config::from_args(argc - 2, argv + 2));
    }
    if (command == "analyze") {
      if (argc < 3 || std::strchr(argv[2], '=') != nullptr) {
        usage();
        return 64;
      }
      return cmd_analyze(argv[2],
                         util::Config::from_args(argc - 3, argv + 3));
    }
    if (command == "sensitivity") {
      return cmd_sensitivity(util::Config::from_args(argc - 2, argv + 2));
    }
    if (command == "sweep") {
      return cmd_sweep(util::Config::from_args(argc - 2, argv + 2));
    }
    if (command == "calibrate") {
      if (argc < 3 || std::strchr(argv[2], '=') != nullptr) {
        usage();
        return 64;
      }
      return cmd_calibrate(argv[2],
                           util::Config::from_args(argc - 3, argv + 3));
    }
    usage();
    return 64;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "syndog_tool: %s\n", ex.what());
    return 1;
  }
}
