// Full leaf-router scenario (the paper's Fig. 6, live):
//
// a stub network of 40 hosts browses the Internet; at minute 4 a
// compromised host starts a spoofed-source SYN flood against an external
// victim. The SYN-dog agent on the leaf router detects the flood from
// the SYN / SYN-ACK imbalance, names the flooding station by MAC address,
// and triggers RFC 2267 ingress filtering that squelches the attack.
//
//   $ leaf_router_sim [key=value ...]      e.g. flood_rate=60 hosts=80
#include <cstdio>

#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/config.hpp"

int main(int argc, char** argv) {
  using namespace syndog;
  using util::SimTime;

  const util::Config cfg = util::Config::from_args(argc - 1, argv + 1);
  const auto hosts =
      static_cast<std::uint32_t>(cfg.get_int("hosts", 40));
  const double conn_rate = cfg.get_double("conn_rate", 8.0);
  const double flood_rate = cfg.get_double("flood_rate", 45.0);
  const auto attacker =
      static_cast<std::uint32_t>(cfg.get_int("attacker", 17));
  const SimTime sim_end = SimTime::minutes(cfg.get_int("minutes", 12));

  sim::StubNetworkParams params;
  params.num_hosts = hosts;
  params.uplink.delay = SimTime::milliseconds(5);
  params.downlink.delay = SimTime::milliseconds(5);
  params.cloud.no_answer_probability = 0.04;
  sim::StubNetworkSim network(params);

  std::printf("leaf router for %s: %u hosts, ~%.1f conn/s of web traffic\n",
              params.stub_prefix.to_string().c_str(), hosts, conn_rate);

  // SYN-dog agent: alarm callback reports evidence and flips on ingress
  // filtering (paper §4.2.3).
  bool reported = false;
  core::SynDogAgent agent(
      network.router(), network.scheduler(),
      core::SynDogParams::paper_defaults(),
      [&](const core::AlarmEvent& ev) {
        if (!reported) {
          reported = true;
          std::printf(
              "\n[%s] *** SYN-dog ALARM: yn = %.2f > N = 1.05 "
              "(period %lld: %lld SYNs out, %lld SYN/ACKs in)\n",
              ev.at.to_string().c_str(), ev.report.y,
              static_cast<long long>(ev.report.period_index),
              static_cast<long long>(ev.report.syn_count),
              static_cast<long long>(ev.report.syn_ack_count));
          std::printf("    suspects by MAC (spoofed SYNs emitted):\n");
          for (const core::Suspect& s : ev.suspects) {
            std::printf("      %s  spoofed=%llu total=%llu\n",
                        s.mac.to_string().c_str(),
                        static_cast<unsigned long long>(s.spoofed_syns),
                        static_cast<unsigned long long>(s.total_syns));
          }
          std::printf("    -> enabling ingress filtering on the stub\n\n");
        }
        network.router().set_ingress_filtering(true);
      });

  // Background web traffic for the whole run.
  util::Rng rng(1);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < sim_end.to_seconds()) {
    t += rng.exponential_mean(1.0 / conn_rate);
    starts.push_back(SimTime::from_seconds(t));
  }
  network.schedule_outbound_background(starts);

  // The flood: spoofed sources, external victim.
  attack::FloodSpec flood;
  flood.rate = flood_rate;
  flood.start = SimTime::minutes(4);
  flood.duration = SimTime::minutes(6);
  util::Rng flood_rng(2);
  network.launch_flood(attacker,
                       attack::generate_flood_times(flood, flood_rng),
                       net::Ipv4Address(198, 51, 100, 10), 80,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));
  std::printf(
      "host %u (%s) will flood 198.51.100.10:80 at %.0f SYN/s from minute "
      "4\n\n",
      attacker, net::MacAddress::for_host(attacker).to_string().c_str(),
      flood_rate);

  network.run_until(sim_end);

  std::printf("per-period trace (t0 = 20 s):\n");
  std::printf("  n   SYN  SYN/ACK     Xn      yn\n");
  for (const core::PeriodReport& r : agent.history()) {
    std::printf("%3lld  %5lld  %5lld  %+.3f  %6.3f %s\n",
                static_cast<long long>(r.period_index),
                static_cast<long long>(r.syn_count),
                static_cast<long long>(r.syn_ack_count), r.x, r.y,
                r.alarm ? "ALARM" : "");
  }

  const auto& rstats = network.router().stats();
  std::printf(
      "\nrouter: %llu outbound, %llu inbound, %llu spoofed frames dropped "
      "by ingress filter after the alarm\n",
      static_cast<unsigned long long>(rstats.forwarded_outbound),
      static_cast<unsigned long long>(rstats.forwarded_inbound),
      static_cast<unsigned long long>(rstats.dropped_ingress_filter));
  std::printf("cloud: %llu SYN/ACK replies to spoofed sources died "
              "unreachable (no RST ever reset the victim's slots)\n",
              static_cast<unsigned long long>(
                  network.cloud().stats().dropped_unreachable));
  return agent.ever_alarmed() ? 0 : 1;
}
