// Quickstart: the SYN-dog detection core in ~40 lines.
//
// The agent's entire interface is one call per observation period: feed
// it the number of outgoing SYNs and incoming SYN/ACKs your router
// counted, and read back the CUSUM statistic and the alarm bit.
//
//   $ quickstart
#include <cstdio>

#include "syndog/core/syndog.hpp"

int main() {
  using namespace syndog;

  // The paper's universal parameters: a = 0.35, N = 1.05, t0 = 20 s.
  core::SynDog dog(core::SynDogParams::paper_defaults());

  // Ten quiet periods: ~2000 SYNs out, ~1950 SYN/ACKs back per period.
  std::printf("period  SYN   SYN/ACK   Xn      yn     alarm\n");
  for (int n = 0; n < 10; ++n) {
    const core::PeriodReport r = dog.observe_period(2000 + n, 1950 + n);
    std::printf("%5lld  %5lld  %5lld  %+.3f  %.3f   %s\n",
                static_cast<long long>(r.period_index),
                static_cast<long long>(r.syn_count),
                static_cast<long long>(r.syn_ack_count), r.x, r.y,
                r.alarm ? "ALARM" : "-");
  }

  std::printf("\nminimum detectable flood here: %.1f SYN/s (Eq. 8)\n",
              dog.min_detectable_rate());

  // A spoofed flood starts: outgoing SYNs jump, SYN/ACKs do not.
  std::printf("\n-- 50 SYN/s spoofed flood begins --\n");
  for (int n = 0; n < 6; ++n) {
    const core::PeriodReport r = dog.observe_period(2000 + 50 * 20, 1950);
    std::printf("%5lld  %5lld  %5lld  %+.3f  %.3f   %s\n",
                static_cast<long long>(r.period_index),
                static_cast<long long>(r.syn_count),
                static_cast<long long>(r.syn_ack_count), r.x, r.y,
                r.alarm ? "ALARM  <== flooding source inside this stub"
                        : "-");
    if (r.alarm) break;
  }
  return 0;
}
