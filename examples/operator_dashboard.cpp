// Operator dashboard over a multi-stub deployment.
//
// Runs the full distributed scenario — several stub networks, one shared
// victim, one slave per stub — and renders what a network operator
// subscribed to every stub's SYN-dog alarms would see: per-period status
// lines, alarm banners with MAC evidence, and the aggregated campaign
// estimate (sum of per-stub flood shares).
//
// Every agent also streams into a telemetry::TelemetrySink via
// core::FleetRecorder::attach, and the final assessment is sourced from
// the recorded syndog-tsf/1 stream's alarm-timeline rollup — the same
// query path syndog_fleetctl uses — so the dashboard doubles as an
// end-to-end check that the live view and the telemetry view agree
// (rates and MAC suspects stay with the in-run aggregator: they carry
// evidence the fleet schema deliberately does not ship).
//
//   $ operator_dashboard [stubs=3] [rate_per_stub=50] [minutes=8]
#include <cstdio>
#include <optional>
#include <sstream>

#include "syndog/attack/campaign.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/core/aggregator.hpp"
#include "syndog/core/fleet.hpp"
#include "syndog/sim/multistub.hpp"
#include "syndog/telemetry/rollup.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/config.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;
using util::SimTime;

namespace {

/// Agent id of `name` in the recorded dictionary, or -1.
int agent_index(const telemetry::TsfReader& reader, const std::string& name) {
  for (std::size_t i = 0; i < reader.agents().size(); ++i) {
    if (reader.agents()[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc - 1, argv + 1);
  const int stubs = static_cast<int>(cfg.get_int("stubs", 3));
  const double rate_per_stub = cfg.get_double("rate_per_stub", 50.0);
  const SimTime sim_end = SimTime::minutes(cfg.get_int("minutes", 8));

  sim::MultiStubParams params;
  params.stub_count = stubs;
  params.hosts_per_stub = 12;
  sim::MultiStubSim net(params);

  sim::TcpHostParams victim_params;
  victim_params.backlog = 512;
  sim::TcpHost& victim = net.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);

  core::AlarmAggregator aggregator(
      core::SynDogParams{}.observation_period);
  std::ostringstream telemetry_bytes;
  telemetry::TelemetrySink sink(telemetry_bytes);
  core::FleetRecorder fleet(sink);
  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  for (int s = 0; s < stubs; ++s) {
    const std::string name = "stub-" + std::to_string(s);
    agents.push_back(std::make_unique<core::SynDogAgent>(
        net.router(s), net.scheduler(),
        core::SynDogParams::paper_defaults(),
        [&aggregator, name, &net](const core::AlarmEvent& ev) {
          const bool first = aggregator.alarming_stubs() == 0;
          aggregator.report(name, ev);
          std::printf("[%s] !!! %s ALARM  yn=%.2f  local share ~%.0f "
                      "SYN/s",
                      ev.at.to_string().c_str(), name.c_str(), ev.report.y,
                      aggregator.snapshot().front().estimated_rate);
          if (!ev.suspects.empty()) {
            std::printf("  station %s (%llu spoofed SYNs)",
                        ev.suspects.front().mac.to_string().c_str(),
                        static_cast<unsigned long long>(
                            ev.suspects.front().spoofed_syns));
          }
          std::printf("\n");
          if (first) {
            std::printf("            (first alarm -- watching for sibling "
                        "stubs to estimate the aggregate)\n");
          }
          (void)net;
        }));
    fleet.attach(*agents.back(), name,
                 static_cast<std::uint32_t>(64496 + s));
  }

  // Background web traffic per stub, plus the campaign from minute 2.
  util::Rng rng(11);
  for (int s = 0; s < stubs; ++s) {
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < sim_end.to_seconds()) {
      t += rng.exponential_mean(0.25);
      starts.push_back(SimTime::from_seconds(t));
    }
    net.schedule_outbound_background(s, starts);
  }
  attack::CampaignSpec campaign;
  campaign.aggregate_rate = rate_per_stub * stubs;
  campaign.stub_networks = stubs;
  campaign.start = SimTime::minutes(2);
  campaign.duration = SimTime::minutes(4);
  const attack::Campaign c(campaign, 3);
  for (int s = 0; s < stubs; ++s) {
    net.launch_flood(s,
                     c.slaves_in_stub(s)[0].host_index %
                             params.hosts_per_stub +
                         1,
                     c.flood_times_in_stub(s), victim.ip(), 80,
                     *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }

  std::printf("operator dashboard: %d stubs, campaign of %.0f SYN/s "
              "(%.0f per stub) starts at minute 2\n\n",
              stubs, campaign.aggregate_rate, rate_per_stub);
  net.run_until(sim_end);

  // The final assessment reads back the recorded telemetry: alarm counts
  // and "since" times come from the file's rollup, not from the live
  // aggregator (which must agree with it, or the run fails).
  sink.finish();
  std::istringstream telemetry_in(telemetry_bytes.str());
  const telemetry::TsfReader reader(telemetry_in);
  const telemetry::AlarmTimeline timeline =
      telemetry::alarm_timeline(reader, core::kFleetMetricAlarm);

  std::printf("\n=== final assessment ===\n");
  std::printf("%zu/%d stubs alarming; estimated aggregate %.0f SYN/s "
              "(true %.0f)\n",
              static_cast<std::size_t>(timeline.agents_alarmed), stubs,
              aggregator.estimated_aggregate_rate(),
              campaign.aggregate_rate);
  bool views_agree =
      timeline.agents_alarmed == aggregator.alarming_stubs();
  for (const auto& alarm : aggregator.snapshot()) {
    // The aggregator's `at` is the *latest* alarm report; the recorded
    // timeline carries the edges, so the cross-check is that the episode
    // started (first rising edge) no later than the live view's stamp.
    const int agent = agent_index(reader, alarm.stub_name);
    const std::optional<SimTime> onset =
        agent < 0 ? std::nullopt
                  : telemetry::first_alarm(timeline,
                                           static_cast<std::uint32_t>(agent));
    if (!onset || *onset > alarm.at) views_agree = false;
    std::printf("  %-8s ~%5.0f SYN/s  since %s  suspects:",
                alarm.stub_name.c_str(), alarm.estimated_rate,
                alarm.at.to_string().c_str());
    for (const core::Suspect& s : alarm.suspects) {
      std::printf(" %s", s.mac.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("victim: %s SYNs dropped, backlog %zu/%zu\n",
              util::format_count(static_cast<std::int64_t>(
                  victim.stats().backlog_drops)).c_str(),
              victim.half_open_count(), victim_params.backlog);
  if (!views_agree) {
    std::fprintf(stderr, "telemetry rollup disagrees with the live "
                         "aggregator view\n");
    return 1;
  }
  return aggregator.alarming_stubs() == static_cast<std::size_t>(stubs)
             ? 0
             : 1;
}
