// syndog_campaign — sharded thousand-stub campaign runner CLI.
//
// Runs a distributed SYN-flood campaign against one victim across
// `--stubs` stub networks sharded over `--workers` threads, and prints a
// deterministic report: per-wave alarm counts, cross-shard traffic
// totals, and the campaign state digest. Output depends only on
// (--stubs, --hosts, --cells, --seed, --minutes) — never on --workers —
// which is what the campaign_workers_equivalence ctest pins byte for
// byte.
//
//   syndog_campaign [--stubs N] [--workers N] [--seed N] [--minutes N]
//                   [--hosts N] [--cells N]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "syndog/campaign/campaign_sim.hpp"
#include "syndog/net/address.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;
using util::SimTime;

namespace {

std::int64_t parse_flag(int argc, char** argv, const char* name,
                        std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto stubs =
      static_cast<int>(parse_flag(argc, argv, "--stubs", 64));
  const auto workers =
      static_cast<int>(parse_flag(argc, argv, "--workers", 1));
  const auto seed =
      static_cast<std::uint64_t>(parse_flag(argc, argv, "--seed", 1));
  const auto minutes = parse_flag(argc, argv, "--minutes", 2);
  const auto hosts =
      static_cast<std::uint32_t>(parse_flag(argc, argv, "--hosts", 100));
  const auto cells =
      static_cast<int>(parse_flag(argc, argv, "--cells", 0));

  campaign::CampaignParams params;
  params.stub_count = stubs;
  params.hosts_per_stub = hosts;
  params.cells = cells;
  params.agent_params.observation_period = SimTime::seconds(10);
  params.seed = seed;
  campaign::CampaignSim sim(params);

  const SimTime end = SimTime::minutes(minutes);
  const double bg_rate = 3.0;  // SYN/s of benign wire background per stub
  for (int s = 0; s < stubs; ++s) {
    sim.start_wire_background(s, bg_rate, SimTime::zero(), end);
  }

  // One slave per stub floods the shared victim from one third of the
  // run to two thirds, well above f_min so every stub should alarm.
  const double flood_rate = 120.0;
  const double flood_start = end.to_seconds() / 3.0;
  const double flood_end = 2.0 * end.to_seconds() / 3.0;
  const net::Ipv4Prefix spoof_pool =
      *net::Ipv4Prefix::parse("240.0.0.0/8");
  for (int s = 0; s < stubs; ++s) {
    util::Rng rng =
        util::Rng::child(seed ^ 0xCAFEu, static_cast<std::uint64_t>(s));
    std::vector<SimTime> times;
    double t = flood_start;
    while (true) {
      t += rng.exponential_mean(1.0 / flood_rate);
      if (t >= flood_end) break;
      times.push_back(SimTime::from_seconds(t));
    }
    sim.launch_flood(s, 1 + s % static_cast<int>(hosts), times, spoof_pool);
  }

  sim.run_until(end, workers);

  std::printf("syndog_campaign: %d stubs x %u hosts, %lld min, seed %llu\n",
              stubs, hosts, static_cast<long long>(minutes),
              static_cast<unsigned long long>(seed));
  std::printf(
      "flood: %.0f SYN/s per stub over [%.0f s, %.0f s) -> %d/%d stubs "
      "alarmed\n",
      flood_rate, flood_start, flood_end, sim.stubs_alarmed(), stubs);
  const campaign::CrossStats& cross = sim.cross_stats();
  std::printf(
      "cross-shard: %llu records to victim, %llu replies to stubs, %llu "
      "replies died unreachable, %llu barriers\n",
      static_cast<unsigned long long>(cross.to_victim),
      static_cast<unsigned long long>(cross.to_stubs),
      static_cast<unsigned long long>(cross.dropped_unreachable),
      static_cast<unsigned long long>(cross.barriers));
  const sim::TcpHostStats& v = sim.victim().stats();
  std::printf("victim: %llu SYNs, %llu SYN/ACKs, %llu backlog drops\n",
              static_cast<unsigned long long>(v.syns_received),
              static_cast<unsigned long long>(v.syn_acks_sent),
              static_cast<unsigned long long>(v.backlog_drops));
  const auto alarms = sim.merged_alarms();
  std::printf("alarm timeline: %zu alarms", alarms.size());
  if (!alarms.empty()) {
    std::printf(", first stub %d at %s", alarms.front().stub,
                alarms.front().event.at.to_string().c_str());
  }
  std::printf("\n\n-- state digest (worker-count invariant) --\n%s",
              sim.state_digest().c_str());
  return 0;
}
