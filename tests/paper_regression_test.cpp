// Regression guards for the headline paper reproduction.
//
// These pin the *shape* of Tables 2-3 and Figure 5 (detection
// probabilities, delay ranges, absence of false alarms) with small trial
// counts, so a calibration or algorithm regression fails loudly in CI
// rather than silently skewing the benches. Tolerances are deliberately
// loose — the benches, not the tests, chase exact values.
#include <gtest/gtest.h>

#include "syndog/attack/flood.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/trace/site.hpp"

namespace syndog {
namespace {

struct Ensemble {
  double probability = 0.0;
  double mean_delay = 0.0;
  int false_alarms = 0;
};

Ensemble run(trace::SiteId site, double fi, int trials, double start_min_s,
             double start_max_s,
             const core::SynDogParams& params =
                 core::SynDogParams::paper_defaults()) {
  const trace::SiteSpec spec = trace::site_spec(site);
  Ensemble out;
  int detected = 0;
  double delay_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 9000 + t),
        trace::kObservationPeriod);
    util::Rng rng(9500 + t);
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start =
        util::SimTime::from_seconds(rng.uniform(start_min_s, start_max_s));
    flood.duration = util::SimTime::minutes(10);
    if (fi > 0.0) {
      ps.add_outbound_syns(trace::bucket_times(
          attack::generate_flood_times(flood, rng), ps.period, ps.size()));
    }
    const auto reports =
        core::run_over_series(params, ps.out_syn, ps.in_syn_ack);
    const std::int64_t onset =
        fi > 0.0 ? flood.start / ps.period
                 : static_cast<std::int64_t>(ps.size());
    const std::int64_t fend = std::min<std::int64_t>(
        (flood.start + flood.duration) / ps.period,
        static_cast<std::int64_t>(ps.size()) - 1);
    for (std::int64_t n = 0; n < onset; ++n) {
      out.false_alarms += reports[static_cast<std::size_t>(n)].alarm;
    }
    for (std::int64_t n = onset; n <= fend; ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++detected;
        delay_sum += static_cast<double>(n - onset);
        break;
      }
    }
  }
  out.probability = static_cast<double>(detected) / trials;
  if (detected > 0) out.mean_delay = delay_sum / detected;
  return out;
}

constexpr double kUncStartMin = 180.0;   // paper: 3-9 minutes
constexpr double kUncStartMax = 540.0;
constexpr double kAuckStartMin = 180.0;  // paper: 3-136 minutes
constexpr double kAuckStartMax = 8160.0;

// --- Table 2 (UNC) shape -----------------------------------------------------

TEST(Table2Regression, FloorRateDetectsPartially) {
  // Paper: fi = 37 -> prob 0.8, delay ~19.8.
  const Ensemble e = run(trace::SiteId::kUnc, 37.0, 10, kUncStartMin,
                         kUncStartMax);
  EXPECT_GE(e.probability, 0.3);
  EXPECT_LE(e.probability, 1.0);
  EXPECT_EQ(e.false_alarms, 0);
  if (e.probability > 0.0) {
    EXPECT_GE(e.mean_delay, 10.0);
  }
}

TEST(Table2Regression, MidRatesDetectFullyWithDecreasingDelay) {
  // Paper: 45 -> 8.65, 60 -> 4, 120 -> 1 (all prob 1.0).
  const Ensemble e45 =
      run(trace::SiteId::kUnc, 45.0, 10, kUncStartMin, kUncStartMax);
  const Ensemble e60 =
      run(trace::SiteId::kUnc, 60.0, 10, kUncStartMin, kUncStartMax);
  const Ensemble e120 =
      run(trace::SiteId::kUnc, 120.0, 10, kUncStartMin, kUncStartMax);
  EXPECT_DOUBLE_EQ(e45.probability, 1.0);
  EXPECT_DOUBLE_EQ(e60.probability, 1.0);
  EXPECT_DOUBLE_EQ(e120.probability, 1.0);
  EXPECT_GT(e45.mean_delay, e60.mean_delay);
  EXPECT_GT(e60.mean_delay, e120.mean_delay);
  EXPECT_NEAR(e45.mean_delay, 8.65, 4.0);
  EXPECT_NEAR(e60.mean_delay, 4.0, 2.5);
  EXPECT_LE(e120.mean_delay, 3.0);
  EXPECT_EQ(e45.false_alarms + e60.false_alarms + e120.false_alarms, 0);
}

// --- Table 3 (Auckland) shape --------------------------------------------------

TEST(Table3Regression, SmallSiteFloorNearPaperValue) {
  // Paper: 1.5 -> 0.55, 1.75 -> 0.95, 2 -> 1.0.
  const Ensemble e15 = run(trace::SiteId::kAuckland, 1.5, 10,
                           kAuckStartMin, kAuckStartMax);
  const Ensemble e2 = run(trace::SiteId::kAuckland, 2.0, 10,
                          kAuckStartMin, kAuckStartMax);
  EXPECT_LT(e15.probability, e2.probability);
  EXPECT_GE(e2.probability, 0.8);
  EXPECT_EQ(e15.false_alarms + e2.false_alarms, 0);
}

TEST(Table3Regression, FastRatesDetectInAtMostTwoPeriods) {
  // Paper: 5 -> 2 periods, 10 -> <1 period.
  const Ensemble e5 = run(trace::SiteId::kAuckland, 5.0, 10,
                          kAuckStartMin, kAuckStartMax);
  const Ensemble e10 = run(trace::SiteId::kAuckland, 10.0, 10,
                           kAuckStartMin, kAuckStartMax);
  EXPECT_DOUBLE_EQ(e5.probability, 1.0);
  EXPECT_DOUBLE_EQ(e10.probability, 1.0);
  EXPECT_LE(e5.mean_delay, 3.0);
  EXPECT_LE(e10.mean_delay, 1.0);
}

// --- Figure 5 (no false alarms anywhere) -----------------------------------------

TEST(Figure5Regression, NoFalseAlarmsAtAnySite) {
  for (const trace::SiteId site :
       {trace::SiteId::kLbl, trace::SiteId::kHarvard, trace::SiteId::kUnc,
        trace::SiteId::kAuckland}) {
    const Ensemble e = run(site, 0.0, 6, 0.0, 0.0);
    EXPECT_EQ(e.false_alarms, 0) << trace::to_string(site);
  }
}

TEST(Figure5Regression, NormalSpikesStayFarBelowThreshold) {
  // Paper: Harvard max spike ~0.05, Auckland ~0.26, both << 1.05.
  for (const auto& [site, bound] :
       {std::pair{trace::SiteId::kHarvard, 0.35},
        std::pair{trace::SiteId::kAuckland, 0.9}}) {
    double worst = 0.0;
    for (int s = 0; s < 6; ++s) {
      const trace::PeriodSeries ps = trace::extract_periods(
          trace::generate_site_trace(trace::site_spec(site), 9100 + s),
          trace::kObservationPeriod);
      const auto reports = core::run_over_series(
          core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
      for (const auto& r : reports) worst = std::max(worst, r.y);
    }
    EXPECT_LT(worst, bound) << trace::to_string(site);
  }
}

// --- Figure 9 (site tuning) ----------------------------------------------------

TEST(Figure9Regression, TunedParametersSeeSubUniversalFloods) {
  // fi = 15 sits exactly at the tuned floor (a - c) * K / t0 ~ 16 SYN/s,
  // so detection there is marginal even in the paper (Fig. 9 shows yn
  // crawling up over the whole trace). The firm, testable gain is one
  // step above the floor: fi = 20 is invisible to the universal
  // parameters and reliably caught by the tuned ones.
  const Ensemble universal = run(trace::SiteId::kUnc, 20.0, 8,
                                 kUncStartMin, kUncStartMax);
  const Ensemble tuned =
      run(trace::SiteId::kUnc, 20.0, 8, kUncStartMin, kUncStartMax,
          core::SynDogParams::site_tuned_unc());
  EXPECT_DOUBLE_EQ(universal.probability, 0.0);
  EXPECT_GE(tuned.probability, 0.7);
  const Ensemble tuned15 =
      run(trace::SiteId::kUnc, 15.0, 8, kUncStartMin, kUncStartMax,
          core::SynDogParams::site_tuned_unc());
  const Ensemble universal15 = run(trace::SiteId::kUnc, 15.0, 8,
                                   kUncStartMin, kUncStartMax);
  EXPECT_GE(tuned15.probability, universal15.probability);
}

}  // namespace
}  // namespace syndog
