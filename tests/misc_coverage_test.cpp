// Coverage for the smaller utility surfaces: the logger, ICMP round
// trips, inbound-direction trace rendering, and the presentation
// helpers' numeric paths.
#include <gtest/gtest.h>

#include "syndog/net/packet.hpp"
#include "syndog/stats/histogram.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"
#include "syndog/util/logging.hpp"
#include "syndog/util/table.hpp"

namespace syndog {
namespace {

// --- logging -------------------------------------------------------------------

TEST(LoggingTest, LevelThresholdFilters) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold statements must not evaluate their stream bodies.
  int evaluated = 0;
  SYNDOG_LOG(Info, "test") << "side effect " << ++evaluated;
  EXPECT_EQ(evaluated, 0);
  SYNDOG_LOG(Error, "test") << "visible " << ++evaluated;
  EXPECT_EQ(evaluated, 1);
  util::set_log_level(before);
}

TEST(LoggingTest, OffSilencesEverything) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kOff);
  // Nothing to assert on stderr portably; this exercises the kOff branch
  // in log_line and the macro guard.
  util::log_line(util::LogLevel::kError, "test", "should not print");
  SYNDOG_LOG(Error, "test") << "also suppressed";
  util::set_log_level(before);
}

// --- ICMP ---------------------------------------------------------------------

TEST(IcmpTest, HeaderRoundTrip) {
  net::IcmpHeader icmp;
  icmp.type = net::IcmpHeader::kDestUnreachable;
  icmp.code = 1;  // host unreachable
  icmp.rest = 0xdeadbeef;
  net::ByteBuffer out;
  net::write_icmp(out, icmp);
  const auto parsed = net::parse_icmp(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, icmp.type);
  EXPECT_EQ(parsed->code, icmp.code);
  EXPECT_EQ(parsed->rest, icmp.rest);
  EXPECT_FALSE(net::parse_icmp(net::ByteSpan{out.data(), 7}).has_value());
}

TEST(IcmpTest, FullFrameRoundTripWithChecksum) {
  net::Packet pkt;
  pkt.eth.src = net::MacAddress::for_host(1);
  pkt.eth.dst = net::MacAddress::for_host(2);
  pkt.ip.src = net::Ipv4Address(10, 1, 0, 1);
  pkt.ip.dst = net::Ipv4Address(192, 0, 2, 1);
  pkt.ip.protocol = static_cast<std::uint8_t>(net::IpProtocol::kIcmp);
  net::IcmpHeader icmp;
  icmp.type = net::IcmpHeader::kEchoRequest;
  icmp.rest = (0x1234u << 16) | 1;  // id/seq
  pkt.icmp = icmp;
  pkt.payload_bytes = 32;
  pkt.ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kMinSize + net::IcmpHeader::kSize + 32);

  const net::ByteBuffer wire = net::encode_frame(pkt);
  const auto decoded = net::decode_frame(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->icmp.has_value());
  EXPECT_EQ(decoded->icmp->type, net::IcmpHeader::kEchoRequest);
  EXPECT_EQ(decoded->payload_bytes, 32u);
  // The ICMP checksum over the message (with stored checksum) folds to 0.
  const net::ByteSpan message{wire.data() + 34, wire.size() - 34};
  EXPECT_EQ(net::internet_checksum(message), 0);
  EXPECT_NE(decoded->summary().find("ICMP"), std::string::npos);
}

// --- inbound rendering ------------------------------------------------------------

TEST(RenderTest, InboundConnectionsRenderMirrored) {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kLbl);
  spec.outbound_rate = 0.001;  // effectively inbound-only
  spec.inbound_rate = 2.0;
  spec.duration = util::SimTime::minutes(5);
  const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 5);
  trace::RenderConfig cfg;
  cfg.emit_final_ack = false;
  std::size_t inbound_syns = 0;
  std::size_t outbound_syn_acks = 0;
  for (const trace::TimedPacket& tp : trace::render_trace(tr, cfg)) {
    if (tp.packet.is_syn()) {
      // Inbound connection: client outside, server inside the stub.
      if (!cfg.stub_prefix.contains(tp.packet.ip.src) &&
          cfg.stub_prefix.contains(tp.packet.ip.dst)) {
        ++inbound_syns;
        EXPECT_EQ(tp.packet.eth.src, cfg.router_mac);
      }
    } else if (tp.packet.is_syn_ack()) {
      if (cfg.stub_prefix.contains(tp.packet.ip.src)) {
        ++outbound_syn_acks;
      }
    }
  }
  EXPECT_GT(inbound_syns, 100u);
  EXPECT_GT(outbound_syn_acks, 100u);
  EXPECT_LE(outbound_syn_acks, inbound_syns);
}

// --- presentation helpers -----------------------------------------------------------

TEST(PresentationTest, HistogramRendersBars) {
  stats::Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 50; ++i) h.add(3.0);
  for (int i = 0; i < 10; ++i) h.add(7.0);
  h.add(-1.0);
  const std::string out = h.to_string(20);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("underflow 1"), std::string::npos);
  EXPECT_NE(out.find("50"), std::string::npos);
}

TEST(PresentationTest, TableValueRowsAndCsvExport) {
  util::TextTable t({"fi", "prob"});
  t.add_row_values({45.0, 0.8}, 2);
  t.add_row_values({120.0, 1.0}, 2);
  EXPECT_EQ(t.row_count(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("fi,prob"), std::string::npos);
  EXPECT_NE(csv.find("45,0.8"), std::string::npos);
  EXPECT_NE(csv.find("120,1"), std::string::npos);
}

TEST(PresentationTest, ChartAutoScalesAndClampsOutliers) {
  util::AsciiChartOptions opts;
  opts.width = 30;
  opts.height = 6;
  opts.y_max = 0.0;  // auto
  util::AsciiChart chart(opts);
  chart.add_series("spiky", {0.0, 0.1, 100.0, 0.1, 0.0});
  const std::string out = chart.to_string();
  // The peak value appears in the y-axis labels (auto-scaled above 100).
  EXPECT_NE(out.find("105"), std::string::npos);
  EXPECT_NE(out.find("spiky"), std::string::npos);
}

}  // namespace
}  // namespace syndog
