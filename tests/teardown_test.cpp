// Connection teardown (paper Fig. 1's second half): FIN/ACK exchanges
// between simulated hosts, auto-closing workloads, and the invariant
// that teardown traffic never perturbs the SYN-dog counters.
#include <gtest/gtest.h>

#include "syndog/core/agent.hpp"
#include "syndog/sim/network.hpp"

namespace syndog::sim {
namespace {

using util::SimTime;

struct Pair {
  Scheduler sched;
  std::unique_ptr<TcpHost> client;
  std::unique_ptr<TcpHost> server;

  explicit Pair(TcpHostParams params = {}) {
    client = std::make_unique<TcpHost>(
        "client", net::Ipv4Address(10, 0, 0, 1),
        net::MacAddress::for_host(1), net::MacAddress::for_host(99), sched,
        [this](const net::Packet& pkt) {
          sched.schedule_after(
              SimTime::milliseconds(5),
              [this, h = sched.packets().acquire(pkt)] {
                server->receive(*h);
              });
        },
        params, 1);
    server = std::make_unique<TcpHost>(
        "server", net::Ipv4Address(10, 0, 0, 2),
        net::MacAddress::for_host(2), net::MacAddress::for_host(99), sched,
        [this](const net::Packet& pkt) {
          sched.schedule_after(
              SimTime::milliseconds(5),
              [this, h = sched.packets().acquire(pkt)] {
                client->receive(*h);
              });
        },
        params, 2);
  }
};

TEST(TeardownTest, ActiveCloseCompletesOnBothSides) {
  Pair pair;
  pair.server->listen(80);
  pair.client->connect(pair.server->ip(), 80);
  pair.sched.run_all();
  ASSERT_EQ(pair.client->established_count(), 1u);
  ASSERT_EQ(pair.server->established_count(), 1u);

  // The client used the first ephemeral port (32768).
  pair.client->close(pair.server->ip(), 80, 32768);
  pair.sched.run_all();

  EXPECT_EQ(pair.client->established_count(), 0u);
  EXPECT_EQ(pair.server->established_count(), 0u);
  EXPECT_EQ(pair.client->stats().fins_sent, 1u);
  EXPECT_EQ(pair.server->stats().fins_sent, 1u);
  EXPECT_EQ(pair.client->stats().closed_gracefully, 1u);
  EXPECT_EQ(pair.server->stats().closed_gracefully, 1u);
}

TEST(TeardownTest, CloseOfUnknownConnectionIsNoOp) {
  Pair pair;
  pair.client->close(pair.server->ip(), 80, 12345);
  pair.sched.run_all();
  EXPECT_EQ(pair.client->stats().fins_sent, 0u);
}

TEST(TeardownTest, DoubleCloseSendsOneFin) {
  Pair pair;
  pair.server->listen(80);
  pair.client->connect(pair.server->ip(), 80);
  pair.sched.run_all();
  pair.client->close(pair.server->ip(), 80, 32768);
  pair.client->close(pair.server->ip(), 80, 32768);
  pair.sched.run_all();
  EXPECT_EQ(pair.client->stats().fins_sent, 1u);
}

TEST(TeardownTest, RstTearsDownEstablishedState) {
  Pair pair;
  pair.server->listen(80);
  pair.client->connect(pair.server->ip(), 80);
  pair.sched.run_all();
  ASSERT_EQ(pair.server->established_count(), 1u);
  net::TcpPacketSpec spec;
  spec.src_ip = pair.client->ip();
  spec.dst_ip = pair.server->ip();
  spec.src_port = 32768;
  spec.dst_port = 80;
  spec.flags = net::TcpFlags::rst_only();
  pair.server->receive(net::make_tcp_packet(spec));
  EXPECT_EQ(pair.server->established_count(), 0u);
}

TEST(TeardownTest, AutoCloseGeneratesFinTrafficThroughTheCloud) {
  StubNetworkParams params;
  params.num_hosts = 5;
  params.cloud.no_answer_probability = 0.0;
  params.host_params.auto_close_after = SimTime::seconds(5);
  StubNetworkSim sim(params);

  std::uint64_t fins_outbound = 0;
  sim.router().add_outbound_tap(
      [&](SimTime, const net::Packet& pkt) { fins_outbound += pkt.is_fin(); });

  std::vector<SimTime> starts;
  for (int i = 0; i < 20; ++i) {
    starts.push_back(SimTime::milliseconds(200 * (i + 1)));
  }
  sim.schedule_outbound_background(starts);
  sim.run_until(SimTime::seconds(60));

  std::uint64_t established = 0;
  std::uint64_t closed = 0;
  std::size_t still_open = 0;
  for (std::uint32_t h = 1; h <= params.num_hosts; ++h) {
    established += sim.host(h).stats().established_as_client;
    closed += sim.host(h).stats().closed_gracefully;
    still_open += sim.host(h).established_count();
  }
  EXPECT_EQ(established, 20u);
  EXPECT_EQ(closed, 20u);       // every connection tore down cleanly
  EXPECT_EQ(still_open, 0u);    // no leaked connection state
  EXPECT_EQ(fins_outbound, 20u);
}

TEST(TeardownTest, FinTrafficDoesNotPerturbSynDog) {
  // A workload dominated by teardown packets (short-lived connections)
  // must leave the detector exactly as quiet as a persistent one.
  StubNetworkParams params;
  params.num_hosts = 10;
  params.host_params.auto_close_after = SimTime::seconds(2);
  StubNetworkSim sim(params);
  core::SynDogAgent agent(sim.router(), sim.scheduler(),
                          core::SynDogParams::paper_defaults());

  util::Rng rng(9);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < 5 * 60.0) {
    t += rng.exponential_mean(0.1);  // 10 conn/s, all closing after 2 s
    starts.push_back(SimTime::from_seconds(t));
  }
  sim.schedule_outbound_background(starts);
  sim.run_until(SimTime::minutes(5));

  EXPECT_FALSE(agent.ever_alarmed());
  // The sniffers saw plenty of traffic (SYN+SYNACK+ACK+2xFIN+2xACK per
  // connection) but counted only the SYNs/SYN-ACKs.
  EXPECT_GT(agent.outbound_sniffer().packets_seen(),
            3 * agent.outbound_sniffer().lifetime_count());
}

TEST(SynAckRetransmissionTest, ServerRetransmitsTwiceThenTimesOut) {
  // Paper §1: "The half-open connection is not closed until the failure
  // of two retransmissions, which typically lasts for 75 seconds."
  Scheduler sched;
  int syn_acks_on_wire = 0;
  TcpHost server("server", net::Ipv4Address(10, 0, 0, 2),
                 net::MacAddress::for_host(2),
                 net::MacAddress::for_host(99), sched,
                 [&](const net::Packet& pkt) {
                   syn_acks_on_wire += pkt.is_syn_ack();
                 },
                 TcpHostParams{}, 3);
  server.listen(80);
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(240, 0, 0, 1);  // spoofed: no ACK ever
  spec.dst_ip = server.ip();
  spec.src_port = 1234;
  spec.dst_port = 80;
  server.receive(net::make_syn(spec));

  sched.run_until(SimTime::seconds(2));
  EXPECT_EQ(syn_acks_on_wire, 1);  // initial
  sched.run_until(SimTime::seconds(4));
  EXPECT_EQ(syn_acks_on_wire, 2);  // +retx at 3 s
  sched.run_until(SimTime::seconds(10));
  EXPECT_EQ(syn_acks_on_wire, 3);  // +retx at 9 s
  sched.run_until(SimTime::seconds(74));
  EXPECT_EQ(syn_acks_on_wire, 3);  // no further retransmissions
  EXPECT_EQ(server.half_open_count(), 1u);
  sched.run_until(SimTime::seconds(76));
  EXPECT_EQ(server.half_open_count(), 0u);  // 75 s lifetime expired
  EXPECT_EQ(server.stats().half_open_timeouts, 1u);
  EXPECT_EQ(server.stats().syn_acks_sent, 3u);
}

TEST(SynAckRetransmissionTest, CompletionCancelsRetransmissions) {
  Pair pair;
  pair.server->listen(80);
  pair.client->connect(pair.server->ip(), 80);
  pair.sched.run_all();
  // Handshake completed within the first RTO: exactly one SYN/ACK.
  EXPECT_EQ(pair.server->stats().syn_acks_sent, 1u);
  EXPECT_EQ(pair.server->half_open_count(), 0u);
}

}  // namespace
}  // namespace syndog::sim
