#include <gtest/gtest.h>

#include <algorithm>

#include "syndog/attack/campaign.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/trace/periods.hpp"

namespace syndog::attack {
namespace {

using util::SimTime;

TEST(FloodTest, ConstantRateProducesExpectedVolume) {
  FloodSpec spec;
  spec.rate = 100.0;
  spec.start = SimTime::minutes(1);
  spec.duration = SimTime::minutes(10);
  util::Rng rng(1);
  const auto times = generate_flood_times(spec, rng);
  EXPECT_NEAR(static_cast<double>(times.size()),
              expected_flood_syns(spec),
              expected_flood_syns(spec) * 0.05);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GE(times.front(), spec.start);
  EXPECT_LT(times.back(), spec.start + spec.duration);
}

TEST(FloodTest, AllShapesDeliverTheSameMeanVolume) {
  // §4.2: detection depends only on volume; the generators must agree on
  // volume to make that a fair comparison.
  for (const FloodShape shape :
       {FloodShape::kConstant, FloodShape::kOnOff, FloodShape::kRamp}) {
    FloodSpec spec;
    spec.rate = 60.0;
    spec.shape = shape;
    spec.duration = SimTime::minutes(10);
    util::Rng rng(7);
    const auto times = generate_flood_times(spec, rng);
    EXPECT_NEAR(static_cast<double>(times.size()), 36000.0, 36000.0 * 0.07)
        << to_string(shape);
  }
}

TEST(FloodTest, OnOffShapeIsActuallyBursty) {
  FloodSpec spec;
  spec.rate = 50.0;
  spec.shape = FloodShape::kOnOff;
  spec.on_off_period = SimTime::seconds(10);
  spec.duty_cycle = 0.5;
  spec.start = SimTime::zero();
  spec.duration = SimTime::minutes(5);
  util::Rng rng(3);
  const auto times = generate_flood_times(spec, rng);
  // Bucket at 5 s (half the burst period): alternating full/empty buckets.
  const auto counts =
      trace::bucket_times(times, SimTime::seconds(5), 60);
  int empty = 0;
  int busy = 0;
  for (auto c : counts) {
    if (c == 0) ++empty;
    if (c > 300) ++busy;  // ~100 SYN/s during ON
  }
  EXPECT_GT(empty, 20);
  EXPECT_GT(busy, 20);
}

TEST(FloodTest, RampStartsSlowEndsFast) {
  FloodSpec spec;
  spec.rate = 50.0;
  spec.shape = FloodShape::kRamp;
  spec.start = SimTime::zero();
  spec.duration = SimTime::minutes(10);
  util::Rng rng(5);
  const auto times = generate_flood_times(spec, rng);
  const auto half = spec.duration.to_seconds() / 2.0;
  const auto first_half = std::count_if(
      times.begin(), times.end(),
      [&](SimTime t) { return t.to_seconds() < half; });
  // A linear ramp puts 25% of the volume in the first half.
  EXPECT_NEAR(static_cast<double>(first_half) /
                  static_cast<double>(times.size()),
              0.25, 0.04);
}

TEST(FloodTest, Validation) {
  FloodSpec spec;
  spec.rate = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.rate = 10.0;
  spec.duration = SimTime::zero();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.duration = SimTime::minutes(1);
  spec.shape = FloodShape::kOnOff;
  spec.duty_cycle = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// --- campaign ------------------------------------------------------------------

TEST(CampaignTest, PerStubRateIsEvenSplit) {
  CampaignSpec spec;
  spec.aggregate_rate = 14000.0;
  spec.stub_networks = 378;
  EXPECT_NEAR(spec.per_stub_rate(), 37.0, 0.1);  // the paper's UNC example
  const FloodSpec flood = spec.stub_flood();
  EXPECT_NEAR(flood.rate, 37.0, 0.1);
}

TEST(CampaignTest, MaxHidingStubsMatchesPaperExamples) {
  // §4.2.3: V = 14,000, f_min = 37 -> 378 stubs; f_min = 1.75 -> 8,000.
  EXPECT_EQ(max_hiding_stubs(kFirewalledServerRate, 37.0), 378);
  EXPECT_EQ(max_hiding_stubs(kFirewalledServerRate, 1.75), 8000);
  EXPECT_THROW((void)max_hiding_stubs(0.0, 1.0), std::invalid_argument);
}

TEST(CampaignTest, DeterministicSlavesAndFloods) {
  CampaignSpec spec;
  spec.stub_networks = 10;
  spec.aggregate_rate = 500.0;
  spec.duration = SimTime::minutes(1);
  const Campaign a(spec, 99);
  const Campaign b(spec, 99);
  for (std::int64_t stub = 0; stub < 10; ++stub) {
    EXPECT_EQ(a.slaves_in_stub(stub)[0].host_index,
              b.slaves_in_stub(stub)[0].host_index);
    EXPECT_EQ(a.flood_times_in_stub(stub).size(),
              b.flood_times_in_stub(stub).size());
  }
  // Different stubs get decorrelated flood streams.
  EXPECT_NE(a.flood_times_in_stub(0), a.flood_times_in_stub(1));
}

TEST(CampaignTest, BoundsChecked) {
  const Campaign c(CampaignSpec{}, 1);
  EXPECT_THROW((void)c.slaves_in_stub(-1), std::out_of_range);
  EXPECT_THROW((void)c.flood_times_in_stub(100000), std::out_of_range);
}

}  // namespace
}  // namespace syndog::attack
