#include <gtest/gtest.h>

#include "syndog/classify/engines.hpp"
#include "syndog/classify/rule_text.hpp"

namespace syndog::classify {
namespace {

TEST(RuleTextTest, ParsesSynDogRules) {
  const auto rules = parse_rules(
      "# SYN-dog's two counting rules\n"
      "count-syn    priority=0 proto=tcp flags=syn     name=syndog-out\n"
      "count-synack priority=1 proto=tcp flags=syn-ack name=syndog-in\n");
  ASSERT_EQ(rules.size(), 2u);
  // Must match the programmatic constructors exactly.
  const Rule ref_syn = make_syn_count_rule(0);
  EXPECT_EQ(rules[0].action, ref_syn.action);
  EXPECT_EQ(rules[0].flag_mask, ref_syn.flag_mask);
  EXPECT_EQ(rules[0].flag_value, ref_syn.flag_value);
  EXPECT_EQ(rules[0].protocol, ref_syn.protocol);
  const Rule ref_ack = make_syn_ack_count_rule(1);
  EXPECT_EQ(rules[1].flag_value, ref_ack.flag_value);
  EXPECT_EQ(rules[1].name, "syndog-in");
}

TEST(RuleTextTest, ParsesFullRule) {
  const Rule rule = parse_rule_line(
      "deny priority=42 proto=tcp src=10.1.0.0/16 dst=192.0.2.0/24 "
      "sport=1024-65535 dport=80 flags=rst name=no-resets");
  EXPECT_EQ(rule.action, Action::kDeny);
  EXPECT_EQ(rule.priority, 42u);
  EXPECT_EQ(rule.src.to_string(), "10.1.0.0/16");
  EXPECT_EQ(rule.dst.to_string(), "192.0.2.0/24");
  EXPECT_EQ(rule.src_ports.lo, 1024);
  EXPECT_EQ(rule.src_ports.hi, 65535);
  EXPECT_EQ(rule.dst_ports, PortRange::exactly(80));
  EXPECT_EQ(rule.flag_mask, net::TcpFlags::kRst);
  EXPECT_EQ(rule.name, "no-resets");
}

TEST(RuleTextTest, ExplicitMaskValueFlags) {
  const Rule rule = parse_rule_line("permit flags=0x3f:0x02");
  EXPECT_EQ(rule.flag_mask, 0x3f);
  EXPECT_EQ(rule.flag_value, 0x02);
  // flags implies TCP.
  EXPECT_EQ(rule.protocol,
            static_cast<std::uint8_t>(net::IpProtocol::kTcp));
}

TEST(RuleTextTest, OmittedFieldsAreWildcards) {
  const Rule rule = parse_rule_line("permit");
  EXPECT_EQ(rule.src.length(), 0);
  EXPECT_EQ(rule.dst.length(), 0);
  EXPECT_TRUE(rule.src_ports.is_wildcard());
  EXPECT_FALSE(rule.protocol.has_value());
  FlowKey any;
  any.protocol = 17;
  EXPECT_TRUE(rule.matches(any));
}

TEST(RuleTextTest, RoundTripsThroughFormat) {
  const char* lines[] = {
      "count-syn priority=0 proto=tcp flags=syn name=a",
      "deny priority=9 proto=udp src=10.0.0.0/8 dport=53",
      "permit priority=3 dst=203.0.113.0/24 sport=1000-2000",
  };
  for (const char* line : lines) {
    const Rule original = parse_rule_line(line);
    const Rule reparsed = parse_rule_line(format_rule(original));
    EXPECT_EQ(reparsed.action, original.action) << line;
    EXPECT_EQ(reparsed.priority, original.priority) << line;
    EXPECT_EQ(reparsed.src, original.src) << line;
    EXPECT_EQ(reparsed.dst, original.dst) << line;
    EXPECT_EQ(reparsed.src_ports, original.src_ports) << line;
    EXPECT_EQ(reparsed.dst_ports, original.dst_ports) << line;
    EXPECT_EQ(reparsed.flag_mask, original.flag_mask) << line;
    EXPECT_EQ(reparsed.flag_value, original.flag_value) << line;
    EXPECT_EQ(reparsed.name, original.name) << line;
  }
}

TEST(RuleTextTest, ParsedRulesDriveTheEngines) {
  const auto rules = parse_rules(
      "deny   priority=0 proto=tcp src=240.0.0.0/8 name=spoof-guard\n"
      "permit priority=9\n");
  for (auto& engine : make_all_classifiers()) {
    for (const Rule& rule : rules) engine->add_rule(rule);
    engine->build();
    FlowKey spoofed;
    spoofed.src_ip = *net::Ipv4Address::parse("240.1.2.3");
    spoofed.protocol = 6;
    const Rule* hit = engine->match(spoofed);
    ASSERT_NE(hit, nullptr) << engine->name();
    EXPECT_EQ(hit->name, "spoof-guard") << engine->name();
    FlowKey honest;
    honest.src_ip = *net::Ipv4Address::parse("10.1.0.5");
    hit = engine->match(honest);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->action, Action::kPermit);
  }
}

TEST(RuleTextTest, CommentsAndBlanksIgnoredErrorsCarryLineNumbers) {
  EXPECT_TRUE(parse_rules("\n# only comments\n   \n").empty());
  try {
    (void)parse_rules("permit\n\nbogus-action priority=1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 3"), std::string::npos);
  }
}

TEST(RuleTextTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_rule_line(""), std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("frobnicate"), std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit priority=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit proto=gre"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit src=10.0.0.0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit dport=99999"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit dport=90-80"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit flags=xyz"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_rule_line("permit flags=0x02:0x12"),
               std::invalid_argument);  // value outside mask
  EXPECT_THROW((void)parse_rule_line("permit shape=round"),
               std::invalid_argument);
}

}  // namespace
}  // namespace syndog::classify
