# Runs bench_replay_throughput --deterministic twice into separate sidecar
# directories and requires the BENCH_replay_throughput.json exports to be
# byte-identical.  Guards the ingest pipeline's determinism contract: with
# wall-derived scalars suppressed, a replay is a pure function of the
# capture bytes and the pipeline configuration.
#
# Usage: cmake -DBENCH=<path-to-bench_replay_throughput> -DWORK=<dir>
#              -P replay_determinism.cmake
if(NOT BENCH OR NOT WORK)
  message(FATAL_ERROR "replay_determinism.cmake needs -DBENCH= and -DWORK=")
endif()

foreach(run a b)
  file(REMOVE_RECURSE "${WORK}/${run}")
  file(MAKE_DIRECTORY "${WORK}/${run}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SYNDOG_BENCH_DIR=${WORK}/${run}
            ${BENCH} --deterministic
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "run ${run} failed (${status}):\n${out}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK}/a/BENCH_replay_throughput.json"
          "${WORK}/b/BENCH_replay_throughput.json"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  file(READ "${WORK}/a/BENCH_replay_throughput.json" a_json)
  file(READ "${WORK}/b/BENCH_replay_throughput.json" b_json)
  message(FATAL_ERROR "deterministic replay sidecars differ:\n"
                      "--- run a ---\n${a_json}\n--- run b ---\n${b_json}")
endif()
