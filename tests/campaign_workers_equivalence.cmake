# Runs the syndog_campaign example with --workers 1 and --workers 8 on
# the same campaign (same stubs/seed/minutes) and requires the complete
# stdout — alarm counts, cross-shard stats, victim stats, and the full
# state digest with every per-period CUSUM table at %.17g — to be
# byte-identical. This is the ISSUE-10 acceptance pin: the sharded
# engine's merged output must not depend on the worker count, enforced
# by ctest through the example binary (see docs/CAMPAIGN.md).
#
# Usage: cmake -DCAMPAIGN=<path-to-syndog_campaign> -DWORK=<dir>
#              -P campaign_workers_equivalence.cmake
if(NOT CAMPAIGN OR NOT WORK)
  message(FATAL_ERROR
          "campaign_workers_equivalence.cmake needs -DCAMPAIGN= and -DWORK=")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

foreach(workers 1 8)
  execute_process(
    COMMAND ${CAMPAIGN} --stubs 1000 --hosts 200 --minutes 2 --seed 5
            --workers ${workers}
    RESULT_VARIABLE status
    OUTPUT_FILE "${WORK}/campaign_w${workers}.txt"
    ERROR_VARIABLE err)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "--workers ${workers} run failed (${status}):\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK}/campaign_w1.txt" "${WORK}/campaign_w8.txt"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  file(READ "${WORK}/campaign_w1.txt" w1)
  file(READ "${WORK}/campaign_w8.txt" w8)
  message(FATAL_ERROR "sharded campaign diverges across worker counts:\n"
                      "--- --workers 1 ---\n${w1}"
                      "--- --workers 8 ---\n${w8}")
endif()
